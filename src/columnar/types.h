#ifndef HEPQUERY_COLUMNAR_TYPES_H_
#define HEPQUERY_COLUMNAR_TYPES_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/status.h"

namespace hepq {

/// Physical/logical type tags of the columnar layer. HEP data sets contain
/// no NULL values (see paper §2.1), so there are no validity bitmaps
/// anywhere in this library.
enum class TypeId : uint8_t {
  kFloat32 = 0,
  kFloat64 = 1,
  kInt32 = 2,
  kInt64 = 3,
  kBool = 4,
  kList = 5,    // variable-length list, one child ("item")
  kStruct = 6,  // record, N named children
};

const char* TypeIdName(TypeId id);

/// Number of bytes of one element of a primitive type; 1 for bool.
int PrimitiveWidth(TypeId id);
bool IsPrimitive(TypeId id);

class DataType;
using DataTypePtr = std::shared_ptr<const DataType>;

/// A named, typed slot inside a schema or a struct type.
struct Field {
  std::string name;
  DataTypePtr type;
};

/// Immutable (possibly nested) data type. Lists have exactly one child
/// (conventionally named "item"); structs have one child per member.
class DataType {
 public:
  static DataTypePtr Float32();
  static DataTypePtr Float64();
  static DataTypePtr Int32();
  static DataTypePtr Int64();
  static DataTypePtr Bool();
  static DataTypePtr List(DataTypePtr item);
  static DataTypePtr Struct(std::vector<Field> fields);

  TypeId id() const { return id_; }
  bool is_primitive() const { return IsPrimitive(id_); }

  /// Children: empty for primitives, {item} for lists, members for structs.
  const std::vector<Field>& fields() const { return fields_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }

  /// For lists: the element type.
  const DataTypePtr& item_type() const { return fields_[0].type; }

  /// Index of the struct member called `name`, or -1.
  int FieldIndex(const std::string& name) const;

  /// Structural equality (names and types, recursively).
  bool Equals(const DataType& other) const;

  /// Human-readable rendering, e.g. "list<struct<pt: float32, ...>>".
  std::string ToString() const;

  /// Number of primitive leaf columns after Dremel-style shredding.
  int NumLeaves() const;

 private:
  DataType(TypeId id, std::vector<Field> fields)
      : id_(id), fields_(std::move(fields)) {}

  TypeId id_;
  std::vector<Field> fields_;
};

/// Ordered collection of named top-level columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Field> fields) : fields_(std::move(fields)) {}

  const std::vector<Field>& fields() const { return fields_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }
  const Field& field(int i) const { return fields_[static_cast<size_t>(i)]; }

  int FieldIndex(const std::string& name) const;
  Result<Field> FindField(const std::string& name) const;

  bool Equals(const Schema& other) const;
  std::string ToString() const;

  /// Total number of primitive leaf columns across all fields.
  int NumLeaves() const;

 private:
  std::vector<Field> fields_;
};

using SchemaPtr = std::shared_ptr<const Schema>;

}  // namespace hepq

#endif  // HEPQUERY_COLUMNAR_TYPES_H_
