#ifndef HEPQUERY_COLUMNAR_ARRAY_H_
#define HEPQUERY_COLUMNAR_ARRAY_H_

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "columnar/types.h"
#include "core/status.h"

namespace hepq {

class Array;
using ArrayPtr = std::shared_ptr<const Array>;

/// Immutable column of values. Concrete subclasses: PrimitiveArray<T>,
/// BoolArray, ListArray, StructArray. No validity bitmaps (HEP data is
/// NULL-free), no chunking (chunking happens at the row-group level of the
/// file format).
class Array {
 public:
  virtual ~Array() = default;

  const DataTypePtr& type() const { return type_; }
  int64_t length() const { return length_; }

  /// In-memory footprint of this array's buffers (for IO/cost accounting).
  virtual int64_t NumBytes() const = 0;

  /// Deep structural equality.
  virtual bool Equals(const Array& other) const = 0;

 protected:
  Array(DataTypePtr type, int64_t length)
      : type_(std::move(type)), length_(length) {}

  DataTypePtr type_;
  int64_t length_;
};

/// Fixed-width primitive column backed by a contiguous vector.
template <typename T>
class PrimitiveArray : public Array {
 public:
  PrimitiveArray(DataTypePtr type, std::vector<T> values)
      : Array(std::move(type), static_cast<int64_t>(values.size())),
        values_(std::move(values)) {}

  T Value(int64_t i) const { return values_[static_cast<size_t>(i)]; }
  std::span<const T> values() const { return values_; }
  const T* raw() const { return values_.data(); }

  int64_t NumBytes() const override {
    return static_cast<int64_t>(values_.size() * sizeof(T));
  }

  bool Equals(const Array& other) const override {
    if (!type_->Equals(*other.type()) || length_ != other.length()) {
      return false;
    }
    const auto& o = static_cast<const PrimitiveArray<T>&>(other);
    return values_ == o.values_;
  }

 private:
  std::vector<T> values_;
};

using Float32Array = PrimitiveArray<float>;
using Float64Array = PrimitiveArray<double>;
using Int32Array = PrimitiveArray<int32_t>;
using Int64Array = PrimitiveArray<int64_t>;
// Bool stored as one byte per value; the file format bit-packs it.
using BoolArray = PrimitiveArray<uint8_t>;

/// Variable-length list column: offsets (length + 1 entries) into a child
/// values array. Row i covers child rows [offsets[i], offsets[i+1]).
class ListArray : public Array {
 public:
  ListArray(DataTypePtr type, std::vector<uint32_t> offsets, ArrayPtr child);

  /// Builds a list array, deriving the type from the child.
  static Result<std::shared_ptr<ListArray>> Make(std::vector<uint32_t> offsets,
                                                 ArrayPtr child);

  std::span<const uint32_t> offsets() const { return offsets_; }
  const ArrayPtr& child() const { return child_; }

  uint32_t list_offset(int64_t i) const {
    return offsets_[static_cast<size_t>(i)];
  }
  int32_t list_length(int64_t i) const {
    return static_cast<int32_t>(offsets_[static_cast<size_t>(i) + 1] -
                                offsets_[static_cast<size_t>(i)]);
  }

  int64_t NumBytes() const override {
    return static_cast<int64_t>(offsets_.size() * sizeof(uint32_t)) +
           child_->NumBytes();
  }

  bool Equals(const Array& other) const override;

 private:
  std::vector<uint32_t> offsets_;
  ArrayPtr child_;
};

/// Struct column: one child array per member, all with equal length.
class StructArray : public Array {
 public:
  StructArray(DataTypePtr type, std::vector<ArrayPtr> children);

  static Result<std::shared_ptr<StructArray>> Make(
      std::vector<Field> fields, std::vector<ArrayPtr> children);

  const std::vector<ArrayPtr>& children() const { return children_; }
  const ArrayPtr& child(int i) const {
    return children_[static_cast<size_t>(i)];
  }
  /// Child by member name; nullptr if absent.
  ArrayPtr ChildByName(const std::string& name) const;

  int64_t NumBytes() const override;
  bool Equals(const Array& other) const override;

 private:
  std::vector<ArrayPtr> children_;
};

/// Tabular slice: a schema plus equal-length top-level columns. This is the
/// unit of vectorized execution and of row-group IO.
class RecordBatch {
 public:
  RecordBatch(SchemaPtr schema, int64_t num_rows,
              std::vector<ArrayPtr> columns);

  static Result<std::shared_ptr<RecordBatch>> Make(
      SchemaPtr schema, std::vector<ArrayPtr> columns);

  const SchemaPtr& schema() const { return schema_; }
  int64_t num_rows() const { return num_rows_; }
  int num_columns() const { return static_cast<int>(columns_.size()); }

  const ArrayPtr& column(int i) const {
    return columns_[static_cast<size_t>(i)];
  }
  /// Column by name; nullptr if absent.
  ArrayPtr ColumnByName(const std::string& name) const;

  int64_t NumBytes() const;
  bool Equals(const RecordBatch& other) const;

 private:
  SchemaPtr schema_;
  int64_t num_rows_;
  std::vector<ArrayPtr> columns_;
};

using RecordBatchPtr = std::shared_ptr<const RecordBatch>;

}  // namespace hepq

#endif  // HEPQUERY_COLUMNAR_ARRAY_H_
