#ifndef HEPQUERY_COLUMNAR_BUILDER_H_
#define HEPQUERY_COLUMNAR_BUILDER_H_

#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "columnar/array.h"
#include "columnar/types.h"

namespace hepq {

/// Append-only builder for fixed-width primitive columns.
template <typename T>
class PrimitiveBuilder {
 public:
  explicit PrimitiveBuilder(DataTypePtr type) : type_(std::move(type)) {}

  void Reserve(size_t n) { values_.reserve(n); }
  void Append(T v) { values_.push_back(v); }
  void AppendSpan(std::span<const T> vs) {
    values_.insert(values_.end(), vs.begin(), vs.end());
  }
  int64_t length() const { return static_cast<int64_t>(values_.size()); }

  std::shared_ptr<PrimitiveArray<T>> Finish() {
    return std::make_shared<PrimitiveArray<T>>(type_, std::move(values_));
  }

 private:
  DataTypePtr type_;
  std::vector<T> values_;
};

inline ArrayPtr MakeFloat32Array(std::vector<float> v) {
  return std::make_shared<Float32Array>(DataType::Float32(), std::move(v));
}
inline ArrayPtr MakeFloat64Array(std::vector<double> v) {
  return std::make_shared<Float64Array>(DataType::Float64(), std::move(v));
}
inline ArrayPtr MakeInt32Array(std::vector<int32_t> v) {
  return std::make_shared<Int32Array>(DataType::Int32(), std::move(v));
}
inline ArrayPtr MakeInt64Array(std::vector<int64_t> v) {
  return std::make_shared<Int64Array>(DataType::Int64(), std::move(v));
}
inline ArrayPtr MakeBoolArray(std::vector<uint8_t> v) {
  return std::make_shared<BoolArray>(DataType::Bool(), std::move(v));
}

/// Assembles a list<struct<...>> column — the layout of every particle
/// collection (Jet, Muon, Electron, ...) — from per-leaf arrays plus shared
/// list offsets.
Result<ArrayPtr> MakeListOfStructArray(std::vector<Field> leaf_fields,
                                       std::vector<uint32_t> offsets,
                                       std::vector<ArrayPtr> leaf_arrays);

}  // namespace hepq

#endif  // HEPQUERY_COLUMNAR_BUILDER_H_
