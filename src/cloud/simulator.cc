#include "cloud/simulator.h"

#include <algorithm>
#include <cmath>

namespace hepq::cloud {

const char* CloudSystemName(CloudSystem system) {
  switch (system) {
    case CloudSystem::kBigQuery:
      return "BigQuery";
    case CloudSystem::kBigQueryExternal:
      return "BigQuery(ext)";
    case CloudSystem::kAthenaV1:
      return "Athena v1";
    case CloudSystem::kAthenaV2:
      return "Athena v2";
    case CloudSystem::kPresto:
      return "Presto";
    case CloudSystem::kRDataFrame:
      return "RDataFrame";
    case CloudSystem::kRumble:
      return "Rumble";
  }
  return "unknown";
}

bool IsQaas(CloudSystem system) {
  return system == CloudSystem::kBigQuery ||
         system == CloudSystem::kBigQueryExternal ||
         system == CloudSystem::kAthenaV1 ||
         system == CloudSystem::kAthenaV2;
}

const char* MeasurementEngineFor(CloudSystem system) {
  switch (system) {
    case CloudSystem::kBigQuery:
    case CloudSystem::kBigQueryExternal:
      return "bigquery-shape";
    case CloudSystem::kAthenaV1:
    case CloudSystem::kAthenaV2:
    case CloudSystem::kPresto:
      return "presto-shape";
    case CloudSystem::kRDataFrame:
      return "rdataframe";
    case CloudSystem::kRumble:
      return "jsoniq-doc";
  }
  return "unknown";
}

SystemModel DefaultModel(CloudSystem system) {
  SystemModel model;
  model.system = system;
  switch (system) {
    case CloudSystem::kBigQuery:
      // Pre-loaded native storage is ~2x faster than external tables
      // (paper §4.1); Dremel's elasticity assigns roughly one worker per
      // input split.
      model.startup_seconds = 1.5;
      model.cpu_factor = 0.5;
      model.qaas_groups_per_worker = 1.0;
      break;
    case CloudSystem::kBigQueryExternal:
      model.startup_seconds = 1.5;
      model.cpu_factor = 1.0;
      model.qaas_groups_per_worker = 1.0;
      break;
    case CloudSystem::kAthenaV1:
      // The previous engine generation: every query runs slower and the
      // computationally complex ones much slower (paper §4.2); its
      // scanned-bytes reporting was implausible, so Figure 1 excluded it.
      model.startup_seconds = 5.0;
      model.cpu_factor = 2.6;
      model.qaas_groups_per_worker = 3.0;
      break;
    case CloudSystem::kAthenaV2:
      // Slower dispatch, less elastic resource assignment than BigQuery.
      model.startup_seconds = 3.0;
      model.cpu_factor = 1.1;
      model.qaas_groups_per_worker = 2.0;
      break;
    case CloudSystem::kPresto:
      // JVM + page-at-a-time overhead on top of the measured plan cost;
      // decent but sub-linear scaling on many cores (paper §4.1).
      model.startup_seconds = 2.0;
      model.cpu_factor = 1.6;
      model.contention_coeff = 0.002;
      model.contention_knee = 24.0;
      model.contention_power = 1.2;
      model.management_cores = 1.0;
      break;
    case CloudSystem::kRDataFrame:
      // Compiled event loop; lock contention on the task scheduler makes
      // it degrade beyond ~16 threads (ROOT PPP 2021, Forum #44222).
      model.startup_seconds = 0.3;
      model.cpu_factor = 1.0;
      model.contention_coeff = 0.004;
      model.contention_knee = 16.0;
      model.contention_power = 1.5;
      break;
    case CloudSystem::kRumble:
      // Spark job submission plus the measured boxed-interpretation cost;
      // the driver occupies cores, which dominates small instances.
      model.startup_seconds = 25.0;
      model.cpu_factor = 1.3;
      model.contention_coeff = 0.001;
      model.contention_knee = 32.0;
      model.contention_power = 1.2;
      model.management_cores = 2.0;
      break;
  }
  return model;
}

Result<SimOutcome> Simulate(const SystemModel& model,
                            const MeasuredQuery& measured,
                            const InstanceType* instance) {
  if (measured.row_groups < 1) {
    return Status::Invalid("measured query needs >= 1 row group");
  }
  SimOutcome outcome;
  const double total_cpu = measured.cpu_seconds * model.cpu_factor;
  const double per_group_cpu = total_cpu / measured.row_groups;

  if (IsQaas(model.system)) {
    // Elastic deployment: the provider assigns workers proportional to the
    // number of input splits; per-query wall time is essentially constant
    // in the data size once all splits run in parallel (paper Figure 2).
    const int workers = std::max(
        1, static_cast<int>(std::ceil(measured.row_groups /
                                      model.qaas_groups_per_worker)));
    const int groups_per_worker = static_cast<int>(
        std::ceil(static_cast<double>(measured.row_groups) / workers));
    outcome.workers = workers;
    outcome.wall_seconds =
        model.startup_seconds + per_group_cpu * groups_per_worker;
    outcome.billed_bytes = (model.system == CloudSystem::kAthenaV1 ||
                            model.system == CloudSystem::kAthenaV2)
                               ? measured.storage_bytes
                               : measured.logical_bytes_bq;
    outcome.cost_usd = static_cast<double>(outcome.billed_bytes) * 1e-12 *
                       model.usd_per_tb;
    return outcome;
  }

  if (instance == nullptr) {
    return Status::Invalid("self-managed systems need an instance type");
  }
  // Workers = logical cores minus cluster management share, capped by the
  // parallelism granularity (row groups).
  const double usable_cores =
      std::max(1.0, instance->vcpus - model.management_cores);
  const int workers = std::max(
      1, std::min(measured.row_groups, static_cast<int>(usable_cores)));
  const double contention =
      1.0 + model.contention_coeff *
                std::pow(std::max(0.0, static_cast<double>(workers) -
                                           model.contention_knee),
                         model.contention_power);
  // LPT over identical tasks: ceil(groups / workers) groups per worker.
  const int groups_per_worker = static_cast<int>(std::ceil(
      static_cast<double>(measured.row_groups) / workers));
  outcome.workers = workers;
  outcome.contention_factor = contention;
  outcome.wall_seconds = model.startup_seconds +
                         per_group_cpu * groups_per_worker * contention;
  outcome.cost_usd =
      outcome.wall_seconds * instance->usd_per_second() * model.price_factor;
  return outcome;
}

Result<SimOutcome> SimulateOn(CloudSystem system,
                              const MeasuredQuery& measured,
                              const std::string& instance_name) {
  const SystemModel model = DefaultModel(system);
  if (IsQaas(system)) {
    return Simulate(model, measured, nullptr);
  }
  InstanceType instance;
  HEPQ_ASSIGN_OR_RETURN(instance, FindInstance(instance_name));
  return Simulate(model, measured, &instance);
}

}  // namespace hepq::cloud
