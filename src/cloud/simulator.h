#ifndef HEPQUERY_CLOUD_SIMULATOR_H_
#define HEPQUERY_CLOUD_SIMULATOR_H_

#include <string>
#include <vector>

#include "cloud/instances.h"
#include "core/status.h"

namespace hepq::cloud {

/// The deployments compared in Figure 1/2 of the paper. Each maps to one
/// of this repository's execution engines for the *measured* per-event
/// work, plus an analytic deployment model for parallelism, overheads, and
/// pricing (this machine cannot run 48-core cloud boxes, so multi-core
/// behaviour is simulated from measured single-core work — see DESIGN.md).
enum class CloudSystem {
  kBigQuery,          // QaaS, pre-loaded native storage
  kBigQueryExternal,  // QaaS over external Parquet-like files
  kAthenaV1,          // QaaS, the older engine Figure 2 compares against
  kAthenaV2,          // QaaS (Presto-based), external files
  kPresto,            // self-managed, m5d instance
  kRDataFrame,        // self-managed, m5d instance
  kRumble,            // self-managed Spark, m5d instance
};

const char* CloudSystemName(CloudSystem system);
bool IsQaas(CloudSystem system);
/// Which local engine's measurement drives this system's simulation.
/// (BigQuery -> bigquery-shape, Athena/Presto -> presto-shape,
/// RDataFrame -> rdf, Rumble -> doc.)
const char* MeasurementEngineFor(CloudSystem system);

/// Single-threaded measurement of one query run, produced by the real
/// engines in this repository.
struct MeasuredQuery {
  double cpu_seconds = 0.0;        // total single-core CPU time
  uint64_t storage_bytes = 0;      // compressed bytes read (Athena billing)
  uint64_t logical_bytes_bq = 0;   // BigQuery's 8-B-per-entry accounting
  int row_groups = 1;              // parallelism granularity
  int64_t events = 0;
};

/// Deployment-model constants for one system. Defaults are calibrated to
/// reproduce the qualitative behaviour in the paper (see the per-field
/// comments); they are deliberately simple analytic forms, not fits to the
/// paper's absolute numbers.
struct SystemModel {
  CloudSystem system = CloudSystem::kRDataFrame;

  /// Fixed per-query latency: client round-trips, planning, JVM/Spark
  /// startup. (BigQuery ~1.5 s, Athena ~3 s, Presto coordinator ~2 s,
  /// RDataFrame ~0.3 s process start, Rumble ~25 s Spark job submission.)
  double startup_seconds = 0.0;

  /// Multiplicative CPU cost of the simulated system relative to the
  /// measuring engine (e.g. Athena v2 runs the same plans as Presto but
  /// faster; pre-loaded BigQuery is ~2x faster than external tables).
  double cpu_factor = 1.0;

  /// Thread-contention model: each worker's task time is multiplied by
  /// contention(t) = 1 + contention_coeff * max(0, t - contention_knee)^
  /// contention_power. For RDataFrame this reproduces the known
  /// lock-contention collapse beyond ~16 threads (ROOT-Forum #44222).
  double contention_coeff = 0.0;
  double contention_knee = 1e9;
  double contention_power = 1.0;

  /// Self-managed only: fraction of one instance's cores consumed by
  /// cluster management (Spark driver / Presto coordinator); its relative
  /// weight shrinks on bigger instances — the super-linear speed-up the
  /// paper sees for Rumble on small instances.
  double management_cores = 0.0;

  /// QaaS only: how many row groups one elastic worker handles (1 = one
  /// worker per row group, i.e. fully elastic).
  double qaas_groups_per_worker = 1.0;

  /// QaaS only: $/TB scanned; which byte count is billed depends on the
  /// system (logical for BigQuery, storage for Athena).
  double usd_per_tb = 5.0;

  /// Self-managed only: multiplier on the instance price. 1.0 = on-demand;
  /// the paper notes spot instances can cut cost by up to 5x (§4.1), i.e.
  /// price_factor = 0.2.
  double price_factor = 1.0;
};

/// Calibrated default model for a system.
SystemModel DefaultModel(CloudSystem system);

struct SimOutcome {
  double wall_seconds = 0.0;
  double cost_usd = 0.0;
  int workers = 1;
  double contention_factor = 1.0;
  uint64_t billed_bytes = 0;  // QaaS only
};

/// Simulates running a measured query on `instance` (ignored for QaaS
/// systems). Work is split at row-group granularity — the parallelization
/// unit of every system in the paper — and scheduled on the instance's
/// logical cores; wall time can never drop below one row group's share.
Result<SimOutcome> Simulate(const SystemModel& model,
                            const MeasuredQuery& measured,
                            const InstanceType* instance);

/// Convenience: default model + catalogue instance.
Result<SimOutcome> SimulateOn(CloudSystem system,
                              const MeasuredQuery& measured,
                              const std::string& instance_name);

}  // namespace hepq::cloud

#endif  // HEPQUERY_CLOUD_SIMULATOR_H_
