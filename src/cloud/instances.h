#ifndef HEPQUERY_CLOUD_INSTANCES_H_
#define HEPQUERY_CLOUD_INSTANCES_H_

#include <string>
#include <vector>

#include "core/status.h"

namespace hepq::cloud {

/// One cloud VM type. The catalogue mirrors the m5d family used by the
/// paper's self-managed deployments: the largest size (m5d.24xlarge) has
/// 48 physical cores / 96 vCPUs and costs 6.048 $/h in eu-west-1; all
/// smaller sizes are proportional (0.063 $/h per vCPU).
struct InstanceType {
  std::string name;
  int vcpus = 0;        // logical cores (SMT)
  int physical_cores = 0;
  double memory_gib = 0.0;
  double usd_per_hour = 0.0;

  double usd_per_second() const { return usd_per_hour / 3600.0; }
};

/// The m5d series from xlarge to 24xlarge (paper §4.1).
const std::vector<InstanceType>& M5dInstances();

/// Lookup by name ("m5d.12xlarge").
Result<InstanceType> FindInstance(const std::string& name);

}  // namespace hepq::cloud

#endif  // HEPQUERY_CLOUD_INSTANCES_H_
