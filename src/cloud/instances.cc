#include "cloud/instances.h"

namespace hepq::cloud {

const std::vector<InstanceType>& M5dInstances() {
  static const auto& instances = *new std::vector<InstanceType>{
      {"m5d.xlarge", 4, 2, 16.0, 0.252},
      {"m5d.2xlarge", 8, 4, 32.0, 0.504},
      {"m5d.4xlarge", 16, 8, 64.0, 1.008},
      {"m5d.8xlarge", 32, 16, 128.0, 2.016},
      {"m5d.12xlarge", 48, 24, 192.0, 3.024},
      {"m5d.16xlarge", 64, 32, 256.0, 4.032},
      {"m5d.24xlarge", 96, 48, 384.0, 6.048},
  };
  return instances;
}

Result<InstanceType> FindInstance(const std::string& name) {
  for (const InstanceType& instance : M5dInstances()) {
    if (instance.name == name) return instance;
  }
  return Status::KeyError("unknown instance type '" + name + "'");
}

}  // namespace hepq::cloud
