#ifndef HEPQUERY_DATAGEN_DATASET_H_
#define HEPQUERY_DATAGEN_DATASET_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "datagen/generator.h"
#include "fileio/layout_optimizer.h"
#include "fileio/writer.h"

namespace hepq {

struct DatasetSpec {
  int64_t num_events = 100000;
  /// Rows per row group; also the generator batch size, so groups have
  /// exactly this many events (except the last).
  int64_t row_group_size = 25000;
  uint64_t seed = 20120601;
  Codec codec = Codec::kLz;

  /// Canonical file name, e.g. "cms_100000ev_25000rg.laq".
  std::string FileName() const;
};

/// Generates the synthetic CMS data set described by `spec` into
/// `directory` (created if needed) unless the file already exists.
/// Returns the file path. Because the generator is deterministic, an
/// existing file with the same spec is bit-identical to a fresh one.
Result<std::string> EnsureDataset(const std::string& directory,
                                  const DatasetSpec& spec);

/// Default scratch directory for generated data sets; honours the
/// HEPQ_DATA_DIR environment variable, defaulting to "hepq_data" under the
/// current working directory.
std::string DefaultDataDir();

/// Generates the dataset described by `spec` (if needed) and rewrites it
/// through the layout optimizer (if needed), caching the optimized copy
/// next to the original under "<name>_opt.laq". Both steps are fully
/// deterministic, so existing files are reused as-is. The cache name does
/// not encode `options`; callers varying them should call OptimizeLaqFile
/// on a path of their own. Returns the path of the optimized copy.
Result<std::string> EnsureOptimizedDataset(const std::string& directory,
                                           const DatasetSpec& spec,
                                           const OptimizeOptions& options = {});

}  // namespace hepq

#endif  // HEPQUERY_DATAGEN_DATASET_H_
