#ifndef HEPQUERY_DATAGEN_DATASET_H_
#define HEPQUERY_DATAGEN_DATASET_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "datagen/generator.h"
#include "fileio/writer.h"

namespace hepq {

struct DatasetSpec {
  int64_t num_events = 100000;
  /// Rows per row group; also the generator batch size, so groups have
  /// exactly this many events (except the last).
  int64_t row_group_size = 25000;
  uint64_t seed = 20120601;
  Codec codec = Codec::kLz;

  /// Canonical file name, e.g. "cms_100000ev_25000rg.laq".
  std::string FileName() const;
};

/// Generates the synthetic CMS data set described by `spec` into
/// `directory` (created if needed) unless the file already exists.
/// Returns the file path. Because the generator is deterministic, an
/// existing file with the same spec is bit-identical to a fresh one.
Result<std::string> EnsureDataset(const std::string& directory,
                                  const DatasetSpec& spec);

/// Default scratch directory for generated data sets; honours the
/// HEPQ_DATA_DIR environment variable, defaulting to "hepq_data" under the
/// current working directory.
std::string DefaultDataDir();

}  // namespace hepq

#endif  // HEPQUERY_DATAGEN_DATASET_H_
