#ifndef HEPQUERY_DATAGEN_DATASET_H_
#define HEPQUERY_DATAGEN_DATASET_H_

#include <cstdint>
#include <string>

#include "core/status.h"
#include "datagen/generator.h"
#include "fileio/layout_optimizer.h"
#include "fileio/writer.h"

namespace hepq {

struct DatasetSpec {
  int64_t num_events = 100000;
  /// Rows per row group; also the generator batch size, so groups have
  /// exactly this many events (except the last).
  int64_t row_group_size = 25000;
  uint64_t seed = 20120601;
  Codec codec = Codec::kLz;

  /// Canonical file name, e.g. "cms_100000ev_25000rg.laq".
  std::string FileName() const;
};

/// Generates the synthetic CMS data set described by `spec` into
/// `directory` (created if needed) unless the file already exists.
/// Returns the file path. Because the generator is deterministic, an
/// existing file with the same spec is bit-identical to a fresh one.
Result<std::string> EnsureDataset(const std::string& directory,
                                  const DatasetSpec& spec);

/// Default scratch directory for generated data sets; honours the
/// HEPQ_DATA_DIR environment variable, defaulting to "hepq_data" under the
/// current working directory.
std::string DefaultDataDir();

/// A dataset split over N shard files in one directory — the unit of
/// scale-out execution. Shard k is generated from an independent RNG
/// stream derived from (seed, k), so its bytes depend only on
/// (seed, k, events_per_shard, row_group_size, codec): generating shards
/// [0, 4) and later regenerating only shard 2 — or growing the dataset to
/// 16 shards — reproduces shard 2 bit for bit. Event ids are globally
/// unique: shard k starts at k * events_per_shard.
struct ShardedDatasetSpec {
  int num_shards = 4;
  int64_t events_per_shard = 100000;
  int64_t row_group_size = 25000;
  uint64_t seed = 20120601;
  Codec codec = Codec::kLz;

  /// Canonical directory name, e.g. "cms_4x100000ev_25000rg_s20120601_lz".
  std::string DirName() const;
  /// Canonical shard file name ("shard_0007.laq"); sorts in shard order.
  std::string ShardFileName(int shard) const;
};

/// The per-shard generator seed: a splitmix-style mix of the dataset seed
/// and the shard index, so shard streams are decorrelated and shard k's
/// content is independent of every other shard.
uint64_t ShardSeed(uint64_t seed, int shard);

/// Generates the sharded data set described by `spec` under
/// `directory/<spec.DirName()>`, skipping shards whose file already
/// exists (determinism makes them bit-identical to a fresh write). Each
/// shard is written to a ".tmp" name and renamed, so interrupted runs
/// never leave a half-written shard. Returns the dataset directory path.
Result<std::string> EnsureShardedDataset(const std::string& directory,
                                         const ShardedDatasetSpec& spec);

/// Generates the dataset described by `spec` (if needed) and rewrites it
/// through the layout optimizer (if needed), caching the optimized copy
/// next to the original under "<name>_opt.laq". Both steps are fully
/// deterministic, so existing files are reused as-is. The cache name does
/// not encode `options`; callers varying them should call OptimizeLaqFile
/// on a path of their own. Returns the path of the optimized copy.
Result<std::string> EnsureOptimizedDataset(const std::string& directory,
                                           const DatasetSpec& spec,
                                           const OptimizeOptions& options = {});

}  // namespace hepq

#endif  // HEPQUERY_DATAGEN_DATASET_H_
