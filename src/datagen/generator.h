#ifndef HEPQUERY_DATAGEN_GENERATOR_H_
#define HEPQUERY_DATAGEN_GENERATOR_H_

#include <cstdint>
#include <memory>

#include "columnar/array.h"
#include "columnar/types.h"
#include "core/rng.h"

namespace hepq {

/// Tunable knobs of the synthetic CMS-like event generator. Defaults are
/// calibrated so that the per-event multiplicity moments reproduce the
/// paper's Table 2 workload characteristics on the Run2012B SingleMu data
/// set: E[J] ~= 3.2 (Q2), E[C(J,3)] ~= 42 (Q6), E[C(M,2)] ~= 0.6 (Q5),
/// electrons in low single digits (Figure 3).
struct GeneratorConfig {
  uint64_t seed = 20120601;

  /// Event id of the first generated event. Sharded datasets set this to
  /// the shard's global offset so `event` stays unique across shards; the
  /// kinematics stream depends only on `seed`, not on this offset.
  int64_t first_event_id = 0;

  // Jet multiplicity: mixture of a soft Poisson component and two
  // progressively busier components producing the several-dozen-jet tail
  // of Figure 3.
  double jet_busy_fraction = 0.0403;     // Poisson(jet_busy_mean)
  double jet_very_busy_fraction = 0.002; // Poisson(jet_very_busy_mean)
  double jet_soft_mean = 2.6;
  double jet_busy_mean = 16.0;
  double jet_very_busy_mean = 35.0;

  // Muon multiplicity: categorical distribution over 0..5 (SingleMu data
  // set: most events hold exactly one muon). Entries are cumulative
  // probabilities for counts 0,1,2,3,4; the remainder is count 5.
  double muon_cumprob[5] = {0.25, 0.70, 0.92, 0.98, 0.995};

  // Electron multiplicity: Poisson.
  double electron_mean = 0.35;
  // Photon / tau multiplicities: Poisson (present in the schema, unused by
  // the benchmark queries — they model the "dozens of attributes, few
  // accessed" property of HEP files).
  double photon_mean = 0.9;
  double tau_mean = 0.25;

  // Fraction of events with a genuine Z -> mu+ mu- (resp. Z -> e+ e-)
  // resonance decay, giving Q5/Q8 their invariant-mass peaks.
  double z_to_mumu_fraction = 0.15;
  double z_to_ee_fraction = 0.05;

  // Kinematics.
  double jet_pt_min = 15.0, jet_pt_scale = 18.0;   // pt ~ min + Exp(scale)
  double lepton_pt_min = 3.0, lepton_pt_scale = 12.0;
  double met_sigma = 18.0;  // MET ~ |2-D Gaussian|, Rayleigh(met_sigma)
};

/// Generates synthetic events with the benchmark's nested CMS schema.
/// Deterministic for a given (seed, batch sequence): generating 4 batches
/// of 1000 events always yields the same data.
class EventGenerator {
 public:
  explicit EventGenerator(GeneratorConfig config = {});

  /// The full event schema (run/luminosityBlock/event metadata, MET and PV
  /// structs, HLT flags, and the five particle collections).
  static SchemaPtr CmsSchema();

  /// Generates the next `num_events` events as one RecordBatch.
  RecordBatchPtr GenerateBatch(int64_t num_events);

  int64_t events_generated() const {
    return next_event_id_ - config_.first_event_id;
  }

 private:
  GeneratorConfig config_;
  Rng rng_;
  int64_t next_event_id_ = 0;
};

}  // namespace hepq

#endif  // HEPQUERY_DATAGEN_GENERATOR_H_
