#ifndef HEPQUERY_DATAGEN_ROOT_LAYOUT_H_
#define HEPQUERY_DATAGEN_ROOT_LAYOUT_H_

#include "columnar/array.h"
#include "columnar/types.h"
#include "core/status.h"

namespace hepq {

// The paper's §3.1 "Data Format" discussion: original ROOT files decompose
// structured attributes into distinct top-level branches both physically
// AND logically — an event has `nJet`, `Jet_pt`, `Jet_eta`, ... instead of
// one `Jet: list<struct<...>>` attribute — and queries must re-compose
// particles from those parallel branches. This module converts between
// the two logical representations so the difference can be studied (the
// physical shredding on disk is identical; only the exposed schema
// changes).

/// Flat (ROOT-style) schema for a nested event schema: primitives stay;
/// a struct column `X {a, b}` becomes `X_a`, `X_b`; a particle column
/// `Y: list<struct<a, b>>` becomes `nY: int32` plus per-member branches
/// `Y_a: list<a>`, `Y_b: list<b>` (each with its own offsets, the
/// redundancy physicists' files carry).
Result<SchemaPtr> RootLayoutSchema(const Schema& nested);

/// Converts a nested batch to the ROOT-style flat layout.
Result<RecordBatchPtr> ToRootLayout(const RecordBatch& nested);

/// Re-composes a flat (ROOT-style) batch into `nested_schema`. Validates
/// that the `nY` counts and every member branch's lengths agree —
/// the foreign-key-like consistency a nested layout gets for free.
Result<RecordBatchPtr> FromRootLayout(const RecordBatch& flat,
                                      const SchemaPtr& nested_schema);

}  // namespace hepq

#endif  // HEPQUERY_DATAGEN_ROOT_LAYOUT_H_
