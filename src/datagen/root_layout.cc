#include "datagen/root_layout.h"

namespace hepq {

Result<SchemaPtr> RootLayoutSchema(const Schema& nested) {
  std::vector<Field> fields;
  for (const Field& field : nested.fields()) {
    const DataType& type = *field.type;
    if (type.is_primitive()) {
      fields.push_back(field);
      continue;
    }
    if (type.id() == TypeId::kStruct) {
      for (const Field& member : type.fields()) {
        if (!member.type->is_primitive()) {
          return Status::NotImplemented("nested struct member in " +
                                        field.name);
        }
        fields.push_back(Field{field.name + "_" + member.name, member.type});
      }
      continue;
    }
    // List column.
    const DataType& item = *type.item_type();
    fields.push_back(Field{"n" + field.name, DataType::Int32()});
    if (item.is_primitive()) {
      fields.push_back(Field{field.name, DataType::List(type.item_type())});
      continue;
    }
    if (item.id() != TypeId::kStruct) {
      return Status::NotImplemented("list of " + item.ToString());
    }
    for (const Field& member : item.fields()) {
      if (!member.type->is_primitive()) {
        return Status::NotImplemented("nested struct member in " +
                                      field.name);
      }
      fields.push_back(Field{field.name + "_" + member.name,
                             DataType::List(member.type)});
    }
  }
  return SchemaPtr(std::make_shared<Schema>(std::move(fields)));
}

Result<RecordBatchPtr> ToRootLayout(const RecordBatch& nested) {
  SchemaPtr flat_schema;
  HEPQ_ASSIGN_OR_RETURN(flat_schema, RootLayoutSchema(*nested.schema()));
  std::vector<ArrayPtr> columns;
  for (int c = 0; c < nested.num_columns(); ++c) {
    const ArrayPtr& column = nested.column(c);
    const DataType& type = *column->type();
    if (type.is_primitive()) {
      columns.push_back(column);
      continue;
    }
    if (type.id() == TypeId::kStruct) {
      const auto& st = static_cast<const StructArray&>(*column);
      for (const ArrayPtr& child : st.children()) {
        columns.push_back(child);
      }
      continue;
    }
    const auto& list = static_cast<const ListArray&>(*column);
    std::vector<int32_t> counts(static_cast<size_t>(list.length()));
    for (int64_t i = 0; i < list.length(); ++i) {
      counts[static_cast<size_t>(i)] = list.list_length(i);
    }
    columns.push_back(std::make_shared<Int32Array>(DataType::Int32(),
                                                   std::move(counts)));
    const std::vector<uint32_t> offsets(list.offsets().begin(),
                                        list.offsets().end());
    if (list.child()->type()->is_primitive()) {
      std::shared_ptr<ListArray> branch;
      HEPQ_ASSIGN_OR_RETURN(branch, ListArray::Make(offsets, list.child()));
      columns.push_back(std::move(branch));
      continue;
    }
    const auto& st = static_cast<const StructArray&>(*list.child());
    for (const ArrayPtr& child : st.children()) {
      std::shared_ptr<ListArray> branch;
      HEPQ_ASSIGN_OR_RETURN(branch, ListArray::Make(offsets, child));
      columns.push_back(std::move(branch));
    }
  }
  std::shared_ptr<RecordBatch> batch;
  HEPQ_ASSIGN_OR_RETURN(batch,
                        RecordBatch::Make(flat_schema, std::move(columns)));
  return RecordBatchPtr(batch);
}

Result<RecordBatchPtr> FromRootLayout(const RecordBatch& flat,
                                      const SchemaPtr& nested_schema) {
  std::vector<ArrayPtr> columns;
  for (const Field& field : nested_schema->fields()) {
    const DataType& type = *field.type;
    if (type.is_primitive()) {
      ArrayPtr column = flat.ColumnByName(field.name);
      if (column == nullptr) {
        return Status::KeyError("flat batch is missing '" + field.name +
                                "'");
      }
      columns.push_back(std::move(column));
      continue;
    }
    if (type.id() == TypeId::kStruct) {
      std::vector<ArrayPtr> children;
      for (const Field& member : type.fields()) {
        ArrayPtr child = flat.ColumnByName(field.name + "_" + member.name);
        if (child == nullptr) {
          return Status::KeyError("flat batch is missing '" + field.name +
                                  "_" + member.name + "'");
        }
        children.push_back(std::move(child));
      }
      std::shared_ptr<StructArray> st;
      HEPQ_ASSIGN_OR_RETURN(
          st, StructArray::Make(type.fields(), std::move(children)));
      columns.push_back(std::move(st));
      continue;
    }
    // Particle column: validate the count branch against every member
    // branch, then share one offsets vector.
    ArrayPtr count_column = flat.ColumnByName("n" + field.name);
    if (count_column == nullptr ||
        count_column->type()->id() != TypeId::kInt32) {
      return Status::KeyError("flat batch is missing count branch 'n" +
                              field.name + "'");
    }
    const auto& counts = static_cast<const Int32Array&>(*count_column);
    std::vector<uint32_t> offsets(static_cast<size_t>(counts.length()) + 1,
                                  0);
    for (int64_t i = 0; i < counts.length(); ++i) {
      if (counts.Value(i) < 0) {
        return Status::Corruption("negative particle count in n" +
                                  field.name);
      }
      offsets[static_cast<size_t>(i) + 1] =
          offsets[static_cast<size_t>(i)] +
          static_cast<uint32_t>(counts.Value(i));
    }

    auto check_branch = [&](const ListArray& branch,
                            const std::string& name) -> Status {
      for (int64_t i = 0; i < branch.length(); ++i) {
        if (branch.list_length(i) != counts.Value(i)) {
          return Status::Corruption(
              "branch '" + name + "' disagrees with n" + field.name +
              " at event " + std::to_string(i) +
              " — the de-normalized ROOT layout lost consistency");
        }
      }
      return Status::OK();
    };

    const DataType& item = *type.item_type();
    if (item.is_primitive()) {
      ArrayPtr branch_column = flat.ColumnByName(field.name);
      if (branch_column == nullptr ||
          branch_column->type()->id() != TypeId::kList) {
        return Status::KeyError("flat batch is missing branch '" +
                                field.name + "'");
      }
      const auto& branch = static_cast<const ListArray&>(*branch_column);
      HEPQ_RETURN_NOT_OK(check_branch(branch, field.name));
      std::shared_ptr<ListArray> list;
      HEPQ_ASSIGN_OR_RETURN(list,
                            ListArray::Make(offsets, branch.child()));
      columns.push_back(std::move(list));
      continue;
    }
    std::vector<ArrayPtr> children;
    for (const Field& member : item.fields()) {
      const std::string branch_name = field.name + "_" + member.name;
      ArrayPtr branch_column = flat.ColumnByName(branch_name);
      if (branch_column == nullptr ||
          branch_column->type()->id() != TypeId::kList) {
        return Status::KeyError("flat batch is missing branch '" +
                                branch_name + "'");
      }
      const auto& branch = static_cast<const ListArray&>(*branch_column);
      HEPQ_RETURN_NOT_OK(check_branch(branch, branch_name));
      children.push_back(branch.child());
    }
    std::shared_ptr<StructArray> st;
    HEPQ_ASSIGN_OR_RETURN(
        st, StructArray::Make(item.fields(), std::move(children)));
    std::shared_ptr<ListArray> list;
    HEPQ_ASSIGN_OR_RETURN(list, ListArray::Make(std::move(offsets), st));
    columns.push_back(std::move(list));
  }
  std::shared_ptr<RecordBatch> batch;
  HEPQ_ASSIGN_OR_RETURN(batch, RecordBatch::Make(nested_schema,
                                                 std::move(columns)));
  return RecordBatchPtr(batch);
}

}  // namespace hepq
