#include "datagen/generator.h"

#include <algorithm>
#include <cmath>

#include "columnar/builder.h"

namespace hepq {

namespace {

double WrapPhi(double phi) {
  while (phi > M_PI) phi -= 2.0 * M_PI;
  while (phi <= -M_PI) phi += 2.0 * M_PI;
  return phi;
}

constexpr double kMuonMass = 0.1056584;
constexpr double kElectronMass = 0.000511;
constexpr double kZMass = 91.1876;
constexpr double kZWidth = 2.4952;

/// Leaf accumulator for one particle collection.
struct ParticleBuilder {
  std::vector<uint32_t> offsets{0};
  std::vector<float> pt, eta, phi, mass;
  std::vector<int32_t> charge;
  std::vector<float> iso;
  std::vector<float> btag;
  std::vector<float> dxy, dz;
  std::vector<int32_t> id;
  std::vector<float> area;
  std::vector<int32_t> ncons;

  void EndEvent() { offsets.push_back(static_cast<uint32_t>(pt.size())); }
};

double BreitWigner(Rng* rng, double mean, double width) {
  // Cauchy sampling via tangent; clamp to a physical window.
  double v;
  do {
    const double u = rng->NextDouble();
    v = mean + 0.5 * width * std::tan(M_PI * (u - 0.5));
  } while (v < mean - 30.0 || v > mean + 30.0);
  return v;
}

}  // namespace

EventGenerator::EventGenerator(GeneratorConfig config)
    : config_(config),
      rng_(config.seed),
      next_event_id_(config.first_event_id) {}

SchemaPtr EventGenerator::CmsSchema() {
  const auto f32 = DataType::Float32();
  const auto i32 = DataType::Int32();
  const auto i64 = DataType::Int64();
  const auto b = DataType::Bool();

  auto jet = DataType::List(DataType::Struct({
      {"pt", f32},
      {"eta", f32},
      {"phi", f32},
      {"mass", f32},
      {"btag", f32},
      {"jetId", i32},
      {"area", f32},
      {"nConstituents", i32},
  }));
  auto muon = DataType::List(DataType::Struct({
      {"pt", f32},
      {"eta", f32},
      {"phi", f32},
      {"mass", f32},
      {"charge", i32},
      {"pfRelIso03_all", f32},
      {"dxy", f32},
      {"dz", f32},
      {"tightId", b},
  }));
  auto electron = DataType::List(DataType::Struct({
      {"pt", f32},
      {"eta", f32},
      {"phi", f32},
      {"mass", f32},
      {"charge", i32},
      {"pfRelIso03_all", f32},
      {"dxy", f32},
      {"dz", f32},
      {"cutBasedId", i32},
  }));
  auto photon = DataType::List(DataType::Struct({
      {"pt", f32},
      {"eta", f32},
      {"phi", f32},
      {"mass", f32},
      {"pfRelIso03_all", f32},
  }));
  auto tau = DataType::List(DataType::Struct({
      {"pt", f32},
      {"eta", f32},
      {"phi", f32},
      {"mass", f32},
      {"charge", i32},
      {"decayMode", i32},
      {"relIso_all", f32},
  }));
  auto met = DataType::Struct({
      {"pt", f32},
      {"phi", f32},
      {"sumet", f32},
      {"significance", f32},
      {"covXX", f32},
      {"covXY", f32},
      {"covYY", f32},
  });
  auto pv = DataType::Struct({
      {"npvs", i32},
      {"x", f32},
      {"y", f32},
      {"z", f32},
  });

  return std::make_shared<Schema>(std::vector<Field>{
      {"run", i32},
      {"luminosityBlock", i32},
      {"event", i64},
      {"HLT_IsoMu24", b},
      {"HLT_IsoMu24_eta2p1", b},
      {"HLT_IsoMu17_eta2p1", b},
      {"MET", met},
      {"PV", pv},
      {"Jet", jet},
      {"Muon", muon},
      {"Electron", electron},
      {"Photon", photon},
      {"Tau", tau},
  });
}

RecordBatchPtr EventGenerator::GenerateBatch(int64_t num_events) {
  const size_t n = static_cast<size_t>(num_events);

  std::vector<int32_t> run(n, 194533);
  std::vector<int32_t> lumi(n);
  std::vector<int64_t> event_id(n);
  std::vector<uint8_t> hlt24(n), hlt24eta(n), hlt17(n);
  std::vector<float> met_pt(n), met_phi(n), met_sumet(n), met_sig(n);
  std::vector<float> met_cxx(n), met_cxy(n), met_cyy(n);
  std::vector<int32_t> pv_n(n);
  std::vector<float> pv_x(n), pv_y(n), pv_z(n);

  ParticleBuilder jets, muons, electrons, photons, taus;

  for (size_t i = 0; i < n; ++i) {
    const int64_t id = next_event_id_++;
    event_id[i] = id;
    lumi[i] = static_cast<int32_t>(id / 1000 + 1);

    // --- jets -----------------------------------------------------------
    int num_jets;
    const double jet_mix = rng_.NextDouble();
    if (jet_mix < config_.jet_very_busy_fraction) {
      num_jets = rng_.NextPoisson(config_.jet_very_busy_mean);
    } else if (jet_mix <
               config_.jet_very_busy_fraction + config_.jet_busy_fraction) {
      num_jets = rng_.NextPoisson(config_.jet_busy_mean);
    } else {
      num_jets = rng_.NextPoisson(config_.jet_soft_mean);
    }
    double sum_jet_pt = 0.0;
    for (int j = 0; j < num_jets; ++j) {
      const double pt =
          config_.jet_pt_min + rng_.Exponential(config_.jet_pt_scale);
      sum_jet_pt += pt;
      jets.pt.push_back(static_cast<float>(pt));
      jets.eta.push_back(static_cast<float>(
          std::clamp(rng_.Gaussian(0.0, 1.6), -4.7, 4.7)));
      jets.phi.push_back(static_cast<float>(rng_.Uniform(-M_PI, M_PI)));
      jets.mass.push_back(
          static_cast<float>(pt * 0.05 + rng_.Exponential(3.0)));
      // b-tag discriminant: light-flavour bulk near 0, b-like tail near 1.
      const double btag = rng_.NextBool(0.15)
                              ? 1.0 - std::min(rng_.Exponential(0.1), 1.0)
                              : std::min(rng_.Exponential(0.08), 1.0);
      jets.btag.push_back(static_cast<float>(btag));
      jets.id.push_back(rng_.NextBool(0.97) ? 6 : 2);
      jets.area.push_back(static_cast<float>(rng_.Gaussian(0.5, 0.05)));
      jets.ncons.push_back(
          2 + static_cast<int32_t>(rng_.NextPoisson(pt * 0.4)));
    }
    jets.EndEvent();

    // --- muons ----------------------------------------------------------
    const double mu_u = rng_.NextDouble();
    int num_muons = 5;
    for (int c = 0; c < 5; ++c) {
      if (mu_u < config_.muon_cumprob[c]) {
        num_muons = c;
        break;
      }
    }
    const bool z_mumu = rng_.NextBool(config_.z_to_mumu_fraction);
    auto emit_lepton_pair = [&](ParticleBuilder* out, double lepton_mass) {
      // Back-to-back decay of a Breit-Wigner Z in the transverse plane,
      // smeared so the reconstructed pair mass peaks near kZMass.
      const double m = BreitWigner(&rng_, kZMass, kZWidth);
      const double phi0 = rng_.Uniform(-M_PI, M_PI);
      const double eta1 = rng_.Gaussian(0.0, 1.1);
      const double eta2 = rng_.Gaussian(0.0, 1.1);
      // Choose pt so that the invariant mass of the two legs matches m:
      // m^2 ~= 2 pt1 pt2 (cosh(deta) - cos(dphi)); take pt1 = pt2 = pt.
      const double dphi = M_PI + rng_.Gaussian(0.0, 0.05);
      const double denom = 2.0 * (std::cosh(eta1 - eta2) - std::cos(dphi));
      const double pt = std::sqrt(m * m / std::max(denom, 1e-6));
      const int32_t charge1 = rng_.NextBool(0.5) ? 1 : -1;
      const double pts[2] = {pt, pt};
      const double etas[2] = {eta1, eta2};
      const double phis[2] = {phi0, WrapPhi(phi0 + dphi)};
      const int32_t charges[2] = {charge1, -charge1};
      for (int k = 0; k < 2; ++k) {
        out->pt.push_back(static_cast<float>(pts[k]));
        out->eta.push_back(static_cast<float>(etas[k]));
        out->phi.push_back(static_cast<float>(phis[k]));
        out->mass.push_back(static_cast<float>(lepton_mass));
        out->charge.push_back(charges[k]);
        out->iso.push_back(static_cast<float>(rng_.Exponential(0.05)));
        out->dxy.push_back(static_cast<float>(rng_.Gaussian(0.0, 0.01)));
        out->dz.push_back(static_cast<float>(rng_.Gaussian(0.0, 0.02)));
        // tightId for muons, cutBasedId tight (4) for electrons.
        out->id.push_back(lepton_mass == kMuonMass ? 1 : 4);
      }
    };
    int soft_muons = num_muons;
    if (z_mumu) {
      emit_lepton_pair(&muons, kMuonMass);
      soft_muons = std::max(0, num_muons - 2);
    }
    for (int m = 0; m < soft_muons; ++m) {
      const double pt =
          config_.lepton_pt_min + rng_.Exponential(config_.lepton_pt_scale);
      muons.pt.push_back(static_cast<float>(pt));
      muons.eta.push_back(static_cast<float>(
          std::clamp(rng_.Gaussian(0.0, 1.2), -2.4, 2.4)));
      muons.phi.push_back(static_cast<float>(rng_.Uniform(-M_PI, M_PI)));
      muons.mass.push_back(static_cast<float>(kMuonMass));
      muons.charge.push_back(rng_.NextBool(0.52) ? 1 : -1);
      muons.iso.push_back(static_cast<float>(rng_.Exponential(0.15)));
      muons.dxy.push_back(static_cast<float>(rng_.Gaussian(0.0, 0.01)));
      muons.dz.push_back(static_cast<float>(rng_.Gaussian(0.0, 0.02)));
      muons.id.push_back(rng_.NextBool(0.9) ? 1 : 0);
    }
    muons.EndEvent();

    // --- electrons ------------------------------------------------------
    int num_electrons = rng_.NextPoisson(config_.electron_mean);
    if (rng_.NextBool(config_.z_to_ee_fraction)) {
      emit_lepton_pair(&electrons, kElectronMass);
    }
    for (int e = 0; e < num_electrons; ++e) {
      const double pt =
          config_.lepton_pt_min + rng_.Exponential(config_.lepton_pt_scale);
      electrons.pt.push_back(static_cast<float>(pt));
      electrons.eta.push_back(static_cast<float>(
          std::clamp(rng_.Gaussian(0.0, 1.4), -2.5, 2.5)));
      electrons.phi.push_back(static_cast<float>(rng_.Uniform(-M_PI, M_PI)));
      electrons.mass.push_back(static_cast<float>(kElectronMass));
      electrons.charge.push_back(rng_.NextBool(0.5) ? 1 : -1);
      electrons.iso.push_back(static_cast<float>(rng_.Exponential(0.12)));
      electrons.dxy.push_back(static_cast<float>(rng_.Gaussian(0.0, 0.01)));
      electrons.dz.push_back(static_cast<float>(rng_.Gaussian(0.0, 0.02)));
      electrons.id.push_back(static_cast<int32_t>(rng_.NextBelow(5)));
    }
    electrons.EndEvent();

    // --- photons --------------------------------------------------------
    const int num_photons = rng_.NextPoisson(config_.photon_mean);
    for (int p = 0; p < num_photons; ++p) {
      photons.pt.push_back(static_cast<float>(2.0 + rng_.Exponential(9.0)));
      photons.eta.push_back(static_cast<float>(
          std::clamp(rng_.Gaussian(0.0, 1.5), -2.5, 2.5)));
      photons.phi.push_back(static_cast<float>(rng_.Uniform(-M_PI, M_PI)));
      photons.mass.push_back(0.0f);
      photons.iso.push_back(static_cast<float>(rng_.Exponential(0.2)));
    }
    photons.EndEvent();

    // --- taus -----------------------------------------------------------
    const int num_taus = rng_.NextPoisson(config_.tau_mean);
    for (int t = 0; t < num_taus; ++t) {
      taus.pt.push_back(static_cast<float>(18.0 + rng_.Exponential(14.0)));
      taus.eta.push_back(static_cast<float>(
          std::clamp(rng_.Gaussian(0.0, 1.3), -2.3, 2.3)));
      taus.phi.push_back(static_cast<float>(rng_.Uniform(-M_PI, M_PI)));
      taus.mass.push_back(1.777f);
      taus.charge.push_back(rng_.NextBool(0.5) ? 1 : -1);
      taus.id.push_back(static_cast<int32_t>(rng_.NextBelow(11)));
      taus.iso.push_back(static_cast<float>(rng_.Exponential(0.3)));
    }
    taus.EndEvent();

    // --- event-level ----------------------------------------------------
    const double met_x = rng_.Gaussian(0.0, config_.met_sigma);
    const double met_y = rng_.Gaussian(0.0, config_.met_sigma);
    met_pt[i] = static_cast<float>(std::hypot(met_x, met_y));
    met_phi[i] = static_cast<float>(std::atan2(met_y, met_x));
    met_sumet[i] =
        static_cast<float>(60.0 + rng_.Exponential(110.0) + 0.8 * sum_jet_pt);
    met_sig[i] = static_cast<float>(met_pt[i] /
                                    std::sqrt(std::max(1.0f, met_sumet[i])));
    met_cxx[i] = static_cast<float>(rng_.Gaussian(300.0, 40.0));
    met_cxy[i] = static_cast<float>(rng_.Gaussian(0.0, 25.0));
    met_cyy[i] = static_cast<float>(rng_.Gaussian(300.0, 40.0));

    pv_n[i] = 1 + rng_.NextPoisson(12.0);
    pv_x[i] = static_cast<float>(rng_.Gaussian(0.0, 0.02));
    pv_y[i] = static_cast<float>(rng_.Gaussian(0.0, 0.02));
    pv_z[i] = static_cast<float>(rng_.Gaussian(0.0, 5.0));

    const bool has_hard_muon =
        muons.offsets.back() > muons.offsets[muons.offsets.size() - 2] &&
        muons.pt[muons.offsets[muons.offsets.size() - 2]] > 24.0f;
    hlt24[i] = has_hard_muon && rng_.NextBool(0.93) ? 1 : 0;
    hlt24eta[i] = hlt24[i] != 0 && rng_.NextBool(0.9) ? 1 : 0;
    hlt17[i] = (has_hard_muon || rng_.NextBool(0.02)) ? 1 : 0;
  }

  auto make_particles = [](const SchemaPtr& schema, const std::string& name,
                           ParticleBuilder& b) -> ArrayPtr {
    const DataType& list_type = *schema->field(schema->FieldIndex(name)).type;
    const DataType& st = *list_type.item_type();
    std::vector<Field> fields = st.fields();
    std::vector<ArrayPtr> leaves;
    for (const Field& f : fields) {
      if (f.name == "pt") {
        leaves.push_back(MakeFloat32Array(std::move(b.pt)));
      } else if (f.name == "eta") {
        leaves.push_back(MakeFloat32Array(std::move(b.eta)));
      } else if (f.name == "phi") {
        leaves.push_back(MakeFloat32Array(std::move(b.phi)));
      } else if (f.name == "mass") {
        leaves.push_back(MakeFloat32Array(std::move(b.mass)));
      } else if (f.name == "charge") {
        leaves.push_back(MakeInt32Array(std::move(b.charge)));
      } else if (f.name == "btag") {
        leaves.push_back(MakeFloat32Array(std::move(b.btag)));
      } else if (f.name == "jetId" || f.name == "cutBasedId" ||
                 f.name == "decayMode") {
        leaves.push_back(MakeInt32Array(std::move(b.id)));
      } else if (f.name == "tightId") {
        std::vector<uint8_t> bits(b.id.size());
        for (size_t k = 0; k < b.id.size(); ++k) {
          bits[k] = b.id[k] != 0 ? 1 : 0;
        }
        leaves.push_back(MakeBoolArray(std::move(bits)));
      } else if (f.name == "pfRelIso03_all" || f.name == "relIso_all") {
        leaves.push_back(MakeFloat32Array(std::move(b.iso)));
      } else if (f.name == "dxy") {
        leaves.push_back(MakeFloat32Array(std::move(b.dxy)));
      } else if (f.name == "dz") {
        leaves.push_back(MakeFloat32Array(std::move(b.dz)));
      } else if (f.name == "area") {
        leaves.push_back(MakeFloat32Array(std::move(b.area)));
      } else if (f.name == "nConstituents") {
        leaves.push_back(MakeInt32Array(std::move(b.ncons)));
      }
    }
    return MakeListOfStructArray(fields, std::move(b.offsets),
                                 std::move(leaves))
        .ValueOrDie();
  };

  const SchemaPtr schema = CmsSchema();
  std::vector<ArrayPtr> columns;
  columns.push_back(MakeInt32Array(std::move(run)));
  columns.push_back(MakeInt32Array(std::move(lumi)));
  columns.push_back(MakeInt64Array(std::move(event_id)));
  columns.push_back(MakeBoolArray(std::move(hlt24)));
  columns.push_back(MakeBoolArray(std::move(hlt24eta)));
  columns.push_back(MakeBoolArray(std::move(hlt17)));
  columns.push_back(
      StructArray::Make(
          schema->field(schema->FieldIndex("MET")).type->fields(),
          {MakeFloat32Array(std::move(met_pt)),
           MakeFloat32Array(std::move(met_phi)),
           MakeFloat32Array(std::move(met_sumet)),
           MakeFloat32Array(std::move(met_sig)),
           MakeFloat32Array(std::move(met_cxx)),
           MakeFloat32Array(std::move(met_cxy)),
           MakeFloat32Array(std::move(met_cyy))})
          .ValueOrDie());
  columns.push_back(
      StructArray::Make(schema->field(schema->FieldIndex("PV")).type->fields(),
                        {MakeInt32Array(std::move(pv_n)),
                         MakeFloat32Array(std::move(pv_x)),
                         MakeFloat32Array(std::move(pv_y)),
                         MakeFloat32Array(std::move(pv_z))})
          .ValueOrDie());
  columns.push_back(make_particles(schema, "Jet", jets));
  columns.push_back(make_particles(schema, "Muon", muons));
  columns.push_back(make_particles(schema, "Electron", electrons));
  columns.push_back(make_particles(schema, "Photon", photons));
  columns.push_back(make_particles(schema, "Tau", taus));

  return RecordBatch::Make(schema, std::move(columns)).ValueOrDie();
}

}  // namespace hepq
