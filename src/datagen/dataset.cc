#include "datagen/dataset.h"

#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>

namespace hepq {

std::string DatasetSpec::FileName() const {
  char buf[128];
  std::snprintf(buf, sizeof(buf), "cms_%lldev_%lldrg_s%llu_%s.laq",
                static_cast<long long>(num_events),
                static_cast<long long>(row_group_size),
                static_cast<unsigned long long>(seed), CodecName(codec));
  return buf;
}

std::string DefaultDataDir() {
  const char* env = std::getenv("HEPQ_DATA_DIR");
  if (env != nullptr && env[0] != '\0') return env;
  return "hepq_data";
}

namespace {

bool FileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0 && S_ISREG(st.st_mode);
}

}  // namespace

Result<std::string> EnsureDataset(const std::string& directory,
                                  const DatasetSpec& spec) {
  if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create data directory '" + directory +
                           "'");
  }
  const std::string path = directory + "/" + spec.FileName();
  if (FileExists(path)) return path;

  GeneratorConfig config;
  config.seed = spec.seed;
  EventGenerator generator(config);
  WriterOptions options;
  options.row_group_size = spec.row_group_size;
  options.codec = spec.codec;

  // Write to a temporary name first so interrupted runs never leave a
  // half-written file under the canonical name.
  const std::string tmp_path = path + ".tmp";
  std::unique_ptr<LaqWriter> writer;
  HEPQ_ASSIGN_OR_RETURN(
      writer, LaqWriter::Open(tmp_path, EventGenerator::CmsSchema(), options));
  int64_t remaining = spec.num_events;
  while (remaining > 0) {
    const int64_t n = std::min(remaining, spec.row_group_size);
    HEPQ_RETURN_NOT_OK(writer->WriteBatch(*generator.GenerateBatch(n)));
    remaining -= n;
  }
  HEPQ_RETURN_NOT_OK(writer->Close());
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename temporary data set file");
  }
  return path;
}

std::string ShardedDatasetSpec::DirName() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf), "cms_%dx%lldev_%lldrg_s%llu_%s",
                num_shards, static_cast<long long>(events_per_shard),
                static_cast<long long>(row_group_size),
                static_cast<unsigned long long>(seed), CodecName(codec));
  return buf;
}

std::string ShardedDatasetSpec::ShardFileName(int shard) const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "shard_%04d.laq", shard);
  return buf;
}

uint64_t ShardSeed(uint64_t seed, int shard) {
  // splitmix64 finalizer over seed + shard * golden-gamma: decorrelates
  // consecutive shard indices into independent-looking streams.
  uint64_t z = seed + static_cast<uint64_t>(shard) * 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

Result<std::string> EnsureShardedDataset(const std::string& directory,
                                         const ShardedDatasetSpec& spec) {
  if (spec.num_shards < 1) {
    return Status::Invalid("sharded dataset needs at least one shard");
  }
  if (::mkdir(directory.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create data directory '" + directory +
                           "'");
  }
  const std::string dataset_dir = directory + "/" + spec.DirName();
  if (::mkdir(dataset_dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("cannot create dataset directory '" +
                           dataset_dir + "'");
  }
  WriterOptions options;
  options.row_group_size = spec.row_group_size;
  options.codec = spec.codec;
  for (int shard = 0; shard < spec.num_shards; ++shard) {
    const std::string path = dataset_dir + "/" + spec.ShardFileName(shard);
    if (FileExists(path)) continue;
    GeneratorConfig config;
    config.seed = ShardSeed(spec.seed, shard);
    config.first_event_id = shard * spec.events_per_shard;
    EventGenerator generator(config);
    const std::string tmp_path = path + ".tmp";
    std::unique_ptr<LaqWriter> writer;
    HEPQ_ASSIGN_OR_RETURN(
        writer,
        LaqWriter::Open(tmp_path, EventGenerator::CmsSchema(), options));
    int64_t remaining = spec.events_per_shard;
    while (remaining > 0) {
      const int64_t n = std::min(remaining, spec.row_group_size);
      HEPQ_RETURN_NOT_OK(writer->WriteBatch(*generator.GenerateBatch(n)));
      remaining -= n;
    }
    HEPQ_RETURN_NOT_OK(writer->Close());
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
      return Status::IoError("cannot rename temporary shard file '" +
                             tmp_path + "'");
    }
  }
  return dataset_dir;
}

Result<std::string> EnsureOptimizedDataset(const std::string& directory,
                                           const DatasetSpec& spec,
                                           const OptimizeOptions& options) {
  std::string input;
  HEPQ_ASSIGN_OR_RETURN(input, EnsureDataset(directory, spec));
  std::string path = input;
  const std::string suffix = ".laq";
  path.replace(path.size() - suffix.size(), suffix.size(), "_opt.laq");
  if (FileExists(path)) return path;
  const std::string tmp_path = path + ".tmp";
  LayoutAnalysis analysis;
  HEPQ_ASSIGN_OR_RETURN(analysis, OptimizeLaqFile(input, tmp_path, options));
  if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
    return Status::IoError("cannot rename temporary optimized data set file");
  }
  return path;
}

}  // namespace hepq
