#ifndef HEPQUERY_EXEC_EXEC_H_
#define HEPQUERY_EXEC_EXEC_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/status.h"
#include "fileio/reader.h"

namespace hepq::exec {

// Shared parallel execution runtime used by every frontend (rdf, the two
// SQL plan shapes, doc). Row groups are the scheduling unit, as in ROOT's
// implicit MT and every system of the paper; the work queue is LPT-ordered
// by row-group byte size so the largest groups start first and stragglers
// are minimized. Each row group accumulates into its own result slot and
// the caller merges slots in row-group order, which makes results
// bit-identical for 1 vs N threads regardless of scheduling.

/// A reusable fixed-size pool of worker threads. Workers are started once
/// and parked between jobs, replacing the per-Execute thread spawning the
/// frontends used to do. One job runs at a time; jobs are task index
/// ranges drained through a shared atomic cursor.
class ThreadPool {
 public:
  /// Starts `num_threads` (>= 1) parked workers.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Runs fn(worker, task) for every task in [0, num_tasks), using at most
  /// `max_workers` of the pool's threads (worker ids are < max_workers).
  /// Blocks until every task completed. `fn` must not throw and must be
  /// safe to call concurrently for distinct tasks.
  void ParallelFor(int max_workers, int num_tasks,
                   const std::function<void(int worker, int task)>& fn);

  /// Grows the pool to at least `num_threads` workers (never shrinks).
  void EnsureThreads(int num_threads);

  /// Process-wide pool shared by all frontends, lazily created and grown
  /// to the largest thread count ever requested.
  static ThreadPool& Shared(int min_threads);

 private:
  struct Job {
    const std::function<void(int, int)>* fn = nullptr;
    std::atomic<int> next{0};
    std::atomic<int> done{0};
    int num_tasks = 0;
    int max_workers = 0;
  };

  void WorkerLoop(int worker);

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::condition_variable done_cv_;
  std::mutex run_mu_;  // serializes ParallelFor calls
  uint64_t generation_ = 0;
  std::shared_ptr<Job> job_;  // non-null while a job is live
  bool shutdown_ = false;
  std::vector<std::thread> workers_;
};

/// One schedulable unit of scan work: a row group and its on-storage size.
struct RowGroupTask {
  int group = 0;
  uint64_t bytes = 0;
};

/// Tasks for every row group of `metadata`, sized by the sum of the
/// group's compressed chunk sizes (what a worker actually reads).
std::vector<RowGroupTask> MakeRowGroupTasks(const FileMetadata& metadata);

/// Resolved physical layout of a dataset: one .laq file, or every shard of
/// a dataset directory, with row groups numbered globally in file-major
/// order (file order is the sorted shard list — the same order
/// DatasetReader, the scatter/gather coordinator, and the tools use). The
/// layout is the frontends' one source of truth for scheduling and for
/// the two-level deterministic merge: per-group partials fold into a
/// per-file subtotal in local group order, and file subtotals fold into
/// the result in file order. A P-process scatter/gather run gathers
/// exactly those per-file subtotals in the same order, so single-process
/// and multi-process results are bit-identical by construction.
struct DatasetLayout {
  struct Group {
    int file = 0;         // index into `files`
    int local_group = 0;  // row group index within that file
    int64_t num_rows = 0;
    uint64_t bytes = 0;   // compressed chunk bytes (the LPT weight)
  };
  std::vector<std::string> files;
  std::vector<Group> groups;  // global group order: file-major
  int64_t total_rows = 0;

  int num_files() const { return static_cast<int>(files.size()); }
  int num_groups() const { return static_cast<int>(groups.size()); }
};

/// Resolves `path` — a .laq file or a dataset directory of "*.laq" shards
/// — by opening each member file once for its footer. All shards must
/// share the first file's schema.
Result<DatasetLayout> ResolveDatasetLayout(const std::string& path,
                                           const ReaderOptions& options);

/// Layout of one already-open file (the single-reader execution paths).
DatasetLayout MakeSingleFileLayout(const std::string& path,
                                   const FileMetadata& metadata);

/// Tasks for every global row group of `layout`.
std::vector<RowGroupTask> MakeRowGroupTasks(const DatasetLayout& layout);

/// LPT (longest processing time first) order: descending byte size, ties
/// broken by ascending group index so the order is deterministic.
void SortLpt(std::vector<RowGroupTask>* tasks);

/// Number of workers a run will actually use: `num_threads` clamped to
/// [1, num_tasks]. Callers size per-worker state with this.
int EffectiveWorkers(int num_threads, size_t num_tasks);

/// Runs process(worker, group) for every task. Tasks are LPT-ordered and
/// drained by EffectiveWorkers(num_threads, tasks.size()) workers of the
/// shared pool; a single effective worker runs inline on the calling
/// thread with worker id 0. After a failure, tasks with group index >= the
/// smallest failing group so far are skipped while smaller groups still
/// run, so the reported error is exactly that of the smallest failing
/// group — deterministic for any thread count (corruption_test relies on
/// this to assert identical errors for 1 vs N workers).
Status RunRowGroups(int num_threads, std::vector<RowGroupTask> tasks,
                    const std::function<Status(int worker, int group)>& process);

/// Per-worker readers over a dataset: each worker slot lazily opens its
/// own LaqReader (file handles are not shareable across threads) and owns
/// a ScratchBuffers pool so decode buffers are reused across all row
/// groups the worker processes. A slot keeps at most ONE file of the
/// dataset open at a time — switching files closes the previous reader
/// after banking its scan stats — so per-worker memory and descriptor
/// usage stay bounded by a single shard's working set no matter how many
/// shards the dataset has (the out-of-core contract of the scale-out
/// runtime).
class WorkerReaders {
 public:
  /// Single-file dataset (the pre-dataset constructor, kept for callers
  /// that schedule over one file's metadata).
  WorkerReaders(std::string path, ReaderOptions options, int num_workers);

  /// Dataset-aware: `layout` must outlive the WorkerReaders.
  WorkerReaders(const DatasetLayout* layout, ReaderOptions options,
                int num_workers);

  /// The worker's reader over dataset file `file`, opened on first use.
  /// Only worker `worker` may call this with its own id during a parallel
  /// run. Opening a different file than the slot currently holds closes
  /// the held reader (its ScanStats are retained).
  Result<LaqReader*> reader(int worker, int file);

  /// The worker's reader over file 0 (single-file datasets).
  Result<LaqReader*> reader(int worker) { return reader(worker, 0); }

  /// The worker's scratch buffer pool.
  ScratchBuffers* scratch(int worker) {
    return &slots_[static_cast<size_t>(worker)].scratch;
  }

  /// Opaque per-worker engine state riding alongside the decode scratch
  /// (e.g. the expression VM's register and selection buffers, and the
  /// 64-byte-aligned strip-block storage of the fused kernel tier —
  /// engine::VexprScratch). The slot starts empty; the engine creates its
  /// state on the worker's first row group and reuses it for the rest of
  /// the run, keeping the hot path allocation-free and every worker's
  /// kernel scratch thread-private. exec stays ignorant of the concrete
  /// type.
  std::shared_ptr<void>& engine_scratch(int worker) {
    return slots_[static_cast<size_t>(worker)].engine_scratch;
  }

  /// Metadata of file 0, via worker 0's reader (opens it if needed).
  Result<const FileMetadata*> metadata();

  /// Sum of the scan stats of every reader this run opened, including
  /// readers already closed by a file switch. Integer counters, so the
  /// total is independent of scheduling. Call only after a run.
  ScanStats TotalScanStats() const;

 private:
  struct Slot {
    std::unique_ptr<LaqReader> reader;
    int open_file = -1;
    /// Stats banked from readers this slot closed on a file switch.
    ScanStats closed_stats;
    ScratchBuffers scratch;
    std::shared_ptr<void> engine_scratch;
  };

  std::vector<std::string> files_;
  ReaderOptions options_;
  std::vector<Slot> slots_;
};

}  // namespace hepq::exec

#endif  // HEPQUERY_EXEC_EXEC_H_
