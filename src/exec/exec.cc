#include "exec/exec.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "fileio/dataset_reader.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace hepq::exec {

ThreadPool::ThreadPool(int num_threads) {
  if (num_threads < 1) num_threads = 1;
  workers_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::EnsureThreads(int num_threads) {
  std::lock_guard<std::mutex> run_lock(run_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  const int have = static_cast<int>(workers_.size());
  for (int i = have; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

void ThreadPool::WorkerLoop(int worker) {
  uint64_t seen_generation = 0;
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [&] {
        return shutdown_ || (job_ != nullptr && generation_ != seen_generation);
      });
      if (shutdown_) return;
      seen_generation = generation_;
      if (worker >= job_->max_workers) continue;  // not part of this job
      job = job_;  // shared ownership: job outlives the final done increment
    }
    for (;;) {
      const int task = job->next.fetch_add(1, std::memory_order_relaxed);
      if (task >= job->num_tasks) break;
      (*job->fn)(worker, task);
      if (job->done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
          job->num_tasks) {
        std::lock_guard<std::mutex> lock(mu_);
        done_cv_.notify_all();
      }
    }
  }
}

void ThreadPool::ParallelFor(int max_workers, int num_tasks,
                             const std::function<void(int, int)>& fn) {
  if (num_tasks <= 0) return;
  max_workers = std::min(max_workers, num_threads());
  if (max_workers <= 1) {
    for (int task = 0; task < num_tasks; ++task) fn(0, task);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto job = std::make_shared<Job>();
  job->fn = &fn;
  job->num_tasks = num_tasks;
  job->max_workers = max_workers;
  {
    std::lock_guard<std::mutex> lock(mu_);
    job_ = job;
    ++generation_;
  }
  work_cv_.notify_all();
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [&] {
      return job->done.load(std::memory_order_acquire) == num_tasks;
    });
    job_.reset();
  }
}

ThreadPool& ThreadPool::Shared(int min_threads) {
  static ThreadPool* pool = new ThreadPool(1);  // leaked: outlives main
  if (min_threads > pool->num_threads()) pool->EnsureThreads(min_threads);
  return *pool;
}

std::vector<RowGroupTask> MakeRowGroupTasks(const FileMetadata& metadata) {
  std::vector<RowGroupTask> tasks;
  tasks.reserve(metadata.row_groups.size());
  for (size_t g = 0; g < metadata.row_groups.size(); ++g) {
    uint64_t bytes = 0;
    for (const ChunkMeta& chunk : metadata.row_groups[g].chunks) {
      bytes += chunk.compressed_size;
    }
    tasks.push_back(RowGroupTask{static_cast<int>(g), bytes});
  }
  return tasks;
}

namespace {

void AppendFileGroups(DatasetLayout* layout, int file,
                      const FileMetadata& metadata) {
  for (size_t g = 0; g < metadata.row_groups.size(); ++g) {
    DatasetLayout::Group group;
    group.file = file;
    group.local_group = static_cast<int>(g);
    group.num_rows = metadata.row_groups[g].num_rows;
    for (const ChunkMeta& chunk : metadata.row_groups[g].chunks) {
      group.bytes += chunk.compressed_size;
    }
    layout->total_rows += group.num_rows;
    layout->groups.push_back(group);
  }
}

}  // namespace

Result<DatasetLayout> ResolveDatasetLayout(const std::string& path,
                                           const ReaderOptions& options) {
  DatasetLayout layout;
  if (IsDirectory(path)) {
    HEPQ_ASSIGN_OR_RETURN(layout.files, ListLaqFiles(path));
  } else {
    layout.files.push_back(path);
  }
  Schema first_schema;
  for (size_t f = 0; f < layout.files.size(); ++f) {
    std::unique_ptr<LaqReader> reader;
    HEPQ_ASSIGN_OR_RETURN(reader,
                          LaqReader::Open(layout.files[f], options));
    if (f == 0) {
      first_schema = reader->schema();
    } else if (!reader->schema().Equals(first_schema)) {
      return Status::Invalid("dataset file '" + layout.files[f] +
                             "' has a different schema than '" +
                             layout.files[0] + "'");
    }
    AppendFileGroups(&layout, static_cast<int>(f), reader->metadata());
  }
  return layout;
}

DatasetLayout MakeSingleFileLayout(const std::string& path,
                                   const FileMetadata& metadata) {
  DatasetLayout layout;
  layout.files.push_back(path);
  AppendFileGroups(&layout, 0, metadata);
  return layout;
}

std::vector<RowGroupTask> MakeRowGroupTasks(const DatasetLayout& layout) {
  std::vector<RowGroupTask> tasks;
  tasks.reserve(layout.groups.size());
  for (size_t g = 0; g < layout.groups.size(); ++g) {
    tasks.push_back(
        RowGroupTask{static_cast<int>(g), layout.groups[g].bytes});
  }
  return tasks;
}

void SortLpt(std::vector<RowGroupTask>* tasks) {
  std::sort(tasks->begin(), tasks->end(),
            [](const RowGroupTask& a, const RowGroupTask& b) {
              if (a.bytes != b.bytes) return a.bytes > b.bytes;
              return a.group < b.group;
            });
}

int EffectiveWorkers(int num_threads, size_t num_tasks) {
  int workers = std::max(num_threads, 1);
  if (num_tasks < static_cast<size_t>(workers)) {
    workers = static_cast<int>(num_tasks);
  }
  return std::max(workers, 1);
}

Status RunRowGroups(int num_threads, std::vector<RowGroupTask> tasks,
                    const std::function<Status(int, int)>& process) {
  if (tasks.empty()) return Status::OK();
  SortLpt(&tasks);
  const int workers = EffectiveWorkers(num_threads, tasks.size());
  // Deterministic error contract, shared by the inline and parallel paths:
  // once a group has failed, tasks whose group index is >= the smallest
  // failing group so far are skipped (they can change neither the outcome
  // nor the reported error), while smaller groups are always attempted —
  // so the reported error is exactly the error of the smallest failing
  // group, independent of thread count and scheduling. A corrupt file
  // therefore produces the same Status for 1 and N threads.
  std::mutex error_mu;
  Status first_error = Status::OK();
  std::atomic<int> error_group{std::numeric_limits<int>::max()};
  // Scheduling observability: when a trace session is active at job start,
  // each executed task records a row-group span carrying the worker id,
  // the task's position in the LPT order (`slot`), and the queue wait —
  // the gap between this worker finishing its previous task and starting
  // this one. The decision is latched here so a session starting mid-run
  // cannot observe half a job (or index a vector sized for no workers).
  const bool tracing = obs::TracingActive();
  // The metrics registry wants the same queue-wait numbers, so the
  // per-worker last-end clock runs when either consumer is on.
  const bool timing = tracing || obs::metrics::MetricsEnabled();
  std::vector<int64_t> last_end;
  if (timing) {
    last_end.assign(static_cast<size_t>(workers), obs::NowNs());
  }
  static auto& groups_run =
      obs::metrics::GetCounter("hepq_exec_groups_run_total");
  static auto& queue_depth = obs::metrics::GetGauge("hepq_exec_queue_depth");
  static auto& queue_wait =
      obs::metrics::GetHistogram("hepq_exec_queue_wait_ns");
  queue_depth.Add(static_cast<int64_t>(tasks.size()));
  const auto run_one = [&](int worker, int slot, const RowGroupTask& task) {
    const int group = task.group;
    if (group >= error_group.load(std::memory_order_acquire)) {
      queue_depth.Sub(1);
      return;
    }
    obs::ScopedSpan span("row_group", obs::Stage::kRowGroup);
    int64_t wait_ns = 0;
    if (timing) {
      const int64_t start =
          (tracing && span.active()) ? span.start_ns() : obs::NowNs();
      wait_ns = start - last_end[static_cast<size_t>(worker)];
    }
    if (tracing && span.active()) {
      span.set_worker(worker);
      span.set_group(group);
      span.set_slot(slot);
      span.set_bytes(task.bytes);
      span.set_queue_ns(wait_ns);
    }
    groups_run.Add(1);
    queue_wait.Observe(wait_ns);
    Status status = process(worker, group);
    if (timing) {
      last_end[static_cast<size_t>(worker)] = obs::NowNs();
    }
    queue_depth.Sub(1);
    if (!status.ok()) {
      std::lock_guard<std::mutex> lock(error_mu);
      if (group < error_group.load(std::memory_order_relaxed)) {
        error_group.store(group, std::memory_order_release);
        first_error = std::move(status);
      }
    }
  };
  if (workers == 1) {
    // Inline path: same task order and per-group accumulation structure as
    // the parallel path, so results match bit for bit.
    for (size_t i = 0; i < tasks.size(); ++i) {
      run_one(0, static_cast<int>(i), tasks[i]);
    }
  } else {
    ThreadPool::Shared(workers).ParallelFor(
        workers, static_cast<int>(tasks.size()), [&](int worker, int index) {
          run_one(worker, index, tasks[static_cast<size_t>(index)]);
        });
  }
  return first_error;
}

WorkerReaders::WorkerReaders(std::string path, ReaderOptions options,
                             int num_workers)
    : options_(options) {
  files_.push_back(std::move(path));
  slots_.resize(static_cast<size_t>(std::max(num_workers, 1)));
}

WorkerReaders::WorkerReaders(const DatasetLayout* layout,
                             ReaderOptions options, int num_workers)
    : files_(layout->files), options_(options) {
  slots_.resize(static_cast<size_t>(std::max(num_workers, 1)));
}

Result<LaqReader*> WorkerReaders::reader(int worker, int file) {
  Slot& slot = slots_[static_cast<size_t>(worker)];
  if (slot.reader != nullptr && slot.open_file != file) {
    // Out-of-core discipline: one open shard per worker. Bank the closed
    // reader's stats so TotalScanStats still sees every byte. The
    // validated FileMetadata itself is NOT thrown away: it stays banked
    // in the process-wide footer cache, so re-opening this shard later —
    // by this slot, another worker, or another query — skips footer
    // parse + validation entirely (ScanStats::footer_cache_hits counts
    // the reuses).
    slot.closed_stats.Add(slot.reader->scan_stats());
    slot.reader.reset();
    slot.open_file = -1;
  }
  if (slot.reader == nullptr) {
    obs::ScopedSpan span("open_reader", obs::Stage::kOpen);
    if (span.active()) span.set_worker(worker);
    HEPQ_ASSIGN_OR_RETURN(
        slot.reader,
        LaqReader::Open(files_[static_cast<size_t>(file)], options_));
    slot.open_file = file;
  }
  return slot.reader.get();
}

Result<const FileMetadata*> WorkerReaders::metadata() {
  LaqReader* reader0;
  HEPQ_ASSIGN_OR_RETURN(reader0, reader(0));
  return &reader0->metadata();
}

ScanStats WorkerReaders::TotalScanStats() const {
  ScanStats total;
  for (const Slot& slot : slots_) {
    total.Add(slot.closed_stats);
    if (slot.reader != nullptr) total.Add(slot.reader->scan_stats());
  }
  return total;
}

}  // namespace hepq::exec
