// ROOT-layout analysis: the paper (§3.1) contrasts ROOT files — which
// expose particles as decomposed parallel branches (nJet, Jet_pt,
// Jet_eta, ...) both physically and logically — with the nested
// list<struct> representation the relational systems use. This example
// converts the synthetic data set to the ROOT-style flat layout, stores
// it in the same `laq` format, and runs the identical analysis against
// both layouts: the physics agrees, only the programming model differs
// (re-composing particles from parallel branches by index).

#include <cstdio>

#include "datagen/dataset.h"
#include "datagen/generator.h"
#include "datagen/root_layout.h"
#include "fileio/writer.h"
#include "rdf/rdf.h"

using hepq::rdf::EventView;
using hepq::rdf::RDataFrame;

int main() {
  // Nested data set (list<struct> particles).
  hepq::DatasetSpec spec;
  spec.num_events = 30000;
  spec.row_group_size = 10000;
  auto nested_path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
  nested_path.status().Check();

  // Convert to the ROOT-style flat layout and store alongside.
  const std::string flat_path =
      hepq::DefaultDataDir() + "/cms_root_layout_30000ev.laq";
  {
    hepq::GeneratorConfig config;
    hepq::EventGenerator generator(config);
    auto flat_schema =
        hepq::RootLayoutSchema(*hepq::EventGenerator::CmsSchema())
            .ValueOrDie();
    hepq::WriterOptions options;
    options.row_group_size = spec.row_group_size;
    auto writer =
        hepq::LaqWriter::Open(flat_path, flat_schema, options).ValueOrDie();
    for (int64_t done = 0; done < spec.num_events;
         done += spec.row_group_size) {
      auto nested = generator.GenerateBatch(
          std::min(spec.row_group_size, spec.num_events - done));
      writer->WriteBatch(*hepq::ToRootLayout(*nested).ValueOrDie()).Check();
    }
    writer->Close().Check();
  }

  const hepq::HistogramSpec histogram_spec{"q3", "pt of central jets", 100,
                                           0.0, 200.0};

  // Analysis on the nested layout: one logical Jet column.
  auto nested_df = RDataFrame::Open(*nested_path).ValueOrDie();
  auto jet_pt = nested_df->Particles<float>("Jet.pt").ValueOrDie();
  auto jet_eta = nested_df->Particles<float>("Jet.eta").ValueOrDie();
  auto h_nested = nested_df->root().Histo1DVec(
      histogram_spec, [jet_pt, jet_eta](const EventView& e) {
        const auto pts = e.Get(jet_pt);
        const auto etas = e.Get(jet_eta);
        hepq::rdf::RVecD out;
        for (size_t i = 0; i < pts.size(); ++i) {
          if (std::abs(etas[i]) < 1.0f) out.push_back(pts[i]);
        }
        return out;
      });
  nested_df->Run().Check();

  // The same analysis on the ROOT layout: parallel Jet_pt/Jet_eta
  // branches, re-composed by index — the extra mental step the paper
  // says the nested representation removes.
  auto flat_df = RDataFrame::Open(flat_path).ValueOrDie();
  auto branch_pt = flat_df->Particles<float>("Jet_pt").ValueOrDie();
  auto branch_eta = flat_df->Particles<float>("Jet_eta").ValueOrDie();
  auto h_flat = flat_df->root().Histo1DVec(
      histogram_spec, [branch_pt, branch_eta](const EventView& e) {
        const auto pts = e.Get(branch_pt);
        const auto etas = e.Get(branch_eta);
        hepq::rdf::RVecD out;
        for (size_t i = 0; i < pts.size(); ++i) {
          if (std::abs(etas[i]) < 1.0f) out.push_back(pts[i]);
        }
        return out;
      });
  flat_df->Run().Check();

  const auto& nested_hist = nested_df->GetHistogram(h_nested);
  const auto& flat_hist = flat_df->GetHistogram(h_flat);
  std::printf("nested layout: %llu entries, mean %.4f\n",
              static_cast<unsigned long long>(nested_hist.num_entries()),
              nested_hist.mean());
  std::printf("ROOT layout:   %llu entries, mean %.4f\n",
              static_cast<unsigned long long>(flat_hist.num_entries()),
              flat_hist.mean());
  std::printf("identical: %s\n",
              nested_hist.ApproxEquals(flat_hist) ? "yes" : "NO");
  std::printf(
      "\nbytes read  nested: %llu   ROOT layout: %llu\n"
      "(same physical shredding on disk; the layouts differ only in the\n"
      "logical schema the query author sees — paper §3.1)\n",
      static_cast<unsigned long long>(
          nested_df->run_stats().scan.storage_bytes),
      static_cast<unsigned long long>(
          flat_df->run_stats().scan.storage_bytes));
  return nested_hist.ApproxEquals(flat_hist) ? 0 : 1;
}
