// Trijet top-quark candidate search (ADL Q6), run on all four execution
// models to show that they agree bit-for-bit on the physics while
// differing by orders of magnitude in cost — the central observation of
// the paper.

#include <cstdio>

#include "datagen/dataset.h"
#include "queries/adl.h"

int main() {
  using hepq::queries::EngineKind;
  using hepq::queries::EngineKindName;
  using hepq::queries::RunAdlQuery;

  hepq::DatasetSpec spec;
  spec.num_events = 20000;
  spec.row_group_size = 5000;
  auto path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
  path.status().Check();

  std::printf(
      "ADL Q6: in events with >= 3 jets, find the trijet whose invariant\n"
      "mass is closest to the top-quark mass (172.5 GeV); plot the trijet\n"
      "pt and its maximum b-tag discriminant.\n\n");

  const EngineKind engines[] = {EngineKind::kRdf, EngineKind::kBigQueryShape,
                                EngineKind::kPrestoShape, EngineKind::kDoc};
  std::printf("%-16s %12s %12s %14s %14s\n", "engine", "cpu [s]",
              "entries", "mean pt", "mean max-btag");
  hepq::Histogram1D reference;
  bool have_reference = false;
  for (EngineKind engine : engines) {
    auto result = RunAdlQuery(engine, 6, *path);
    result.status().Check();
    std::printf("%-16s %12.3f %12llu %14.3f %14.4f\n",
                EngineKindName(engine), result->cpu_seconds,
                static_cast<unsigned long long>(
                    result->histograms[0].num_entries()),
                result->histograms[0].mean(), result->histograms[1].mean());
    if (!have_reference) {
      reference = result->histograms[0];
      have_reference = true;
    } else if (!reference.ApproxEquals(result->histograms[0], 1e-6)) {
      std::printf("  ^^ MISMATCH against the RDataFrame reference!\n");
      return 1;
    }
  }
  std::printf(
      "\nAll engines produce identical histograms; the cost spread is the\n"
      "execution model: compiled event loop vs interpreted expressions vs\n"
      "flattening plans vs boxed items (paper Figures 1/4, query Q6).\n");
  return 0;
}
