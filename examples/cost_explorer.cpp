// Cost explorer: answer "where should I run this analysis?" for one ADL
// query. Measures the real engines locally, extrapolates to the paper's
// full 53.4M-event data set, and prints the simulated wall-clock/cost
// matrix across cloud deployments — a single-query slice of Figure 1.
//
// Usage: cost_explorer [query 1..8]   (default: 5)

#include <cstdio>
#include <cstdlib>

#include "cloud/simulator.h"
#include "datagen/dataset.h"
#include "queries/adl.h"

using hepq::cloud::CloudSystem;
using hepq::cloud::CloudSystemName;
using hepq::cloud::InstanceType;
using hepq::cloud::IsQaas;
using hepq::cloud::M5dInstances;
using hepq::cloud::MeasuredQuery;
using hepq::cloud::SimulateOn;
using hepq::queries::EngineKind;
using hepq::queries::RunAdlQuery;

namespace {

constexpr int64_t kPaperEvents = 53446198;
constexpr int kPaperRowGroups = 128;

MeasuredQuery Extrapolate(const hepq::queries::QueryRunOutput& output) {
  MeasuredQuery measured;
  const double scale = static_cast<double>(kPaperEvents) /
                       static_cast<double>(output.events_processed);
  measured.cpu_seconds = output.cpu_seconds * scale;
  measured.storage_bytes =
      static_cast<uint64_t>(output.scan.storage_bytes * scale);
  measured.logical_bytes_bq =
      static_cast<uint64_t>(output.scan.logical_bytes_bq * scale);
  measured.row_groups = kPaperRowGroups;
  measured.events = kPaperEvents;
  return measured;
}

}  // namespace

int main(int argc, char** argv) {
  const int q = argc > 1 ? std::atoi(argv[1]) : 5;
  if (q < 1 || q > 8) {
    std::fprintf(stderr, "usage: %s [query 1..8]\n", argv[0]);
    return 1;
  }

  hepq::DatasetSpec spec;
  spec.num_events = 20000;
  spec.row_group_size = 5000;
  auto path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
  path.status().Check();

  std::printf("Q%d: %s\n", q, hepq::queries::AdlQueryTitle(q));
  std::printf("measuring engines on %lld local events, extrapolating to "
              "%lld events...\n\n",
              static_cast<long long>(spec.num_events),
              static_cast<long long>(kPaperEvents));

  struct Deployment {
    CloudSystem system;
    EngineKind engine;
  };
  const Deployment deployments[] = {
      {CloudSystem::kBigQuery, EngineKind::kBigQueryShape},
      {CloudSystem::kBigQueryExternal, EngineKind::kBigQueryShape},
      {CloudSystem::kAthenaV2, EngineKind::kPrestoShape},
      {CloudSystem::kPresto, EngineKind::kPrestoShape},
      {CloudSystem::kRDataFrame, EngineKind::kRdf},
      {CloudSystem::kRumble, EngineKind::kDoc},
  };

  std::printf("%-14s %-14s %12s %14s\n", "system", "instance", "wall [s]",
              "cost [USD]");
  double best_cost = 1e300, best_wall = 1e300;
  std::string cheapest, fastest;
  for (const Deployment& deployment : deployments) {
    auto output = RunAdlQuery(deployment.engine, q, *path);
    output.status().Check();
    const MeasuredQuery measured = Extrapolate(*output);
    if (IsQaas(deployment.system)) {
      auto outcome = SimulateOn(deployment.system, measured, "");
      outcome.status().Check();
      std::printf("%-14s %-14s %12.2f %14.6f\n",
                  CloudSystemName(deployment.system), "(elastic)",
                  outcome->wall_seconds, outcome->cost_usd);
      if (outcome->cost_usd < best_cost) {
        best_cost = outcome->cost_usd;
        cheapest = CloudSystemName(deployment.system);
      }
      if (outcome->wall_seconds < best_wall) {
        best_wall = outcome->wall_seconds;
        fastest = CloudSystemName(deployment.system);
      }
      continue;
    }
    for (const InstanceType& instance : M5dInstances()) {
      auto outcome = SimulateOn(deployment.system, measured, instance.name);
      outcome.status().Check();
      std::printf("%-14s %-14s %12.2f %14.6f\n",
                  CloudSystemName(deployment.system), instance.name.c_str(),
                  outcome->wall_seconds, outcome->cost_usd);
      if (outcome->cost_usd < best_cost) {
        best_cost = outcome->cost_usd;
        cheapest = std::string(CloudSystemName(deployment.system)) + " on " +
                   instance.name;
      }
      if (outcome->wall_seconds < best_wall) {
        best_wall = outcome->wall_seconds;
        fastest = std::string(CloudSystemName(deployment.system)) + " on " +
                  instance.name;
      }
    }
  }
  std::printf("\nfastest:  %s (%.2f s)\ncheapest: %s (%.6f USD)\n",
              fastest.c_str(), best_wall, cheapest.c_str(), best_cost);
  return 0;
}
