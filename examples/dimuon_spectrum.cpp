// Dimuon invariant-mass spectrum: the classic "rediscover the Z boson"
// analysis (the physics behind ADL Q5), expressed as a declarative
// per-event query plan on the relational engine — the BigQuery-shape
// execution model — and rendered as an ASCII histogram.

#include <algorithm>
#include <cstdio>

#include "datagen/dataset.h"
#include "engine/event_query.h"
#include "fileio/reader.h"

namespace e = hepq::engine;

namespace {

void RenderAscii(const hepq::Histogram1D& h) {
  double peak = 1.0;
  for (int b = 0; b < h.spec().num_bins; ++b) {
    peak = std::max(peak, h.BinContent(b));
  }
  for (int b = 0; b < h.spec().num_bins; b += 2) {
    const double content = h.BinContent(b) + h.BinContent(b + 1);
    const int width = static_cast<int>(60.0 * content / (2.0 * peak));
    std::printf("%7.1f | %-60.*s %6.0f\n", h.BinLowEdge(b), width,
                "############################################################",
                content);
  }
}

}  // namespace

int main() {
  hepq::DatasetSpec spec;
  spec.num_events = 100000;
  spec.row_group_size = 25000;
  auto path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
  path.status().Check();

  // Declarative plan: per event, find the opposite-charge muon pair whose
  // invariant mass is closest to the Z mass and histogram that mass (the
  // "best-candidate" idiom Q6/Q8 use).
  e::EventQuery query("dimuon");
  const int muons =
      query.DeclareList("Muon", {"pt", "eta", "phi", "mass", "charge"});
  auto kin = [&](int iter) {
    return std::vector<e::ExprPtr>{
        e::IterMember(muons, iter, 0), e::IterMember(muons, iter, 1),
        e::IterMember(muons, iter, 2), e::IterMember(muons, iter, 3)};
  };
  auto pair_mass_for = [&](int a, int b) {
    std::vector<e::ExprPtr> args = kin(a);
    const auto second = kin(b);
    args.insert(args.end(), second.begin(), second.end());
    return e::Call(e::Fn::kInvMass2, args);
  };
  const e::ExprPtr pair_mass = pair_mass_for(0, 1);

  // Full spectrum: one entry per opposite-charge pair (the SQL "emit all
  // qualifying pairs" pattern). Uses iterator slots 2/3 so it cannot
  // disturb the best-pair binding on slots 0/1.
  query.AddPerCombinationHistogram(
      {"m_mumu", "dimuon invariant mass [GeV]", 60, 30.0, 150.0},
      {{muons, 2}, {muons, 3}},
      e::Ne(e::IterMember(muons, 2, 4), e::IterMember(muons, 3, 4)),
      pair_mass_for(2, 3));
  // Best-candidate spectrum: per event, the pair closest to the Z mass
  // (the Q6/Q8 idiom), sharpening the peak.
  query.AddStage(e::BestCombination(
      {{muons, 0}, {muons, 1}},
      e::Ne(e::IterMember(muons, 0, 4), e::IterMember(muons, 1, 4)),
      e::Abs(e::Sub(pair_mass, e::Lit(91.2)))));
  query.AddHistogram({"m_best", "best-pair invariant mass [GeV]", 60, 30.0,
                      150.0},
                     pair_mass);

  auto reader = hepq::LaqReader::Open(*path).ValueOrDie();
  auto result = query.Execute(reader.get()).ValueOrDie();

  std::printf("events: %lld, with OS dimuon: %lld\n",
              static_cast<long long>(result.events_processed),
              static_cast<long long>(result.events_selected));
  std::printf("\nall-pairs dimuon invariant mass spectrum (Z peak at ~91 "
              "GeV):\n\n");
  RenderAscii(result.histograms[0]);
  std::printf("\nbest-pair entries: %llu (one per selected event)\n",
              static_cast<unsigned long long>(
                  result.histograms[1].num_entries()));
  std::printf("\nmean mass: %.2f GeV, combinations explored/event: %.2f\n",
              result.histograms[1].mean(),
              static_cast<double>(result.ops) / result.events_processed);
  return 0;
}
