// Quickstart: generate a synthetic CMS-like data set, write it to the
// `laq` columnar format, and run a first analysis with the RDataFrame-like
// interface — the "plot the missing ET of all events" query (ADL Q1).
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "datagen/dataset.h"
#include "rdf/rdf.h"

int main() {
  using hepq::rdf::EventView;
  using hepq::rdf::RDataFrame;

  // 1. Materialize a deterministic synthetic data set (cached on disk;
  //    regenerating yields a bit-identical file).
  hepq::DatasetSpec spec;
  spec.num_events = 50000;
  spec.row_group_size = 10000;
  auto path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
  path.status().Check();
  std::printf("data set: %s\n", path->c_str());

  // 2. Open it as a data frame and declare the columns we read. Like in
  //    ROOT's RDataFrame, the physical leaf columns are part of the
  //    programming model.
  auto df = RDataFrame::Open(*path).ValueOrDie();
  const auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  const auto jet_pt = df->Particles<float>("Jet.pt").ValueOrDie();

  // 3. Book actions on the lazy node graph.
  auto h_met = df->root().Histo1D(
      {"met", "E_T^miss of all events", 100, 0.0, 200.0},
      [met](const EventView& e) { return e.Get(met); });
  auto dijet = df->root().Filter([jet_pt](const EventView& e) {
    return e.Get(jet_pt).size() >= 2;
  });
  auto n_dijet = dijet.Count();

  // 4. One pass over the data executes everything.
  df->Run().Check();

  std::printf("%s\n", df->GetHistogram(h_met).ToString(12).c_str());
  std::printf("events with >= 2 jets: %lld of %lld\n",
              static_cast<long long>(df->GetCount(n_dijet)),
              static_cast<long long>(df->run_stats().events_processed));
  std::printf("bytes read from storage: %llu (projection pushdown: only "
              "MET.pt and Jet.pt leaves)\n",
              static_cast<unsigned long long>(
                  df->run_stats().scan.storage_bytes));
  return 0;
}
