// bench_diff: compare a fresh BENCH_micro_kernels.json against the
// committed baseline (bench/baselines/micro_kernels_tiers.json) and fail
// when a tier ratio regresses past the per-metric threshold. This is the
// CI expression-tier regression gate, previously a jq+awk pipeline; a
// real tool gets a readable table, loud failures on missing kernels or
// tiers, and a place to grow more metrics.
//
// Usage: bench_diff <BENCH_micro_kernels.json> <baseline.json>
//                   [--max-drop=0.10]
//
// The baseline maps kernel -> { "<tierA>_over_<tierB>": ratio }. Each
// metric name is parsed as a tier pair and the measured value computed
// as ns_per_row[tierA] / ns_per_row[tierB] from the fresh records (the
// ratio self-normalizes across machines; absolute times would only
// measure the runner). A measured ratio below (1 - max_drop) * baseline
// is a regression; improvements never fail. Exit codes: 0 ok, 1
// regression, 2 malformed/missing input.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <vector>

#include "core/json.h"

namespace {

using hepq::json::JsonValue;

/// kernel -> tier -> ns_per_row from the flat BENCH record array.
using TierCosts = std::map<std::string, std::map<std::string, double>>;

bool LoadMeasurements(const JsonValue& bench, TierCosts* costs) {
  if (!bench.is_array()) {
    std::fprintf(stderr, "bench file is not a JSON array of records\n");
    return false;
  }
  for (const JsonValue& record : bench.array_items()) {
    const JsonValue* kernel = record.Find("kernel");
    const JsonValue* tier = record.Find("tier");
    const JsonValue* ns = record.Find("ns_per_row");
    if (kernel == nullptr || tier == nullptr || ns == nullptr) continue;
    if (!kernel->is_string() || !tier->is_string() || !ns->is_number()) {
      continue;
    }
    (*costs)[kernel->string_value()][tier->string_value()] =
        ns->number_value();
  }
  return true;
}

/// "bytecode_over_simd" -> ("bytecode", "simd"); false when the metric
/// name does not follow the <tierA>_over_<tierB> convention.
bool SplitRatioMetric(const std::string& metric, std::string* numerator,
                      std::string* denominator) {
  const std::string kSep = "_over_";
  const size_t at = metric.find(kSep);
  if (at == std::string::npos || at == 0 ||
      at + kSep.size() >= metric.size()) {
    return false;
  }
  *numerator = metric.substr(0, at);
  *denominator = metric.substr(at + kSep.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  double max_drop = 0.10;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--max-drop=", 11) == 0) {
      max_drop = std::atof(argv[i] + 11);
      if (max_drop <= 0.0 || max_drop >= 1.0) {
        std::fprintf(stderr, "--max-drop must be in (0, 1)\n");
        return 2;
      }
      continue;
    }
    paths.push_back(argv[i]);
  }
  if (paths.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s <BENCH_micro_kernels.json> <baseline.json>"
                 " [--max-drop=0.10]\n",
                 argv[0]);
    return 2;
  }

  auto bench = hepq::json::ParseJsonFile(paths[0]);
  if (!bench.ok()) {
    std::fprintf(stderr, "error: %s\n", bench.status().ToString().c_str());
    return 2;
  }
  auto baseline = hepq::json::ParseJsonFile(paths[1]);
  if (!baseline.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 baseline.status().ToString().c_str());
    return 2;
  }

  TierCosts costs;
  if (!LoadMeasurements(*bench, &costs)) return 2;
  const JsonValue* kernels = baseline->Find("kernels");
  if (kernels == nullptr || !kernels->is_object()) {
    std::fprintf(stderr, "baseline has no \"kernels\" object\n");
    return 2;
  }

  std::printf("%-18s %-22s %9s %9s %8s  %s\n", "kernel", "metric",
              "baseline", "measured", "change", "verdict");
  bool regression = false;
  int compared = 0;
  for (const auto& [kernel_name, metrics] : kernels->object_items()) {
    if (!metrics.is_object()) {
      std::fprintf(stderr, "baseline kernel '%s' is not an object\n",
                   kernel_name.c_str());
      return 2;
    }
    const auto measured_kernel = costs.find(kernel_name);
    if (measured_kernel == costs.end()) {
      std::fprintf(stderr,
                   "kernel '%s' is in the baseline but has no measured "
                   "records in %s\n",
                   kernel_name.c_str(), paths[0].c_str());
      return 2;
    }
    for (const auto& [metric_name, base_value] : metrics.object_items()) {
      if (!base_value.is_number()) continue;  // e.g. a comment string
      std::string num_tier, den_tier;
      if (!SplitRatioMetric(metric_name, &num_tier, &den_tier)) {
        std::fprintf(stderr,
                     "baseline metric '%s.%s' is not a "
                     "<tierA>_over_<tierB> ratio\n",
                     kernel_name.c_str(), metric_name.c_str());
        return 2;
      }
      const auto& tiers = measured_kernel->second;
      const auto num_it = tiers.find(num_tier);
      const auto den_it = tiers.find(den_tier);
      if (num_it == tiers.end() || den_it == tiers.end() ||
          den_it->second <= 0.0) {
        std::fprintf(stderr,
                     "kernel '%s' is missing measured tier '%s' or '%s'\n",
                     kernel_name.c_str(), num_tier.c_str(),
                     den_tier.c_str());
        return 2;
      }
      const double base = base_value.number_value();
      const double measured = num_it->second / den_it->second;
      const double change = base > 0.0 ? (measured - base) / base : 0.0;
      const bool failed = measured < (1.0 - max_drop) * base;
      std::printf("%-18s %-22s %9.3f %9.3f %+7.1f%%  %s\n",
                  kernel_name.c_str(), metric_name.c_str(), base, measured,
                  change * 100.0, failed ? "REGRESSION" : "ok");
      regression |= failed;
      ++compared;
    }
  }
  if (compared == 0) {
    std::fprintf(stderr, "baseline contains no comparable metrics\n");
    return 2;
  }
  if (regression) {
    std::fprintf(stderr,
                 "FAIL: at least one ratio dropped more than %.0f%% below "
                 "its committed baseline (see table); re-baseline "
                 "deliberately if the change is intentional\n",
                 max_drop * 100.0);
    return 1;
  }
  std::printf("all %d ratio(s) within %.0f%% of baseline\n", compared,
              max_drop * 100.0);
  return 0;
}
