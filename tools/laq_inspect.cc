// laq_inspect: dump the metadata of a .laq columnar file — schema, row
// groups, per-chunk encodings/codecs/sizes/statistics, and page-level zone
// maps. The moral equivalent of parquet-tools for this repository's format.
//
// Usage: laq_inspect <file.laq | dataset-dir> [--chunks] [--pages] [--json]
//                    [--cache-stats]
//
// --json replaces the human-readable dump with a machine-readable layout
// summary (per-leaf pages/prunable-fraction/encoding) for CI gating.
// Given a sharded dataset directory, both modes aggregate per-file
// analyses across every shard.
// --cache-stats walks the metadata a second time and prints the
// process-wide footer-cache hit/miss totals to stderr (stdout stays
// pipeable): the first walk banks every shard's validated footer, the
// second is served from the cache — observable from tooling, not just
// RunReports.
// --metrics turns the process-wide metrics registry on for the run and
// dumps the Prometheus-text exposition to stderr on exit.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <limits>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "fileio/dataset_reader.h"
#include "fileio/layout_optimizer.h"
#include "fileio/reader.h"
#include "obs/metrics.h"

namespace {

/// --metrics epilogue: covers every return path of main by dumping the
/// process-wide registry (Prometheus text, stderr) at scope exit.
struct MetricsDumpAtExit {
  bool enabled = false;
  ~MetricsDumpAtExit() {
    if (!enabled) return;
    std::fputs(hepq::obs::metrics::MetricsToPrometheus(
                   hepq::obs::metrics::SnapshotMetrics())
                   .c_str(),
               stderr);
  }
};

/// The --cache-stats epilogue: one more metadata-only pass over every
/// shard (footer-cache-served, no data bytes), then the process totals.
void PrintFooterCacheStats(const std::vector<std::string>& files) {
  for (const std::string& file : files) {
    auto reopened = hepq::LaqReader::Open(file);
    (void)reopened;  // metadata pass only; errors already reported above
  }
  const hepq::cache::CacheCounters c =
      hepq::cache::FooterCache::Process().counters();
  std::fprintf(stderr,
               "footer cache: hits=%llu misses=%llu entries=%llu "
               "(second walk of %zu shard(s) served from cache)\n",
               static_cast<unsigned long long>(c.hits),
               static_cast<unsigned long long>(c.misses),
               static_cast<unsigned long long>(c.entries), files.size());
}

/// Dataset-directory inspection: per-shard analysis rows plus per-leaf
/// totals summed over every shard (JSON mirrors the single-file schema
/// with an extra "files" count; encodings that differ across shards
/// report as "mixed").
int InspectDirectory(const std::string& dir, bool json, bool cache_stats) {
  auto files_result = hepq::ListLaqFiles(dir);
  if (!files_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 files_result.status().ToString().c_str());
    return 1;
  }
  const std::vector<std::string>& files = *files_result;
  struct LeafTotal {
    std::string path;
    std::string encoding;
    uint64_t storage_bytes = 0;
    uint64_t pages = 0;
    uint64_t prunable_pages = 0;
  };
  std::vector<LeafTotal> leaves;
  long long total_rows = 0;
  int total_groups = 0;
  unsigned long long total_bytes = 0;
  if (!json) {
    std::printf("dataset:     %s\n", dir.c_str());
    std::printf("shards:      %zu\n\n", files.size());
    std::printf("%-44s %10s %8s %12s\n", "shard", "rows", "groups",
                "bytes");
  }
  for (const std::string& file : files) {
    auto analysis_result = hepq::AnalyzeLaqFile(file);
    if (!analysis_result.ok()) {
      std::fprintf(stderr, "error: %s: %s\n", file.c_str(),
                   analysis_result.status().ToString().c_str());
      return 1;
    }
    const hepq::LayoutAnalysis& analysis = *analysis_result;
    total_rows += analysis.total_rows;
    total_groups += analysis.row_groups;
    total_bytes += analysis.storage_bytes;
    if (leaves.empty()) {
      for (const hepq::LeafLayoutSummary& leaf : analysis.leaves) {
        leaves.push_back(LeafTotal{leaf.path, EncodingName(leaf.encoding),
                                   0, 0, 0});
      }
    }
    for (size_t l = 0; l < analysis.leaves.size() && l < leaves.size();
         ++l) {
      const hepq::LeafLayoutSummary& leaf = analysis.leaves[l];
      if (leaves[l].encoding != EncodingName(leaf.encoding)) {
        leaves[l].encoding = "mixed";
      }
      leaves[l].storage_bytes += leaf.storage_bytes;
      leaves[l].pages += leaf.pages;
      leaves[l].prunable_pages += leaf.prunable_pages;
    }
    if (!json) {
      const size_t slash = file.rfind('/');
      std::printf("%-44s %10lld %8d %12llu\n",
                  (slash == std::string::npos ? file : file.substr(slash + 1))
                      .c_str(),
                  static_cast<long long>(analysis.total_rows),
                  analysis.row_groups,
                  static_cast<unsigned long long>(analysis.storage_bytes));
    }
  }
  if (json) {
    std::printf("{\"dataset\": \"%s\", \"files\": %zu, \"rows\": %lld, "
                "\"row_groups\": %d, \"storage_bytes\": %llu, \"leaves\": [",
                dir.c_str(), files.size(), total_rows, total_groups,
                total_bytes);
    for (size_t l = 0; l < leaves.size(); ++l) {
      const LeafTotal& leaf = leaves[l];
      std::printf("%s{\"path\": \"%s\", \"encoding\": \"%s\", "
                  "\"storage_bytes\": %llu, \"pages\": %llu, "
                  "\"prunable_pages\": %llu, \"prunable_fraction\": %.4f}",
                  l == 0 ? "" : ", ", leaf.path.c_str(),
                  leaf.encoding.c_str(),
                  static_cast<unsigned long long>(leaf.storage_bytes),
                  static_cast<unsigned long long>(leaf.pages),
                  static_cast<unsigned long long>(leaf.prunable_pages),
                  leaf.pages > 0 ? static_cast<double>(leaf.prunable_pages) /
                                       static_cast<double>(leaf.pages)
                                 : 0.0);
    }
    std::printf("]}\n");
    if (cache_stats) PrintFooterCacheStats(files);
    return 0;
  }
  std::printf("\ntotals: %lld rows, %d row groups, %llu bytes\n\n",
              total_rows, total_groups, total_bytes);
  std::printf("per-leaf totals across all shards:\n");
  std::printf("  %-24s %10s %8s %10s %9s\n", "leaf", "bytes", "enc",
              "pages", "prunable");
  for (const LeafTotal& leaf : leaves) {
    std::printf("  %-24s %10llu %8s %10llu %9llu\n", leaf.path.c_str(),
                static_cast<unsigned long long>(leaf.storage_bytes),
                leaf.encoding.c_str(),
                static_cast<unsigned long long>(leaf.pages),
                static_cast<unsigned long long>(leaf.prunable_pages));
  }
  if (cache_stats) PrintFooterCacheStats(files);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr,
                 "usage: %s <file.laq | dataset-dir> [--chunks] [--pages]"
                 " [--json] [--cache-stats] [--metrics]\n",
                 argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  bool show_chunks = false;
  bool show_pages = false;
  bool json = false;
  bool cache_stats = false;
  MetricsDumpAtExit metrics_dump;
  for (int i = 2; i < argc; ++i) {
    if (std::strcmp(argv[i], "--chunks") == 0) show_chunks = true;
    if (std::strcmp(argv[i], "--pages") == 0) {
      show_chunks = true;
      show_pages = true;
    }
    if (std::strcmp(argv[i], "--json") == 0) json = true;
    if (std::strcmp(argv[i], "--cache-stats") == 0) cache_stats = true;
    if (std::strcmp(argv[i], "--metrics") == 0) {
      hepq::obs::metrics::SetMetricsEnabled(true);
      metrics_dump.enabled = true;
    }
  }

  if (hepq::IsDirectory(path)) return InspectDirectory(path, json, cache_stats);

  if (json) {
    auto analysis_result = hepq::AnalyzeLaqFile(path);
    if (!analysis_result.ok()) {
      std::fprintf(stderr, "error: %s\n",
                   analysis_result.status().ToString().c_str());
      return 1;
    }
    const hepq::LayoutAnalysis& analysis = *analysis_result;
    std::printf("{\"file\": \"%s\", \"rows\": %lld, \"row_groups\": %d, "
                "\"storage_bytes\": %llu, \"leaves\": [",
                path.c_str(), static_cast<long long>(analysis.total_rows),
                analysis.row_groups,
                static_cast<unsigned long long>(analysis.storage_bytes));
    for (size_t l = 0; l < analysis.leaves.size(); ++l) {
      const hepq::LeafLayoutSummary& leaf = analysis.leaves[l];
      std::printf("%s{\"path\": \"%s\", \"encoding\": \"%s\", "
                  "\"storage_bytes\": %llu, \"pages\": %llu, "
                  "\"prunable_pages\": %llu, \"prunable_fraction\": %.4f}",
                  l == 0 ? "" : ", ", leaf.path.c_str(),
                  EncodingName(leaf.encoding),
                  static_cast<unsigned long long>(leaf.storage_bytes),
                  static_cast<unsigned long long>(leaf.pages),
                  static_cast<unsigned long long>(leaf.prunable_pages),
                  leaf.prunable_fraction());
    }
    std::printf("]}\n");
    if (cache_stats) PrintFooterCacheStats({path});
    return 0;
  }

  auto reader_result = hepq::LaqReader::Open(path);
  if (!reader_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 reader_result.status().ToString().c_str());
    return 1;
  }
  auto reader = std::move(*reader_result);
  const hepq::FileMetadata& meta = reader->metadata();

  std::printf("file:        %s\n", path.c_str());
  std::printf("version:     %u\n", meta.version);
  std::printf("rows:        %lld\n",
              static_cast<long long>(meta.total_rows));
  std::printf("row groups:  %d\n", reader->num_row_groups());
  std::printf("leaf columns: %d\n\n", meta.num_leaves());
  std::printf("%s\n\n", meta.schema.ToString().c_str());

  uint64_t total_compressed = 0, total_encoded = 0;
  for (const hepq::RowGroupMeta& rg : meta.row_groups) {
    for (const hepq::ChunkMeta& chunk : rg.chunks) {
      total_compressed += chunk.compressed_size;
      total_encoded += chunk.encoded_size;
    }
  }
  std::printf("data bytes:  %llu on storage, %llu encoded (ratio %.2fx)\n",
              static_cast<unsigned long long>(total_compressed),
              static_cast<unsigned long long>(total_encoded),
              total_compressed > 0
                  ? static_cast<double>(total_encoded) / total_compressed
                  : 0.0);

  for (int g = 0; g < reader->num_row_groups(); ++g) {
    const hepq::RowGroupMeta& rg =
        meta.row_groups[static_cast<size_t>(g)];
    std::printf("\nrow group %d: %lld rows\n", g,
                static_cast<long long>(rg.num_rows));
    if (!show_chunks) continue;
    std::printf("  %-24s %10s %10s %8s %8s %10s %22s\n", "leaf", "stored",
                "encoded", "enc", "codec", "values", "min..max");
    for (size_t c = 0; c < rg.chunks.size(); ++c) {
      const hepq::ChunkMeta& chunk = rg.chunks[c];
      const hepq::LeafDesc& leaf = meta.layout[c];
      char stats[64] = "-";
      if (chunk.has_stats) {
        std::snprintf(stats, sizeof(stats), "%.4g..%.4g", chunk.min_value,
                      chunk.max_value);
      }
      std::printf("  %-24s %10llu %10llu %8s %8s %10llu %22s\n",
                  leaf.path.c_str(),
                  static_cast<unsigned long long>(chunk.compressed_size),
                  static_cast<unsigned long long>(chunk.encoded_size),
                  EncodingName(chunk.encoding), CodecName(chunk.codec),
                  static_cast<unsigned long long>(chunk.num_values),
                  stats);
      if (!show_pages || chunk.pages.empty()) continue;
      for (size_t p = 0; p < chunk.pages.size(); ++p) {
        const hepq::PageMeta& page = chunk.pages[p];
        char zone[64] = "-";
        if (page.has_stats) {
          std::snprintf(zone, sizeof(zone), "%.4g..%.4g", page.min_value,
                        page.max_value);
        }
        std::printf("    page %-3zu %17llu %10llu %18llu %22s\n", p,
                    static_cast<unsigned long long>(page.compressed_size),
                    static_cast<unsigned long long>(page.encoded_size),
                    static_cast<unsigned long long>(page.num_values), zone);
      }
    }
  }

  // Per-column pruning potential: a page can be skipped by some range
  // predicate iff it carries a zone map strictly narrower than the
  // column's global value range (a page spanning the full range survives
  // every predicate any other page survives).
  struct ColumnPruning {
    uint64_t pages = 0;
    uint64_t with_stats = 0;
    uint64_t prunable = 0;
    double min = std::numeric_limits<double>::infinity();
    double max = -std::numeric_limits<double>::infinity();
  };
  std::vector<ColumnPruning> columns(
      static_cast<size_t>(meta.num_leaves()));
  for (const hepq::RowGroupMeta& rg : meta.row_groups) {
    for (size_t c = 0; c < rg.chunks.size(); ++c) {
      for (const hepq::PageMeta& page : rg.chunks[c].pages) {
        if (!page.has_stats) continue;
        columns[c].min = std::min(columns[c].min, page.min_value);
        columns[c].max = std::max(columns[c].max, page.max_value);
      }
    }
  }
  for (const hepq::RowGroupMeta& rg : meta.row_groups) {
    for (size_t c = 0; c < rg.chunks.size(); ++c) {
      for (const hepq::PageMeta& page : rg.chunks[c].pages) {
        ++columns[c].pages;
        if (!page.has_stats) continue;
        ++columns[c].with_stats;
        if (page.min_value > columns[c].min ||
            page.max_value < columns[c].max) {
          ++columns[c].prunable;
        }
      }
    }
  }
  std::printf("\nzone-map pruning potential (per leaf, across all pages):\n");
  std::printf("  %-24s %8s %8s %9s %9s\n", "leaf", "pages", "stats",
              "prunable", "fraction");
  for (size_t c = 0; c < columns.size(); ++c) {
    const ColumnPruning& col = columns[c];
    if (col.pages == 0) continue;
    std::printf("  %-24s %8llu %8llu %9llu %8.1f%%\n",
                meta.layout[c].path.c_str(),
                static_cast<unsigned long long>(col.pages),
                static_cast<unsigned long long>(col.with_stats),
                static_cast<unsigned long long>(col.prunable),
                100.0 * static_cast<double>(col.prunable) /
                    static_cast<double>(col.pages));
  }
  if (cache_stats) PrintFooterCacheStats({path});
  return 0;
}
