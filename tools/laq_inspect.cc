// laq_inspect: dump the metadata of a .laq columnar file — schema, row
// groups, per-chunk encodings/codecs/sizes/statistics. The moral
// equivalent of parquet-tools for this repository's format.
//
// Usage: laq_inspect <file.laq> [--chunks]

#include <cstdio>
#include <cstring>
#include <string>

#include "fileio/reader.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <file.laq> [--chunks]\n", argv[0]);
    return 2;
  }
  const std::string path = argv[1];
  const bool show_chunks = argc > 2 && std::strcmp(argv[2], "--chunks") == 0;

  auto reader_result = hepq::LaqReader::Open(path);
  if (!reader_result.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 reader_result.status().ToString().c_str());
    return 1;
  }
  auto reader = std::move(*reader_result);
  const hepq::FileMetadata& meta = reader->metadata();

  std::printf("file:        %s\n", path.c_str());
  std::printf("version:     %u\n", meta.version);
  std::printf("rows:        %lld\n",
              static_cast<long long>(meta.total_rows));
  std::printf("row groups:  %d\n", reader->num_row_groups());
  std::printf("leaf columns: %d\n\n", meta.num_leaves());
  std::printf("%s\n\n", meta.schema.ToString().c_str());

  uint64_t total_compressed = 0, total_encoded = 0;
  for (const hepq::RowGroupMeta& rg : meta.row_groups) {
    for (const hepq::ChunkMeta& chunk : rg.chunks) {
      total_compressed += chunk.compressed_size;
      total_encoded += chunk.encoded_size;
    }
  }
  std::printf("data bytes:  %llu on storage, %llu encoded (ratio %.2fx)\n",
              static_cast<unsigned long long>(total_compressed),
              static_cast<unsigned long long>(total_encoded),
              total_compressed > 0
                  ? static_cast<double>(total_encoded) / total_compressed
                  : 0.0);

  for (int g = 0; g < reader->num_row_groups(); ++g) {
    const hepq::RowGroupMeta& rg =
        meta.row_groups[static_cast<size_t>(g)];
    std::printf("\nrow group %d: %lld rows\n", g,
                static_cast<long long>(rg.num_rows));
    if (!show_chunks) continue;
    std::printf("  %-24s %10s %10s %8s %8s %10s %22s\n", "leaf", "stored",
                "encoded", "enc", "codec", "values", "min..max");
    for (size_t c = 0; c < rg.chunks.size(); ++c) {
      const hepq::ChunkMeta& chunk = rg.chunks[c];
      const hepq::LeafDesc& leaf = meta.layout[c];
      char stats[64] = "-";
      if (chunk.has_stats) {
        std::snprintf(stats, sizeof(stats), "%.4g..%.4g", chunk.min_value,
                      chunk.max_value);
      }
      std::printf("  %-24s %10llu %10llu %8s %8s %10llu %22s\n",
                  leaf.path.c_str(),
                  static_cast<unsigned long long>(chunk.compressed_size),
                  static_cast<unsigned long long>(chunk.encoded_size),
                  EncodingName(chunk.encoding), CodecName(chunk.codec),
                  static_cast<unsigned long long>(chunk.num_values),
                  stats);
    }
  }
  return 0;
}
