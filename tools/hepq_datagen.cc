// hepq_datagen: generate (or top up) a sharded benchmark dataset.
//
// Usage: hepq_datagen --shards=N --events-per-shard=M
//                     [--dir=path] [--row-group=R] [--seed=S]
//
// Writes N shard files ("shard_0000.laq" ...) under
// <dir>/<canonical dataset name>/ and prints the dataset directory path.
// Shard k's bytes depend only on (seed, k, M, R): regenerating any subset
// of shards, in any order, or growing N later reproduces existing shards
// bit for bit, so a 54M-event paper-scale dataset can be built
// incrementally or in parallel across machines. Existing shard files are
// skipped.

#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "datagen/dataset.h"

int main(int argc, char** argv) {
  hepq::ShardedDatasetSpec spec;
  std::string dir = hepq::DefaultDataDir();
  bool have_shards = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--shards=", 9) == 0) {
      spec.num_shards = std::atoi(argv[i] + 9);
      have_shards = true;
    } else if (std::strncmp(argv[i], "--events-per-shard=", 19) == 0) {
      spec.events_per_shard = std::atoll(argv[i] + 19);
    } else if (std::strncmp(argv[i], "--row-group=", 12) == 0) {
      spec.row_group_size = std::atoll(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      spec.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--dir=", 6) == 0) {
      dir = argv[i] + 6;
    } else {
      std::fprintf(stderr,
                   "usage: %s --shards=N --events-per-shard=M [--dir=path]"
                   " [--row-group=R] [--seed=S]\n",
                   argv[0]);
      return 2;
    }
  }
  if (!have_shards || spec.num_shards < 1 || spec.events_per_shard < 1) {
    std::fprintf(stderr, "--shards and --events-per-shard must be >= 1\n");
    return 2;
  }
  auto path = hepq::EnsureShardedDataset(dir, spec);
  if (!path.ok()) {
    std::fprintf(stderr, "error: %s\n", path.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", path->c_str());
  return 0;
}
