// hepq_run: run one ADL benchmark query on a chosen engine and print the
// resulting histogram plus execution statistics.
//
// Usage: hepq_run <query 1..8> [engine] [events] [--threads=N]
//                 [--no-pushdown] [--no-late-mat]
//   engine: rdf (default) | bigquery | presto | doc | all | explain
//   events: data-set size to generate/reuse (default 20000)
//   --threads=N: scan row groups with N workers of the shared runtime
//     (results are bit-identical for any N; default 1)
//   --no-pushdown: disable zone-map predicate pushdown (group/page
//     pruning); histograms are bit-identical either way
//   --no-late-mat: disable late materialization (decode every projected
//     column even for row groups with no surviving events)
//   "explain" prints the relational plans instead of executing.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "datagen/dataset.h"
#include "queries/adl.h"
#include "queries/builders.h"

using hepq::queries::EngineKind;
using hepq::queries::EngineKindName;
using hepq::queries::RunAdlQuery;

namespace {

void RunOne(EngineKind engine, int q, const std::string& path,
            const hepq::queries::RunOptions& options) {
  auto result = RunAdlQuery(engine, q, path, options);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  std::printf("--- %s ---\n", EngineKindName(engine));
  std::printf(
      "events: %lld   cpu: %.4f s   wall: %.4f s   storage bytes: %llu\n",
      static_cast<long long>(result->events_processed),
      result->cpu_seconds, result->wall_seconds,
      static_cast<unsigned long long>(result->scan.storage_bytes));
  std::printf(
      "decoded bytes: %llu   groups pruned: %llu   pages pruned: %llu/%llu"
      "   rows pruned: %llu\n",
      static_cast<unsigned long long>(result->scan.decoded_bytes),
      static_cast<unsigned long long>(result->scan.groups_pruned),
      static_cast<unsigned long long>(result->scan.pages_pruned),
      static_cast<unsigned long long>(result->scan.pages_pruned +
                                      result->scan.pages_read),
      static_cast<unsigned long long>(result->scan.rows_pruned));
  if (result->ops > 0) {
    std::printf("ops/event: %.2f\n",
                static_cast<double>(result->ops) /
                    static_cast<double>(result->events_processed));
  }
  for (const hepq::Histogram1D& h : result->histograms) {
    std::printf("%s\n", h.ToString(10).c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  hepq::queries::RunOptions options;
  int kept = 1;  // strip --threads=N wherever it appears
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const int v = std::atoi(argv[i] + 10);
      if (v > 0) options.num_threads = v;
      continue;
    }
    if (std::strcmp(argv[i], "--no-pushdown") == 0) {
      options.scan_pushdown = false;
      continue;
    }
    if (std::strcmp(argv[i], "--no-late-mat") == 0) {
      options.late_materialization = false;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <query 1..8> [rdf|bigquery|presto|doc|all]"
                         " [events] [--threads=N] [--no-pushdown]"
                         " [--no-late-mat]\n",
                 argv[0]);
    return 2;
  }
  const int q = std::atoi(argv[1]);
  if (q < 1 || q > 8) {
    std::fprintf(stderr, "query id must be 1..8\n");
    return 2;
  }
  const std::string engine_name = argc > 2 ? argv[2] : "rdf";
  const int64_t events = argc > 3 ? std::atoll(argv[3]) : 20000;

  hepq::DatasetSpec spec;
  spec.num_events = events;
  spec.row_group_size = std::max<int64_t>(1000, events / 4);
  auto path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
  path.status().Check();

  std::printf("Q%d: %s\ndata: %s\n\n", q, hepq::queries::AdlQueryTitle(q),
              path->c_str());

  if (engine_name == "explain") {
    auto expr_plan = hepq::queries::BuildAdlEventQuery(q);
    expr_plan.status().Check();
    std::printf("%s\n", expr_plan->Explain().c_str());
    auto flat_plan = hepq::queries::BuildAdlFlatPipeline(q);
    if (flat_plan.ok()) {
      std::printf("%s", flat_plan->Explain().c_str());
    } else {
      std::printf("FlatPipeline: %s\n",
                  flat_plan.status().ToString().c_str());
    }
    return 0;
  }
  if (engine_name == "all") {
    for (EngineKind engine :
         {EngineKind::kRdf, EngineKind::kBigQueryShape,
          EngineKind::kPrestoShape, EngineKind::kDoc}) {
      RunOne(engine, q, *path, options);
    }
    return 0;
  }
  EngineKind engine;
  if (engine_name == "rdf") {
    engine = EngineKind::kRdf;
  } else if (engine_name == "bigquery") {
    engine = EngineKind::kBigQueryShape;
  } else if (engine_name == "presto") {
    engine = EngineKind::kPrestoShape;
  } else if (engine_name == "doc") {
    engine = EngineKind::kDoc;
  } else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }
  RunOne(engine, q, *path, options);
  return 0;
}
