// hepq_run: run one ADL benchmark query on a chosen engine and print the
// resulting histogram plus execution statistics.
//
// Usage: hepq_run <query 1..8> [engine] [events] [--threads=N]
//                 [--vexpr-tier=interpret|bytecode|simd]
//                 [--no-pushdown] [--no-late-mat]
//                 [--profile[=report.json]] [--trace=trace.json]
//   engine: rdf (default) | bigquery | presto | doc | all | explain
//   events: data-set size to generate/reuse (default 20000)
//   --threads=N: scan row groups with N workers of the shared runtime
//     (results are bit-identical for any N; default 1)
//   --vexpr-tier=T: expression-execution tier for the bigquery/presto
//     plan shapes — interpret (tree walk), bytecode (PR 3 VM), or simd
//     (fused batch kernels, the default); histograms are bit-identical
//     across tiers. Replaces the old --interpret-expressions boolean.
//   --no-pushdown: disable zone-map predicate pushdown (group/page
//     pruning); histograms are bit-identical either way
//   --no-late-mat: disable late materialization (decode every projected
//     column even for row groups with no surviving events)
//   --profile: trace the run and print the per-stage/per-worker/per-leaf
//     table to stderr (stdout stays pipeable); --profile=path.json writes
//     the machine-readable RunReport JSON instead
//   --trace=path.json: write the spans as Chrome trace_event JSON,
//     loadable in chrome://tracing or Perfetto
//   --data=path.laq: run over an existing laq file (e.g. a laq_optimize'd
//     copy) OR a sharded dataset directory of "*.laq" files, instead of
//     generating one from the events count
//   --procs=P: scatter/gather coordinator — spawn P worker processes
//     (this binary re-invoked with --worker-shards), each owning a
//     contiguous range of the dataset's shards, and merge their results
//     in shard order. Bit-identical to --procs=1 (in-process) for any P.
//   --worker-shards=a:b: worker mode (used by --procs; scriptable for
//     debugging) — run shards [a, b) of the dataset and write result
//     frames to stdout instead of human-readable output.
//   "explain" prints the relational plans instead of executing.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "datagen/dataset.h"
#include "fileio/dataset_reader.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "queries/adl.h"
#include "queries/builders.h"
#include "scatter/scatter.h"

using hepq::queries::EngineKind;
using hepq::queries::EngineKindName;
using hepq::queries::RunAdlQuery;

namespace {

struct ProfileOptions {
  bool enabled = false;       // --profile or --trace given
  bool table = false;         // --profile with no path: table to stderr
  std::string report_path;    // --profile=path.json
  std::string trace_path;     // --trace=path.json
};

/// "report.json" -> "report.rdataframe.json" so engine=all runs do not
/// overwrite one another's files.
std::string WithEngineSuffix(const std::string& path,
                             const std::string& engine) {
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + engine;
  }
  return path.substr(0, dot) + "." + engine + path.substr(dot);
}

void PrintRunOutput(EngineKind engine,
                    const hepq::queries::QueryRunOutput& result) {
  std::printf("--- %s ---\n", EngineKindName(engine));
  std::printf(
      "events: %lld   cpu: %.4f s   wall: %.4f s   storage bytes: %llu\n",
      static_cast<long long>(result.events_processed),
      result.cpu_seconds, result.wall_seconds,
      static_cast<unsigned long long>(result.scan.storage_bytes));
  std::printf(
      "decoded bytes: %llu   groups pruned: %llu   pages pruned: %llu/%llu"
      "   rows pruned: %llu\n",
      static_cast<unsigned long long>(result.scan.decoded_bytes),
      static_cast<unsigned long long>(result.scan.groups_pruned),
      static_cast<unsigned long long>(result.scan.pages_pruned),
      static_cast<unsigned long long>(result.scan.pages_pruned +
                                      result.scan.pages_read),
      static_cast<unsigned long long>(result.scan.rows_pruned));
  if (result.ops > 0) {
    std::printf("ops/event: %.2f\n",
                static_cast<double>(result.ops) /
                    static_cast<double>(result.events_processed));
  }
  for (const hepq::Histogram1D& h : result.histograms) {
    std::printf("%s\n", h.ToString(10).c_str());
  }
}

void RunOne(EngineKind engine, int q, const std::string& path,
            const hepq::queries::RunOptions& options,
            const ProfileOptions& profile, bool suffix_outputs) {
  hepq::obs::TraceSession session;
  if (profile.enabled) session.Start();
  auto result = RunAdlQuery(engine, q, path, options);
  session.Stop();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  PrintRunOutput(engine, *result);

  if (!profile.enabled) return;
  hepq::obs::RunInfo info;
  info.query = "Q";
  info.query += std::to_string(q);
  info.engine = EngineKindName(engine);
  info.threads = options.num_threads;
  info.events_processed = result->events_processed;
  info.wall_seconds = result->wall_seconds;
  info.cpu_seconds = result->cpu_seconds;
  const hepq::obs::RunReport report =
      hepq::obs::BuildRunReport(session, info, result->scan);
  if (profile.table) {
    std::fputs(hepq::obs::ReportToTable(report).c_str(), stderr);
  }
  if (!profile.report_path.empty()) {
    const std::string out =
        suffix_outputs ? WithEngineSuffix(profile.report_path, info.engine)
                       : profile.report_path;
    hepq::obs::WriteTextFile(out, hepq::obs::ReportToJson(report)).Check();
    std::fprintf(stderr, "run report: %s\n", out.c_str());
  }
  if (!profile.trace_path.empty()) {
    const std::string out =
        suffix_outputs ? WithEngineSuffix(profile.trace_path, info.engine)
                       : profile.trace_path;
    hepq::obs::WriteTextFile(out, hepq::obs::ChromeTraceJson(session))
        .Check();
    std::fprintf(stderr, "chrome trace: %s\n", out.c_str());
  }
}

/// The dataset's sorted shard list: every "*.laq" of a directory, or the
/// single file itself.
hepq::Result<std::vector<std::string>> ShardFilesFor(const std::string& data) {
  if (hepq::IsDirectory(data)) return hepq::ListLaqFiles(data);
  return std::vector<std::string>{data};
}

/// Worker half of --procs: run shards [range) and stream frames to
/// stdout. Human output is suppressed — stdout is the wire.
int RunWorkerMode(EngineKind engine, int q, const std::string& data,
                  const hepq::queries::RunOptions& options,
                  hepq::scatter::ShardRange range) {
  auto files = ShardFilesFor(data);
  if (!files.ok()) {
    std::fprintf(stderr, "error: %s\n", files.status().ToString().c_str());
    return 1;
  }
  if (range.begin < 0 || range.end > static_cast<int>(files->size()) ||
      range.begin >= range.end) {
    std::fprintf(stderr, "error: --worker-shards range [%d, %d) out of "
                         "bounds for %zu shards\n",
                 range.begin, range.end, files->size());
    return 1;
  }
  const hepq::Status status = hepq::scatter::RunWorker(
      *files, range,
      [&](const std::string& shard) {
        return RunAdlQuery(engine, q, shard, options);
      },
      STDOUT_FILENO);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

/// Coordinator half of --procs: spawn workers (this binary re-invoked
/// with --worker-shards), gather, merge in shard order, print.
void RunScatteredOne(const char* self, EngineKind engine,
                     const std::string& engine_name, int q,
                     const std::string& data,
                     const hepq::queries::RunOptions& options, int procs) {
  auto files = ShardFilesFor(data);
  if (!files.ok()) {
    std::fprintf(stderr, "error: %s\n", files.status().ToString().c_str());
    std::exit(1);
  }
  auto make_argv = [&](hepq::scatter::ShardRange range) {
    std::vector<std::string> argv;
    argv.push_back(self);
    argv.push_back(std::to_string(q));
    argv.push_back(engine_name);
    argv.push_back("--data=" + data);
    argv.push_back("--threads=" + std::to_string(options.num_threads));
    argv.push_back(std::string("--vexpr-tier=") +
                   hepq::queries::VexprTierName(options.vexpr_tier));
    if (!options.scan_pushdown) argv.push_back("--no-pushdown");
    if (!options.late_materialization) argv.push_back("--no-late-mat");
    argv.push_back("--worker-shards=" + std::to_string(range.begin) + ":" +
                   std::to_string(range.end));
    return argv;
  };
  auto result = hepq::scatter::RunScattered(*files, procs, make_argv);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  PrintRunOutput(engine, *result);
}

}  // namespace

int main(int argc, char** argv) {
  hepq::queries::RunOptions options;
  ProfileOptions profile;
  std::string data_path;
  int procs = 0;
  hepq::scatter::ShardRange worker_shards;
  bool worker_mode = false;
  int kept = 1;  // strip option flags wherever they appear
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--data=", 7) == 0) {
      data_path = argv[i] + 7;
      continue;
    }
    if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs = std::atoi(argv[i] + 8);
      continue;
    }
    if (std::strncmp(argv[i], "--worker-shards=", 16) == 0) {
      const char* spec = argv[i] + 16;
      const char* colon = std::strchr(spec, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "--worker-shards must be <begin>:<end>\n");
        return 2;
      }
      worker_shards.begin = std::atoi(spec);
      worker_shards.end = std::atoi(colon + 1);
      worker_mode = true;
      continue;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const int v = std::atoi(argv[i] + 10);
      if (v > 0) options.num_threads = v;
      continue;
    }
    if (std::strncmp(argv[i], "--vexpr-tier=", 13) == 0) {
      if (!hepq::queries::ParseVexprTier(argv[i] + 13,
                                         &options.vexpr_tier)) {
        std::fprintf(stderr,
                     "--vexpr-tier must be interpret, bytecode, or simd\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--no-pushdown") == 0) {
      options.scan_pushdown = false;
      continue;
    }
    if (std::strcmp(argv[i], "--no-late-mat") == 0) {
      options.late_materialization = false;
      continue;
    }
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile.enabled = true;
      profile.table = true;
      continue;
    }
    if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile.enabled = true;
      profile.report_path = argv[i] + 10;
      continue;
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      profile.enabled = true;
      profile.trace_path = argv[i] + 8;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <query 1..8> [rdf|bigquery|presto|doc|all]"
                         " [events] [--threads=N]"
                         " [--vexpr-tier=interpret|bytecode|simd]"
                         " [--no-pushdown]"
                         " [--no-late-mat] [--profile[=report.json]]"
                         " [--trace=trace.json] [--data=path.laq]\n",
                 argv[0]);
    return 2;
  }
  const int q = std::atoi(argv[1]);
  if (q < 1 || q > 8) {
    std::fprintf(stderr, "query id must be 1..8\n");
    return 2;
  }
  const std::string engine_name = argc > 2 ? argv[2] : "rdf";
  const int64_t events = argc > 3 ? std::atoll(argv[3]) : 20000;

  std::string data;
  if (!data_path.empty()) {
    data = data_path;
  } else {
    hepq::DatasetSpec spec;
    spec.num_events = events;
    spec.row_group_size = std::max<int64_t>(1000, events / 4);
    auto path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
    path.status().Check();
    data = *path;
  }

  if (worker_mode) {
    // Stdout is the frame wire; nothing human-readable may touch it.
    EngineKind engine;
    if (engine_name == "rdf") {
      engine = EngineKind::kRdf;
    } else if (engine_name == "bigquery") {
      engine = EngineKind::kBigQueryShape;
    } else if (engine_name == "presto") {
      engine = EngineKind::kPrestoShape;
    } else if (engine_name == "doc") {
      engine = EngineKind::kDoc;
    } else {
      std::fprintf(stderr, "--worker-shards needs a single engine, got '%s'\n",
                   engine_name.c_str());
      return 2;
    }
    return RunWorkerMode(engine, q, data, options, worker_shards);
  }

  std::printf("Q%d: %s\ndata: %s\n\n", q, hepq::queries::AdlQueryTitle(q),
              data.c_str());

  if (engine_name == "explain") {
    auto expr_plan = hepq::queries::BuildAdlEventQuery(q);
    expr_plan.status().Check();
    std::printf("%s\n", expr_plan->Explain().c_str());
    auto flat_plan = hepq::queries::BuildAdlFlatPipeline(q);
    if (flat_plan.ok()) {
      std::printf("%s", flat_plan->Explain().c_str());
    } else {
      std::printf("FlatPipeline: %s\n",
                  flat_plan.status().ToString().c_str());
    }
    return 0;
  }
  if (engine_name == "all") {
    const struct {
      EngineKind kind;
      const char* cli_name;  // what --worker-shards children parse
    } engines[] = {{EngineKind::kRdf, "rdf"},
                   {EngineKind::kBigQueryShape, "bigquery"},
                   {EngineKind::kPrestoShape, "presto"},
                   {EngineKind::kDoc, "doc"}};
    for (const auto& e : engines) {
      if (procs > 1) {
        RunScatteredOne(argv[0], e.kind, e.cli_name, q, data, options,
                        procs);
      } else {
        RunOne(e.kind, q, data, options, profile, /*suffix_outputs=*/true);
      }
    }
    return 0;
  }
  EngineKind engine;
  if (engine_name == "rdf") {
    engine = EngineKind::kRdf;
  } else if (engine_name == "bigquery") {
    engine = EngineKind::kBigQueryShape;
  } else if (engine_name == "presto") {
    engine = EngineKind::kPrestoShape;
  } else if (engine_name == "doc") {
    engine = EngineKind::kDoc;
  } else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }
  if (procs > 1) {
    RunScatteredOne(argv[0], engine, engine_name, q, data, options, procs);
  } else {
    RunOne(engine, q, data, options, profile, /*suffix_outputs=*/false);
  }
  return 0;
}
