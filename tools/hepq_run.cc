// hepq_run: run one ADL benchmark query on a chosen engine and print the
// resulting histogram plus execution statistics.
//
// Usage: hepq_run <query 1..8> [engine] [events] [--threads=N]
//                 [--vexpr-tier=interpret|bytecode|simd]
//                 [--no-pushdown] [--no-late-mat]
//                 [--profile[=report.json]] [--trace=trace.json]
//   engine: rdf (default) | bigquery | presto | doc | all | explain
//   events: data-set size to generate/reuse (default 20000)
//   --threads=N: scan row groups with N workers of the shared runtime
//     (results are bit-identical for any N; default 1)
//   --vexpr-tier=T: expression-execution tier for the bigquery/presto
//     plan shapes — interpret (tree walk), bytecode (PR 3 VM), or simd
//     (fused batch kernels, the default); histograms are bit-identical
//     across tiers. Replaces the old --interpret-expressions boolean.
//   --no-pushdown: disable zone-map predicate pushdown (group/page
//     pruning); histograms are bit-identical either way
//   --no-late-mat: disable late materialization (decode every projected
//     column even for row groups with no surviving events)
//   --profile: trace the run and print the per-stage/per-worker/per-leaf
//     table to stderr (stdout stays pipeable); --profile=path.json writes
//     the machine-readable RunReport JSON instead
//   --trace=path.json: write the spans as Chrome trace_event JSON,
//     loadable in chrome://tracing or Perfetto
//   --data=path.laq: run over an existing laq file (e.g. a laq_optimize'd
//     copy) OR a sharded dataset directory of "*.laq" files, instead of
//     generating one from the events count
//   --procs=P: scatter/gather coordinator — spawn P worker processes
//     (this binary re-invoked with --worker-shards), each owning a
//     contiguous range of the dataset's shards, and merge their results
//     in shard order. Bit-identical to --procs=1 (in-process) for any P.
//   --worker-shards=a:b: worker mode (used by --procs; scriptable for
//     debugging) — run shards [a, b) of the dataset and write result
//     frames to stdout instead of human-readable output.
//   --worker-report: worker mode only (added by a profiling coordinator)
//     — trace the whole shard range under one session with the metrics
//     registry on, and stream the aggregated ProcessReport back as a
//     kReport frame. With --procs=P plus --profile/--trace the
//     coordinator merges all P reports into ONE cross-process RunReport
//     (per-process totals reconcile bit-exactly against the merged scan
//     stats) and one stitched Chrome trace with a pid per worker.
//   --metrics[=path]: turn the process-wide metrics registry on and dump
//     the exposition after the run — Prometheus text to stderr, or to
//     `path` (JSON when the path ends in .json).
//   --cache[=BYTES]: enable the process-wide cache hierarchy for this
//     invocation — a decoded-chunk LRU (BYTES budget, default 256 MiB)
//     shared by every reader plus a query-fingerprint result cache.
//     The footer/metadata cache is always on (it costs no data bytes).
//     Off by default so single-query ablation runs stay cold-path.
//   --queries=all: batch driver — run the whole 8-query suite in one
//     process (compact per-query lines instead of histograms), so
//     queries share the caches. Positionals shift: [engine] [events].
//   --repeat=N: run the suite N times (with --queries=all); under
//     --cache the second pass is served from the caches and decodes 0
//     bytes from storage.
//   "explain" prints the relational plans instead of executing.

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "datagen/dataset.h"
#include "fileio/dataset_reader.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "queries/adl.h"
#include "queries/builders.h"
#include "scatter/ipc.h"
#include "scatter/scatter.h"

using hepq::queries::EngineKind;
using hepq::queries::EngineKindName;
using hepq::queries::RunAdlQuery;

namespace {

struct ProfileOptions {
  bool enabled = false;       // --profile or --trace given
  bool table = false;         // --profile with no path: table to stderr
  std::string report_path;    // --profile=path.json
  std::string trace_path;     // --trace=path.json
};

struct MetricsOptions {
  bool enabled = false;  // --metrics given: registry on for the process
  std::string path;      // --metrics=path: exposition file (else stderr)
};

/// Final metrics exposition for --metrics: Prometheus text to stderr, or
/// to a file (JSON when the path says so).
void DumpMetrics(const MetricsOptions& metrics) {
  if (!metrics.enabled) return;
  const auto samples = hepq::obs::metrics::SnapshotMetrics();
  if (metrics.path.empty()) {
    std::fputs(hepq::obs::metrics::MetricsToPrometheus(samples).c_str(),
               stderr);
    return;
  }
  const bool json = metrics.path.size() > 5 &&
                    metrics.path.rfind(".json") == metrics.path.size() - 5;
  hepq::obs::WriteTextFile(
      metrics.path, json ? hepq::obs::metrics::MetricsToJson(samples)
                         : hepq::obs::metrics::MetricsToPrometheus(samples))
      .Check();
  std::fprintf(stderr, "metrics: %s\n", metrics.path.c_str());
}

/// "report.json" -> "report.rdataframe.json" so engine=all runs do not
/// overwrite one another's files.
std::string WithEngineSuffix(const std::string& path,
                             const std::string& engine) {
  const size_t dot = path.rfind('.');
  if (dot == std::string::npos || path.find('/', dot) != std::string::npos) {
    return path + "." + engine;
  }
  return path.substr(0, dot) + "." + engine + path.substr(dot);
}

void PrintRunOutput(EngineKind engine,
                    const hepq::queries::QueryRunOutput& result) {
  std::printf("--- %s ---\n", EngineKindName(engine));
  std::printf(
      "events: %lld   cpu: %.4f s   wall: %.4f s   storage bytes: %llu\n",
      static_cast<long long>(result.events_processed),
      result.cpu_seconds, result.wall_seconds,
      static_cast<unsigned long long>(result.scan.storage_bytes));
  std::printf(
      "decoded bytes: %llu   groups pruned: %llu   pages pruned: %llu/%llu"
      "   rows pruned: %llu\n",
      static_cast<unsigned long long>(result.scan.decoded_bytes),
      static_cast<unsigned long long>(result.scan.groups_pruned),
      static_cast<unsigned long long>(result.scan.pages_pruned),
      static_cast<unsigned long long>(result.scan.pages_pruned +
                                      result.scan.pages_read),
      static_cast<unsigned long long>(result.scan.rows_pruned));
  if (result.ops > 0) {
    std::printf("ops/event: %.2f\n",
                static_cast<double>(result.ops) /
                    static_cast<double>(result.events_processed));
  }
  if (result.from_result_cache) {
    std::printf("result cache: hit (bit-identical cached histograms; no "
                "reader opened)\n");
  } else if (result.scan.chunk_cache_hits + result.scan.chunk_cache_misses >
             0) {
    std::printf(
        "chunk cache: %llu hits / %llu misses   served: %llu B   "
        "consumed: %llu B\n",
        static_cast<unsigned long long>(result.scan.chunk_cache_hits),
        static_cast<unsigned long long>(result.scan.chunk_cache_misses),
        static_cast<unsigned long long>(result.scan.cache_bytes_served),
        static_cast<unsigned long long>(result.scan.decoded_bytes +
                                        result.scan.cache_bytes_served));
  }
  for (const hepq::Histogram1D& h : result.histograms) {
    std::printf("%s\n", h.ToString(10).c_str());
  }
}

/// Batch driver (--queries=all): the 8-query suite, `repeat` passes, one
/// process — the access pattern the cache hierarchy exists for. Compact
/// per-query lines; machine-parsable per-pass totals (the CI warm-run
/// gate greps `decoded_bytes=0` off the repeat pass's totals line).
void RunSuite(EngineKind engine, const std::string& data,
              const hepq::queries::RunOptions& options, int repeat) {
  std::printf("--- %s ---\n", EngineKindName(engine));
  for (int pass = 0; pass < repeat; ++pass) {
    double wall = 0.0;
    unsigned long long decoded = 0, served = 0;
    int result_hits = 0;
    for (int q = 1; q <= hepq::queries::kNumAdlQueries; ++q) {
      auto result = RunAdlQuery(engine, q, data, options);
      if (!result.ok()) {
        std::fprintf(stderr, "error: Q%d: %s\n", q,
                     result.status().ToString().c_str());
        std::exit(1);
      }
      wall += result->wall_seconds;
      decoded += result->scan.decoded_bytes;
      served += result->scan.cache_bytes_served;
      result_hits += result->from_result_cache ? 1 : 0;
      std::printf("pass %d Q%d: wall %9.4f s   decoded %12llu B   "
                  "served %12llu B%s\n",
                  pass, q, result->wall_seconds,
                  static_cast<unsigned long long>(
                      result->scan.decoded_bytes),
                  static_cast<unsigned long long>(
                      result->scan.cache_bytes_served),
                  result->from_result_cache ? "   [result cache]" : "");
    }
    std::printf("pass %d totals: wall_s=%.6f decoded_bytes=%llu "
                "cache_bytes_served=%llu result_hits=%d/%d\n",
                pass, wall, decoded, served, result_hits,
                hepq::queries::kNumAdlQueries);
  }
  const hepq::cache::CacheCounters footer =
      hepq::cache::FooterCache::Process().counters();
  std::printf("footer cache: %llu hits / %llu misses (%llu entries)\n",
              static_cast<unsigned long long>(footer.hits),
              static_cast<unsigned long long>(footer.misses),
              static_cast<unsigned long long>(footer.entries));
  if (options.chunk_cache != nullptr) {
    const hepq::cache::CacheCounters chunk = options.chunk_cache->counters();
    std::printf("chunk cache: %llu hits / %llu misses   %llu inserts   "
                "%llu evictions   resident %llu B in %llu entries "
                "(budget %llu B)\n",
                static_cast<unsigned long long>(chunk.hits),
                static_cast<unsigned long long>(chunk.misses),
                static_cast<unsigned long long>(chunk.inserts),
                static_cast<unsigned long long>(chunk.evictions),
                static_cast<unsigned long long>(chunk.bytes_held),
                static_cast<unsigned long long>(chunk.entries),
                static_cast<unsigned long long>(
                    options.chunk_cache->budget_bytes()));
  }
  if (options.result_cache != nullptr) {
    const hepq::cache::CacheCounters res = options.result_cache->counters();
    std::printf("result cache: %llu hits / %llu misses (%llu entries)\n",
                static_cast<unsigned long long>(res.hits),
                static_cast<unsigned long long>(res.misses),
                static_cast<unsigned long long>(res.entries));
  }
}

void RunOne(EngineKind engine, int q, const std::string& path,
            const hepq::queries::RunOptions& options,
            const ProfileOptions& profile, bool suffix_outputs) {
  hepq::obs::TraceSession session;
  if (profile.enabled) session.Start();
  auto result = RunAdlQuery(engine, q, path, options);
  session.Stop();
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  PrintRunOutput(engine, *result);

  if (!profile.enabled) return;
  hepq::obs::RunInfo info;
  info.query = "Q";
  info.query += std::to_string(q);
  info.engine = EngineKindName(engine);
  info.threads = options.num_threads;
  info.events_processed = result->events_processed;
  info.wall_seconds = result->wall_seconds;
  info.cpu_seconds = result->cpu_seconds;
  const hepq::obs::RunReport report =
      hepq::obs::BuildRunReport(session, info, result->scan);
  if (profile.table) {
    std::fputs(hepq::obs::ReportToTable(report).c_str(), stderr);
  }
  if (!profile.report_path.empty()) {
    const std::string out =
        suffix_outputs ? WithEngineSuffix(profile.report_path, info.engine)
                       : profile.report_path;
    hepq::obs::WriteTextFile(out, hepq::obs::ReportToJson(report)).Check();
    std::fprintf(stderr, "run report: %s\n", out.c_str());
  }
  if (!profile.trace_path.empty()) {
    const std::string out =
        suffix_outputs ? WithEngineSuffix(profile.trace_path, info.engine)
                       : profile.trace_path;
    hepq::obs::WriteTextFile(out, hepq::obs::ChromeTraceJson(session))
        .Check();
    std::fprintf(stderr, "chrome trace: %s\n", out.c_str());
  }
}

/// The dataset's sorted shard list: every "*.laq" of a directory, or the
/// single file itself.
hepq::Result<std::vector<std::string>> ShardFilesFor(const std::string& data) {
  if (hepq::IsDirectory(data)) return hepq::ListLaqFiles(data);
  return std::vector<std::string>{data};
}

/// Worker half of --procs: run shards [range) and stream frames to
/// stdout. Human output is suppressed — stdout is the wire. With
/// `worker_report` (set by a profiling coordinator) the whole range runs
/// under one trace session with the metrics registry on, and the
/// aggregated ProcessReport goes back as a kReport frame.
int RunWorkerMode(EngineKind engine, int q, const std::string& data,
                  const hepq::queries::RunOptions& options,
                  hepq::scatter::ShardRange range, bool worker_report) {
  auto files = ShardFilesFor(data);
  if (!files.ok()) {
    std::fprintf(stderr, "error: %s\n", files.status().ToString().c_str());
    return 1;
  }
  if (range.begin < 0 || range.end > static_cast<int>(files->size()) ||
      range.begin >= range.end) {
    std::fprintf(stderr, "error: --worker-shards range [%d, %d) out of "
                         "bounds for %zu shards\n",
                 range.begin, range.end, files->size());
    return 1;
  }
  hepq::obs::TraceSession session;
  int64_t events = 0;
  double wall = 0.0, cpu = 0.0;
  hepq::ScanStats scan;
  if (worker_report) {
    hepq::obs::metrics::SetMetricsEnabled(true);
    session.Start();
  }
  std::function<std::vector<uint8_t>()> report_payload;
  if (worker_report) {
    report_payload = [&]() {
      session.Stop();
      hepq::obs::RunInfo info;
      info.query = "Q" + std::to_string(q);
      info.engine = EngineKindName(engine);
      info.threads = options.num_threads;
      info.events_processed = events;
      info.wall_seconds = wall;
      info.cpu_seconds = cpu;
      const hepq::obs::ProcessReport report = hepq::obs::BuildProcessReport(
          session, info, scan, range.begin, range.end);
      return hepq::scatter::EncodeReportPayload(report);
    };
  }
  const hepq::Status status = hepq::scatter::RunWorker(
      *files, range,
      [&](const std::string& shard) {
        auto result = RunAdlQuery(engine, q, shard, options);
        if (result.ok()) {
          events += result->events_processed;
          wall += result->wall_seconds;
          cpu += result->cpu_seconds;
          scan.Add(result->scan);
        }
        return result;
      },
      STDOUT_FILENO, report_payload);
  if (!status.ok()) {
    std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
    return 1;
  }
  return 0;
}

/// Coordinator half of --procs: spawn workers (this binary re-invoked
/// with --worker-shards), gather, merge in shard order, print. Under
/// --profile/--trace/--metrics the workers also send kReport frames and
/// the coordinator merges them into one cross-process RunReport (and one
/// stitched Chrome trace).
void RunScatteredOne(const char* self, EngineKind engine,
                     const std::string& engine_name, int q,
                     const std::string& data,
                     const hepq::queries::RunOptions& options, int procs,
                     const ProfileOptions& profile, bool metrics_enabled,
                     bool suffix_outputs) {
  auto files = ShardFilesFor(data);
  if (!files.ok()) {
    std::fprintf(stderr, "error: %s\n", files.status().ToString().c_str());
    std::exit(1);
  }
  const bool want_reports = profile.enabled || metrics_enabled;
  auto make_argv = [&](hepq::scatter::ShardRange range) {
    std::vector<std::string> argv;
    argv.push_back(self);
    argv.push_back(std::to_string(q));
    argv.push_back(engine_name);
    argv.push_back("--data=" + data);
    argv.push_back("--threads=" + std::to_string(options.num_threads));
    argv.push_back(std::string("--vexpr-tier=") +
                   hepq::queries::VexprTierName(options.vexpr_tier));
    if (!options.scan_pushdown) argv.push_back("--no-pushdown");
    if (!options.late_materialization) argv.push_back("--no-late-mat");
    if (want_reports) argv.push_back("--worker-report");
    argv.push_back("--worker-shards=" + std::to_string(range.begin) + ":" +
                   std::to_string(range.end));
    return argv;
  };
  std::vector<hepq::obs::ProcessReport> reports;
  auto result = hepq::scatter::RunScattered(
      *files, procs, make_argv, want_reports ? &reports : nullptr);
  if (!result.ok()) {
    std::fprintf(stderr, "error: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  PrintRunOutput(engine, *result);

  if (!profile.enabled) return;
  hepq::obs::RunInfo info;
  info.query = "Q";
  info.query += std::to_string(q);
  info.engine = EngineKindName(engine);
  info.threads = options.num_threads;
  info.events_processed = result->events_processed;
  info.wall_seconds = result->wall_seconds;
  info.cpu_seconds = result->cpu_seconds;
  const hepq::obs::RunReport report =
      hepq::obs::MergeProcessReports(info, result->scan, reports);
  if (profile.table) {
    std::fputs(hepq::obs::ReportToTable(report).c_str(), stderr);
  }
  if (!profile.report_path.empty()) {
    const std::string out =
        suffix_outputs ? WithEngineSuffix(profile.report_path, info.engine)
                       : profile.report_path;
    hepq::obs::WriteTextFile(out, hepq::obs::ReportToJson(report)).Check();
    std::fprintf(stderr, "run report: %s\n", out.c_str());
  }
  if (!profile.trace_path.empty()) {
    const std::string out =
        suffix_outputs ? WithEngineSuffix(profile.trace_path, info.engine)
                       : profile.trace_path;
    hepq::obs::WriteTextFile(out,
                             hepq::obs::MultiProcessChromeTraceJson(reports))
        .Check();
    std::fprintf(stderr, "chrome trace: %s\n", out.c_str());
  }
}

}  // namespace

int main(int argc, char** argv) {
  hepq::queries::RunOptions options;
  ProfileOptions profile;
  MetricsOptions metrics;
  std::string data_path;
  int procs = 0;
  bool queries_all = false;
  int repeat = 1;
  hepq::scatter::ShardRange worker_shards;
  bool worker_mode = false;
  bool worker_report = false;
  int kept = 1;  // strip option flags wherever they appear
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--data=", 7) == 0) {
      data_path = argv[i] + 7;
      continue;
    }
    if (std::strncmp(argv[i], "--procs=", 8) == 0) {
      procs = std::atoi(argv[i] + 8);
      continue;
    }
    if (std::strncmp(argv[i], "--worker-shards=", 16) == 0) {
      const char* spec = argv[i] + 16;
      const char* colon = std::strchr(spec, ':');
      if (colon == nullptr) {
        std::fprintf(stderr, "--worker-shards must be <begin>:<end>\n");
        return 2;
      }
      worker_shards.begin = std::atoi(spec);
      worker_shards.end = std::atoi(colon + 1);
      worker_mode = true;
      continue;
    }
    if (std::strncmp(argv[i], "--threads=", 10) == 0) {
      const int v = std::atoi(argv[i] + 10);
      if (v > 0) options.num_threads = v;
      continue;
    }
    if (std::strncmp(argv[i], "--vexpr-tier=", 13) == 0) {
      if (!hepq::queries::ParseVexprTier(argv[i] + 13,
                                         &options.vexpr_tier)) {
        std::fprintf(stderr,
                     "--vexpr-tier must be interpret, bytecode, or simd\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--cache") == 0 ||
        std::strncmp(argv[i], "--cache=", 8) == 0) {
      hepq::cache::CacheOptions cache_options;
      if (argv[i][7] == '=') {
        const long long bytes = std::atoll(argv[i] + 8);
        if (bytes <= 0) {
          std::fprintf(stderr, "--cache=BYTES needs a positive byte count\n");
          return 2;
        }
        cache_options.decoded_budget_bytes = static_cast<uint64_t>(bytes);
      }
      options.chunk_cache =
          std::make_shared<hepq::cache::ChunkCache>(cache_options);
      options.result_cache = std::make_shared<hepq::cache::ResultCache>();
      continue;
    }
    if (std::strcmp(argv[i], "--queries=all") == 0) {
      queries_all = true;
      continue;
    }
    if (std::strncmp(argv[i], "--repeat=", 9) == 0) {
      repeat = std::atoi(argv[i] + 9);
      if (repeat < 1) {
        std::fprintf(stderr, "--repeat needs a positive pass count\n");
        return 2;
      }
      continue;
    }
    if (std::strcmp(argv[i], "--no-pushdown") == 0) {
      options.scan_pushdown = false;
      continue;
    }
    if (std::strcmp(argv[i], "--no-late-mat") == 0) {
      options.late_materialization = false;
      continue;
    }
    if (std::strcmp(argv[i], "--profile") == 0) {
      profile.enabled = true;
      profile.table = true;
      continue;
    }
    if (std::strncmp(argv[i], "--profile=", 10) == 0) {
      profile.enabled = true;
      profile.report_path = argv[i] + 10;
      continue;
    }
    if (std::strncmp(argv[i], "--trace=", 8) == 0) {
      profile.enabled = true;
      profile.trace_path = argv[i] + 8;
      continue;
    }
    if (std::strcmp(argv[i], "--metrics") == 0) {
      metrics.enabled = true;
      continue;
    }
    if (std::strncmp(argv[i], "--metrics=", 10) == 0) {
      metrics.enabled = true;
      metrics.path = argv[i] + 10;
      continue;
    }
    if (std::strcmp(argv[i], "--worker-report") == 0) {
      worker_report = true;
      continue;
    }
    argv[kept++] = argv[i];
  }
  argc = kept;
  if (metrics.enabled) hepq::obs::metrics::SetMetricsEnabled(true);
  if (argc < 2 && !queries_all) {
    std::fprintf(stderr, "usage: %s <query 1..8> [rdf|bigquery|presto|doc|all]"
                         " [events] [--threads=N]"
                         " [--vexpr-tier=interpret|bytecode|simd]"
                         " [--no-pushdown]"
                         " [--no-late-mat] [--profile[=report.json]]"
                         " [--trace=trace.json] [--data=path.laq]"
                         " [--cache[=BYTES]] [--queries=all] [--repeat=N]"
                         " [--metrics[=path]]\n",
                 argv[0]);
    return 2;
  }
  int q = 0;
  std::string engine_name;
  int64_t events = 20000;
  if (queries_all) {
    // Suite mode drops the query positional: [engine] [events].
    engine_name = argc > 1 ? argv[1] : "rdf";
    if (argc > 2) events = std::atoll(argv[2]);
  } else {
    q = std::atoi(argv[1]);
    if (q < 1 || q > 8) {
      std::fprintf(stderr, "query id must be 1..8\n");
      return 2;
    }
    engine_name = argc > 2 ? argv[2] : "rdf";
    if (argc > 3) events = std::atoll(argv[3]);
  }

  std::string data;
  if (!data_path.empty()) {
    data = data_path;
  } else {
    hepq::DatasetSpec spec;
    spec.num_events = events;
    spec.row_group_size = std::max<int64_t>(1000, events / 4);
    auto path = hepq::EnsureDataset(hepq::DefaultDataDir(), spec);
    path.status().Check();
    data = *path;
  }

  if (queries_all) {
    if (worker_mode || procs > 1) {
      std::fprintf(stderr,
                   "--queries=all runs in one process (no --procs/worker)\n");
      return 2;
    }
    std::printf("8-query suite   data: %s   passes: %d   cache: %s\n\n",
                data.c_str(), repeat,
                options.chunk_cache != nullptr ? "on" : "off");
    const struct {
      EngineKind kind;
      const char* cli_name;
    } engines[] = {{EngineKind::kRdf, "rdf"},
                   {EngineKind::kBigQueryShape, "bigquery"},
                   {EngineKind::kPrestoShape, "presto"},
                   {EngineKind::kDoc, "doc"}};
    bool ran = false;
    for (const auto& e : engines) {
      if (engine_name == "all" || engine_name == e.cli_name) {
        RunSuite(e.kind, data, options, repeat);
        ran = true;
      }
    }
    if (!ran) {
      std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
      return 2;
    }
    DumpMetrics(metrics);
    return 0;
  }

  if (worker_mode) {
    // Stdout is the frame wire; nothing human-readable may touch it.
    EngineKind engine;
    if (engine_name == "rdf") {
      engine = EngineKind::kRdf;
    } else if (engine_name == "bigquery") {
      engine = EngineKind::kBigQueryShape;
    } else if (engine_name == "presto") {
      engine = EngineKind::kPrestoShape;
    } else if (engine_name == "doc") {
      engine = EngineKind::kDoc;
    } else {
      std::fprintf(stderr, "--worker-shards needs a single engine, got '%s'\n",
                   engine_name.c_str());
      return 2;
    }
    return RunWorkerMode(engine, q, data, options, worker_shards,
                         worker_report);
  }

  std::printf("Q%d: %s\ndata: %s\n\n", q, hepq::queries::AdlQueryTitle(q),
              data.c_str());

  if (engine_name == "explain") {
    auto expr_plan = hepq::queries::BuildAdlEventQuery(q);
    expr_plan.status().Check();
    std::printf("%s\n", expr_plan->Explain().c_str());
    auto flat_plan = hepq::queries::BuildAdlFlatPipeline(q);
    if (flat_plan.ok()) {
      std::printf("%s", flat_plan->Explain().c_str());
    } else {
      std::printf("FlatPipeline: %s\n",
                  flat_plan.status().ToString().c_str());
    }
    return 0;
  }
  if (engine_name == "all") {
    const struct {
      EngineKind kind;
      const char* cli_name;  // what --worker-shards children parse
    } engines[] = {{EngineKind::kRdf, "rdf"},
                   {EngineKind::kBigQueryShape, "bigquery"},
                   {EngineKind::kPrestoShape, "presto"},
                   {EngineKind::kDoc, "doc"}};
    for (const auto& e : engines) {
      if (procs > 1) {
        RunScatteredOne(argv[0], e.kind, e.cli_name, q, data, options, procs,
                        profile, metrics.enabled, /*suffix_outputs=*/true);
      } else {
        RunOne(e.kind, q, data, options, profile, /*suffix_outputs=*/true);
      }
    }
    DumpMetrics(metrics);
    return 0;
  }
  EngineKind engine;
  if (engine_name == "rdf") {
    engine = EngineKind::kRdf;
  } else if (engine_name == "bigquery") {
    engine = EngineKind::kBigQueryShape;
  } else if (engine_name == "presto") {
    engine = EngineKind::kPrestoShape;
  } else if (engine_name == "doc") {
    engine = EngineKind::kDoc;
  } else {
    std::fprintf(stderr, "unknown engine '%s'\n", engine_name.c_str());
    return 2;
  }
  if (procs > 1) {
    RunScatteredOne(argv[0], engine, engine_name, q, data, options, procs,
                    profile, metrics.enabled, /*suffix_outputs=*/false);
  } else {
    RunOne(engine, q, data, options, profile, /*suffix_outputs=*/false);
  }
  DumpMetrics(metrics);
  return 0;
}
