// laq_optimize: rewrite a .laq dataset into a pruning-friendly copy —
// events reordered by a cluster key (trigger-skim style), dictionary /
// frame-of-reference encodings for low-cardinality integer leaves, and
// data-statistics-driven row-group and page sizing. Histograms computed
// over the copy are bit-identical to the original (reordering commutes
// with weight-1 fills under the deterministic merge); only the zone maps
// get sharper, so predicate pushdown finally skips real data.
//
// Usage: laq_optimize <input.laq | dataset-dir> <output.laq | output-dir>
//          [--key=leaf1,leaf2,...]  cluster key, most significant first
//                                   (default Muon#lengths,Jet#lengths,MET.pt)
//          [--row-group=N]          rows per output row group (default: derived)
//          [--page-values=N]        values per output page (default: derived)
//          [--codec=lz|none]        block codec for the copy (default lz)
//          [--no-advanced-encodings]  stick to the classic encoding set
//          [--report=run.json]      RunReport from `hepq_run --profile=`;
//                                   its hottest-decoded leaves are appended
//                                   to the cluster key as tiebreakers
//          [--verify]               after rewriting, run all 8 ADL queries
//                                   on all 4 frontends with pruning on and
//                                   off over input and output and require
//                                   bit-identical histograms (exit 1 if not)

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fileio/dataset_reader.h"
#include "fileio/layout_optimizer.h"
#include "queries/adl.h"

using hepq::AnalyzeLaqFile;
using hepq::LayoutAnalysis;
using hepq::LeafLayoutSummary;
using hepq::OptimizeLaqFile;
using hepq::OptimizeOptions;

namespace {

/// Pulls the per-leaf decoded-byte ranking out of a RunReport JSON with a
/// tolerant string scan (the repo has no JSON parser; the report writer
/// emits exactly this shape). Returns leaf paths hottest-first.
std::vector<std::string> HottestLeaves(const std::string& report_path) {
  std::ifstream in(report_path);
  if (!in) {
    std::fprintf(stderr, "warning: cannot read --report=%s, ignoring\n",
                 report_path.c_str());
    return {};
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  std::vector<std::pair<unsigned long long, std::string>> ranked;
  size_t pos = 0;
  while ((pos = text.find("{\"leaf\": \"", pos)) != std::string::npos) {
    pos += 10;
    const size_t end = text.find('"', pos);
    if (end == std::string::npos) break;
    const std::string leaf = text.substr(pos, end - pos);
    const size_t bytes_key = text.find("\"decoded_bytes\": ", end);
    if (bytes_key == std::string::npos) break;
    const unsigned long long bytes =
        std::strtoull(text.c_str() + bytes_key + 17, nullptr, 10);
    ranked.emplace_back(bytes, leaf);
    pos = end;
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const auto& a, const auto& b) { return a.first > b.first; });
  std::vector<std::string> leaves;
  for (const auto& [bytes, leaf] : ranked) {
    if (bytes > 0) leaves.push_back(leaf);
  }
  return leaves;
}

std::vector<std::string> SplitKeys(const std::string& csv) {
  std::vector<std::string> keys;
  size_t start = 0;
  while (start <= csv.size()) {
    const size_t comma = csv.find(',', start);
    const std::string key =
        csv.substr(start, comma == std::string::npos ? std::string::npos
                                                     : comma - start);
    if (!key.empty()) keys.push_back(key);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return keys;
}

const LeafLayoutSummary* FindLeaf(const LayoutAnalysis& analysis,
                                  const std::string& path) {
  for (const LeafLayoutSummary& leaf : analysis.leaves) {
    if (leaf.path == path) return &leaf;
  }
  return nullptr;
}

void PrintComparison(const LayoutAnalysis& before,
                     const LayoutAnalysis& after) {
  std::printf("%-24s %9s %9s %10s %10s %9s %9s\n", "leaf", "enc", "enc'",
              "prunable", "prunable'", "stored", "stored'");
  for (const LeafLayoutSummary& b : before.leaves) {
    const LeafLayoutSummary* a = FindLeaf(after, b.path);
    if (a == nullptr) continue;
    std::printf("%-24s %9s %9s %9.1f%% %9.1f%% %9llu %9llu\n",
                b.path.c_str(), EncodingName(b.encoding),
                EncodingName(a->encoding), 100.0 * b.prunable_fraction(),
                100.0 * a->prunable_fraction(),
                static_cast<unsigned long long>(b.storage_bytes),
                static_cast<unsigned long long>(a->storage_bytes));
  }
  std::printf("%-24s %9d %9d %10s %10s %9llu %9llu\n", "(row groups / bytes)",
              before.row_groups, after.row_groups, "", "",
              static_cast<unsigned long long>(before.storage_bytes),
              static_cast<unsigned long long>(after.storage_bytes));
}

/// Exact (bitwise) histogram equality — the contract the rewrite upholds.
bool BitIdentical(const hepq::Histogram1D& a, const hepq::Histogram1D& b) {
  if (a.num_entries() != b.num_entries()) return false;
  if (a.sum_weights() != b.sum_weights()) return false;
  if (a.underflow() != b.underflow() || a.overflow() != b.overflow()) {
    return false;
  }
  for (int i = 0; i < a.spec().num_bins; ++i) {
    if (a.BinContent(i) != b.BinContent(i)) return false;
  }
  return true;
}

/// Folds one shard's analysis into a dataset-wide total (leaf order is
/// schema order, identical across shards of one dataset; the aggregate
/// keeps the first shard's encoding labels).
void Accumulate(LayoutAnalysis* total, const LayoutAnalysis& shard) {
  total->total_rows += shard.total_rows;
  total->row_groups += shard.row_groups;
  total->storage_bytes += shard.storage_bytes;
  if (total->leaves.empty()) {
    total->leaves = shard.leaves;
    return;
  }
  for (size_t l = 0; l < shard.leaves.size() && l < total->leaves.size();
       ++l) {
    total->leaves[l].storage_bytes += shard.leaves[l].storage_bytes;
    total->leaves[l].pages += shard.leaves[l].pages;
    total->leaves[l].prunable_pages += shard.leaves[l].prunable_pages;
  }
}

int Verify(const std::string& input, const std::string& output) {
  using hepq::queries::EngineKind;
  using hepq::queries::EngineKindName;
  using hepq::queries::RunAdlQuery;
  int failures = 0;
  for (int q = 1; q <= hepq::queries::kNumAdlQueries; ++q) {
    for (EngineKind engine :
         {EngineKind::kRdf, EngineKind::kBigQueryShape,
          EngineKind::kPrestoShape, EngineKind::kDoc}) {
      for (const bool pushdown : {true, false}) {
        hepq::queries::RunOptions options;
        options.scan_pushdown = pushdown;
        auto original = RunAdlQuery(engine, q, input, options);
        original.status().Check();
        auto optimized = RunAdlQuery(engine, q, output, options);
        optimized.status().Check();
        bool identical =
            original->histograms.size() == optimized->histograms.size() &&
            original->events_processed == optimized->events_processed;
        for (size_t h = 0; identical && h < original->histograms.size();
             ++h) {
          identical = BitIdentical(original->histograms[h],
                                   optimized->histograms[h]);
        }
        if (!identical) {
          ++failures;
          std::fprintf(stderr,
                       "verify FAILED: Q%d %s pushdown=%s differs on the "
                       "optimized copy\n",
                       q, EngineKindName(engine), pushdown ? "on" : "off");
        }
      }
    }
  }
  if (failures == 0) {
    std::printf("verify: all 8 queries x 4 frontends x pruning on/off "
                "bit-identical\n");
  }
  return failures;
}

}  // namespace

int main(int argc, char** argv) {
  OptimizeOptions options;
  bool verify = false;
  std::string report_path;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--key=", 6) == 0) {
      options.cluster_keys = SplitKeys(argv[i] + 6);
    } else if (std::strncmp(argv[i], "--row-group=", 12) == 0) {
      options.row_group_size = std::atoll(argv[i] + 12);
    } else if (std::strncmp(argv[i], "--page-values=", 14) == 0) {
      options.page_values = std::atoll(argv[i] + 14);
    } else if (std::strncmp(argv[i], "--codec=", 8) == 0) {
      const std::string name = argv[i] + 8;
      if (name == "none") {
        options.codec = hepq::Codec::kNone;
      } else if (name == "lz") {
        options.codec = hepq::Codec::kLz;
      } else {
        std::fprintf(stderr, "--codec must be lz or none\n");
        return 2;
      }
    } else if (std::strcmp(argv[i], "--no-advanced-encodings") == 0) {
      options.advanced_encodings = false;
    } else if (std::strncmp(argv[i], "--report=", 9) == 0) {
      report_path = argv[i] + 9;
    } else if (std::strcmp(argv[i], "--verify") == 0) {
      verify = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown flag '%s'\n", argv[i]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (positional.size() != 2) {
    std::fprintf(stderr,
                 "usage: %s <input.laq> <output.laq> [--key=a,b,...]"
                 " [--row-group=N] [--page-values=N] [--codec=lz|none]"
                 " [--no-advanced-encodings] [--report=run.json]"
                 " [--verify]\n",
                 argv[0]);
    return 2;
  }
  const std::string input = positional[0];
  const std::string output = positional[1];

  if (!report_path.empty()) {
    // RunReport feedback: the hottest-decoded leaves are where sharper
    // zone maps pay most, so append them (deduplicated) as tiebreakers.
    for (const std::string& leaf : HottestLeaves(report_path)) {
      if (std::find(options.cluster_keys.begin(), options.cluster_keys.end(),
                    leaf) == options.cluster_keys.end()) {
        options.cluster_keys.push_back(leaf);
      }
      if (options.cluster_keys.size() >= 6) break;  // diminishing returns
    }
  }

  if (hepq::IsDirectory(input)) {
    // Dataset directory: optimize every shard into a mirrored directory.
    // Each shard is rewritten independently (same per-file bit-identity
    // contract), and --verify compares directory-level query results.
    auto files = hepq::ListLaqFiles(input);
    if (!files.ok()) {
      std::fprintf(stderr, "error: %s\n", files.status().ToString().c_str());
      return 1;
    }
    if (::mkdir(output.c_str(), 0755) != 0 && errno != EEXIST) {
      std::fprintf(stderr, "error: cannot create output directory '%s'\n",
                   output.c_str());
      return 1;
    }
    LayoutAnalysis total_before;
    LayoutAnalysis total_after;
    for (const std::string& shard : *files) {
      const size_t slash = shard.rfind('/');
      const std::string base =
          slash == std::string::npos ? shard : shard.substr(slash + 1);
      const std::string out_path = output + "/" + base;
      auto shard_before = AnalyzeLaqFile(shard);
      if (!shard_before.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     shard_before.status().ToString().c_str());
        return 1;
      }
      std::printf("optimizing %s -> %s\n", shard.c_str(), out_path.c_str());
      auto shard_after = OptimizeLaqFile(shard, out_path, options);
      if (!shard_after.ok()) {
        std::fprintf(stderr, "error: %s\n",
                     shard_after.status().ToString().c_str());
        return 1;
      }
      Accumulate(&total_before, *shard_before);
      Accumulate(&total_after, *shard_after);
    }
    std::printf("\ndataset totals (%zu shards):\n", files->size());
    PrintComparison(total_before, total_after);
    if (verify) {
      return Verify(input, output) == 0 ? 0 : 1;
    }
    return 0;
  }

  auto before = AnalyzeLaqFile(input);
  if (!before.ok()) {
    std::fprintf(stderr, "error: %s\n", before.status().ToString().c_str());
    return 1;
  }

  std::printf("optimizing %s -> %s\n", input.c_str(), output.c_str());
  std::printf("cluster key:");
  for (const std::string& key : options.cluster_keys) {
    std::printf(" %s", key.c_str());
  }
  std::printf("\nrow group: %lld   page values: %lld (0 = derived)\n\n",
              static_cast<long long>(options.row_group_size),
              static_cast<long long>(options.page_values));

  auto after = OptimizeLaqFile(input, output, options);
  if (!after.ok()) {
    std::fprintf(stderr, "error: %s\n", after.status().ToString().c_str());
    return 1;
  }

  PrintComparison(*before, *after);

  if (verify) {
    return Verify(input, output) == 0 ? 0 : 1;
  }
  return 0;
}
