// laq_fuzz: deterministic corruption-injection harness for the .laq read
// path. Generates a valid synthetic CMS file, then systematically applies
//
//   1. truncations at (and adjacent to) every structural boundary,
//   2. seeded random bit flips across the whole file,
//   3. targeted footer field mutations re-serialized with a correct
//      footer CRC (offsets, sizes, counts, encodings, codecs, statistics),
//
// and asserts that every mutated file is handled safely: structural
// mutations must yield a non-OK Status with checksums on or off,
// checksum-guarded mutations must fail when validate_checksums is on, and
// best-effort mutations must at minimum never crash, hang, or trip a
// sanitizer. Pristine files must keep reading bit-identically through all
// four engine frontends at any thread count.
//
// The corpus is a pure function of --seed (default 20120601), so a CI run
// is reproducible bit for bit.
//
// --cache re-reads every mutated file with the cache hierarchy enabled
// (footer cache on, a fresh decoded-chunk cache per read) and asserts the
// first error is IDENTICAL to the cache-off read — the cache must never
// change which corruption is reported, or whether one is. It also runs
// dedicated cache-poisoning cases: same path, mutated bytes, mtime
// restored with utimensat so only the footer-CRC and size legs of the
// cache identity stand between a stale entry and the mutated file.
//
// Usage: laq_fuzz [--seed=N] [--flips=N] [--events=N] [--row-group=N]
//                 [--dir=PATH] [--keep-failures] [--verbose] [--cache]

#include <fcntl.h>
#include <sys/stat.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "core/rng.h"
#include "datagen/dataset.h"
#include "fileio/corruption.h"
#include "queries/adl.h"

namespace {

using hepq::laqfuzz::FieldMutation;
using hepq::laqfuzz::LaqImage;
using hepq::laqfuzz::MutationClass;

struct Options {
  uint64_t seed = 20120601;
  int flips = 1000;
  int64_t events = 1000;
  int64_t row_group = 250;
  std::string dir = "laq_fuzz_work";
  bool keep_failures = false;
  bool verbose = false;
  bool cache = false;
};

struct Tally {
  int total = 0;
  int structural = 0;
  int checksummed = 0;
  int best_effort = 0;
  int best_effort_survived = 0;  // best-effort mutations that read OK
  int cache_mismatches = 0;      // cached read reported a different error
  int failures = 0;
};

/// Exercises one mutated file under both checksum settings and checks the
/// expectation of its mutation class. Every call must return; crashes and
/// sanitizer reports are the harness's real assertions.
void CheckMutation(const std::string& path, const std::vector<uint8_t>& bytes,
                   MutationClass mclass, const std::string& what,
                   const Options& options, Tally* tally) {
  tally->total += 1;
  hepq::laqfuzz::WriteBytes(path, bytes).Check();
  hepq::ReaderOptions with, without;
  with.validate_checksums = true;
  without.validate_checksums = false;
  if (options.cache) {
    // In --cache mode the baseline pair is a true cache-off read; the
    // cached pair below must report the exact same statuses.
    with.footer_cache = false;
    without.footer_cache = false;
  }
  const hepq::Status checked = hepq::laqfuzz::ReadEverything(path, with);
  const hepq::Status unchecked = hepq::laqfuzz::ReadEverything(path, without);

  if (options.cache) {
    hepq::ReaderOptions with_cache = with, without_cache = without;
    with_cache.footer_cache = true;
    without_cache.footer_cache = true;
    // A fresh chunk cache per read: cross-file reuse is what the
    // poisoning cases probe; here the question is whether caching
    // changes the first error on a single read.
    with_cache.chunk_cache = std::make_shared<hepq::cache::ChunkCache>();
    without_cache.chunk_cache = std::make_shared<hepq::cache::ChunkCache>();
    const hepq::Status checked_cached =
        hepq::laqfuzz::ReadEverything(path, with_cache);
    const hepq::Status unchecked_cached =
        hepq::laqfuzz::ReadEverything(path, without_cache);
    if (checked_cached.ToString() != checked.ToString() ||
        unchecked_cached.ToString() != unchecked.ToString()) {
      tally->cache_mismatches += 1;
      tally->failures += 1;
      std::fprintf(stderr,
                   "FAIL [cache] %s\n  plain  on/off: %s / %s\n"
                   "  cached on/off: %s / %s\n",
                   what.c_str(), checked.ToString().c_str(),
                   unchecked.ToString().c_str(),
                   checked_cached.ToString().c_str(),
                   unchecked_cached.ToString().c_str());
    }
  }

  bool ok = true;
  switch (mclass) {
    case MutationClass::kStructural:
      tally->structural += 1;
      ok = !checked.ok() && !unchecked.ok();
      break;
    case MutationClass::kChecksummed:
      tally->checksummed += 1;
      ok = !checked.ok();
      break;
    case MutationClass::kBestEffort:
      tally->best_effort += 1;
      if (checked.ok() && unchecked.ok()) tally->best_effort_survived += 1;
      break;
  }
  if (!ok) {
    tally->failures += 1;
    std::fprintf(stderr,
                 "FAIL [%s] %s\n  checksums on:  %s\n  checksums off: %s\n",
                 hepq::laqfuzz::MutationClassName(mclass), what.c_str(),
                 checked.ToString().c_str(), unchecked.ToString().c_str());
    if (options.keep_failures) {
      const std::string kept = options.dir + "/failure_" +
                               std::to_string(tally->failures) + ".laq";
      hepq::laqfuzz::WriteBytes(kept, bytes).Check();
      std::fprintf(stderr, "  kept as %s\n", kept.c_str());
    }
  } else if (options.verbose) {
    std::fprintf(stderr, "ok   [%s] %s -> %s\n",
                 hepq::laqfuzz::MutationClassName(mclass), what.c_str(),
                 checked.ToString().c_str());
  }
}

bool BitIdentical(const hepq::Histogram1D& a, const hepq::Histogram1D& b) {
  if (a.num_entries() != b.num_entries() ||
      a.sum_weights() != b.sum_weights() || a.underflow() != b.underflow() ||
      a.overflow() != b.overflow()) {
    return false;
  }
  for (int i = 0; i < a.spec().num_bins; ++i) {
    if (a.BinContent(i) != b.BinContent(i)) return false;
  }
  return true;
}

/// Pristine-file invariant: every frontend reads the untouched file, and
/// its results are bit-identical for 1 vs 4 threads.
int CheckPristine(const std::string& path) {
  using hepq::queries::EngineKind;
  int failures = 0;
  for (EngineKind engine :
       {EngineKind::kRdf, EngineKind::kBigQueryShape, EngineKind::kPrestoShape,
        EngineKind::kDoc}) {
    hepq::queries::RunOptions one, four;
    one.num_threads = 1;
    four.num_threads = 4;
    auto a = hepq::queries::RunAdlQuery(engine, 1, path, one);
    auto b = hepq::queries::RunAdlQuery(engine, 1, path, four);
    if (!a.ok() || !b.ok() ||
        !BitIdentical(a->histograms[0], b->histograms[0])) {
      std::fprintf(stderr, "FAIL pristine read via %s: %s / %s\n",
                   hepq::queries::EngineKindName(engine),
                   a.status().ToString().c_str(),
                   b.status().ToString().c_str());
      failures += 1;
    }
  }
  return failures;
}

/// Restores the {a,m}time stamps captured in `st`. The cache identity is
/// (size, mtime_ns, footer CRC); restoring the mtime after a rewrite
/// removes the leg an attacker (or an unlucky same-granularity rewrite)
/// cannot control, so the poisoning cases below test the CRC/size legs
/// in isolation.
bool RestoreTimes(const std::string& path, const struct stat& st) {
  const struct timespec times[2] = {st.st_atim, st.st_mtim};
  return utimensat(AT_FDCWD, path.c_str(), times, 0) == 0;
}

/// Cache-poisoning cases: rewrite mutated bytes at the SAME path a warm
/// cache already knows, with the mtime restored to the pristine stamp.
/// The footer cache must never serve metadata for bytes that changed
/// (the per-open footer-CRC recompute and the size leg catch every
/// footer-visible change); a warm chunk cache over an unchanged footer
/// has OS-page-cache semantics — it may serve the previously decoded
/// values — but a fresh chunk cache must report the exact cache-off
/// error.
int CheckCachePoisoning(const LaqImage& image, const Options& options) {
  int failures = 0;
  const std::string path = options.dir + "/poison.laq";
  auto fail = [&failures](const char* what, const std::string& detail) {
    std::fprintf(stderr, "FAIL [cache-poison] %s: %s\n", what,
                 detail.c_str());
    failures += 1;
  };

  hepq::ReaderOptions plain;  // no caches at all
  plain.validate_checksums = true;
  plain.footer_cache = false;
  hepq::ReaderOptions cached;  // footer cache + warm shared chunk cache
  cached.validate_checksums = true;
  auto warm_chunks = std::make_shared<hepq::cache::ChunkCache>();
  cached.chunk_cache = warm_chunks;

  // Warm the footer and chunk caches on the pristine bytes.
  hepq::laqfuzz::WriteBytes(path, image.bytes).Check();
  struct stat pristine_stat;
  if (stat(path.c_str(), &pristine_stat) != 0) {
    fail("stat", "cannot stat pristine file");
    return failures;
  }
  const hepq::Status warm = hepq::laqfuzz::ReadEverything(path, cached);
  if (!warm.ok()) {
    fail("warm read", warm.ToString());
    return failures;
  }

  // Case 1: footer byte flipped, size unchanged, mtime restored. The
  // footer CRC is recomputed over the CURRENT bytes on every open, so
  // the structural check fires before any cache probe — identically
  // with the cache on or off.
  {
    const uint64_t offset = image.data_end + image.footer_size / 2;
    hepq::laqfuzz::WriteBytes(path, hepq::laqfuzz::FlipBit(image, offset, 3))
        .Check();
    RestoreTimes(path, pristine_stat);
    const hepq::Status c = hepq::laqfuzz::ReadEverything(path, cached);
    const hepq::Status p = hepq::laqfuzz::ReadEverything(path, plain);
    if (c.ok() || p.ok() || c.ToString() != p.ToString()) {
      fail("footer flip + stale mtime",
           "cached='" + c.ToString() + "' plain='" + p.ToString() + "'");
    }
  }

  // Case 2: truncation. The size leg of the identity changes, so even a
  // restored mtime cannot resurrect the stale entry.
  {
    hepq::laqfuzz::WriteBytes(
        path, hepq::laqfuzz::TruncateAt(image, image.bytes.size() - 5))
        .Check();
    RestoreTimes(path, pristine_stat);
    const hepq::Status c = hepq::laqfuzz::ReadEverything(path, cached);
    const hepq::Status p = hepq::laqfuzz::ReadEverything(path, plain);
    if (c.ok() || p.ok() || c.ToString() != p.ToString()) {
      fail("truncation + stale mtime",
           "cached='" + c.ToString() + "' plain='" + p.ToString() + "'");
    }
  }

  // Case 3: data byte flipped under an unchanged footer, mtime restored.
  // The footer identity legitimately matches (the footer bytes ARE
  // identical), so the warm chunk cache serves the previously decoded
  // values — deterministic stale-serve, same as the OS page cache would
  // give a writer that bypasses the cache's view. A FRESH chunk cache
  // decodes the mutated bytes and must report the exact cache-off error.
  {
    uint64_t offset = 8;
    while (offset < image.data_end &&
           hepq::laqfuzz::FlipClass(image, offset) !=
               MutationClass::kChecksummed) {
      ++offset;
    }
    hepq::laqfuzz::WriteBytes(path, hepq::laqfuzz::FlipBit(image, offset, 0))
        .Check();
    RestoreTimes(path, pristine_stat);
    const hepq::Status stale = hepq::laqfuzz::ReadEverything(path, cached);
    if (!stale.ok()) {
      fail("data flip warm stale-serve",
           "expected deterministic stale serve, got " + stale.ToString());
    }
    hepq::ReaderOptions fresh = cached;
    fresh.chunk_cache = std::make_shared<hepq::cache::ChunkCache>();
    const hepq::Status f = hepq::laqfuzz::ReadEverything(path, fresh);
    const hepq::Status p = hepq::laqfuzz::ReadEverything(path, plain);
    if (f.ok() || p.ok() || f.ToString() != p.ToString()) {
      fail("data flip + fresh chunk cache",
           "cached='" + f.ToString() + "' plain='" + p.ToString() + "'");
    }
  }

  std::printf("[cache] poisoning cases: 3 (footer flip, truncation, data "
              "flip), %d failures\n",
              failures);
  return failures;
}

/// Runs the full mutation corpus (truncations, footer field mutations,
/// seeded bit flips) over one base image. Shared by the classic-encoding
/// and advanced-encoding (layout-optimized) passes.
void SweepImage(const LaqImage& image, const char* tag,
                const Options& options, Tally* tally) {
  const std::string mutated_path = options.dir + "/mutated.laq";

  // 1. Truncations at every structural boundary, and one byte to each
  // side: every "half-written file" shape a crashed writer leaves behind.
  const std::vector<uint64_t> boundaries =
      hepq::laqfuzz::StructuralBoundaries(image);
  const int before_truncations = tally->total;
  for (uint64_t b : boundaries) {
    for (uint64_t size : {b > 0 ? b - 1 : b, b, b + 1}) {
      if (size >= image.bytes.size()) continue;
      CheckMutation(mutated_path, hepq::laqfuzz::TruncateAt(image, size),
                    MutationClass::kStructural,
                    "truncate to " + std::to_string(size) + " bytes", options,
                    tally);
    }
  }
  std::printf("[%s] truncations: %d boundaries, %d files\n", tag,
              static_cast<int>(boundaries.size()),
              tally->total - before_truncations);

  // 2. Targeted footer field mutations under a valid footer CRC.
  const std::vector<FieldMutation> field_mutations =
      hepq::laqfuzz::EnumerateFieldMutations(image);
  for (const FieldMutation& m : field_mutations) {
    CheckMutation(
        mutated_path, hepq::laqfuzz::ApplyFieldMutation(image, m), m.mclass,
        std::string("footer field ") +
            hepq::laqfuzz::MutatedFieldName(m.field) + " of group " +
            std::to_string(m.group) + " leaf " + std::to_string(m.leaf) +
            " := " + std::to_string(m.value),
        options, tally);
  }
  std::printf("[%s] footer field mutations: %d\n", tag,
              static_cast<int>(field_mutations.size()));

  // 3. Seeded bit flips over the whole file.
  hepq::Rng rng(options.seed);
  for (int i = 0; i < options.flips; ++i) {
    const uint64_t offset = rng.NextBelow(image.bytes.size());
    const int bit = static_cast<int>(rng.NextBelow(8));
    CheckMutation(mutated_path, hepq::laqfuzz::FlipBit(image, offset, bit),
                  hepq::laqfuzz::FlipClass(image, offset),
                  "flip bit " + std::to_string(bit) + " of byte " +
                      std::to_string(offset),
                  options, tally);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--seed=", 7) == 0) {
      options.seed = std::strtoull(arg + 7, nullptr, 10);
    } else if (std::strncmp(arg, "--flips=", 8) == 0) {
      options.flips = std::atoi(arg + 8);
    } else if (std::strncmp(arg, "--events=", 9) == 0) {
      options.events = std::atoll(arg + 9);
    } else if (std::strncmp(arg, "--row-group=", 12) == 0) {
      options.row_group = std::atoll(arg + 12);
    } else if (std::strncmp(arg, "--dir=", 6) == 0) {
      options.dir = arg + 6;
    } else if (std::strcmp(arg, "--keep-failures") == 0) {
      options.keep_failures = true;
    } else if (std::strcmp(arg, "--verbose") == 0) {
      options.verbose = true;
    } else if (std::strcmp(arg, "--cache") == 0) {
      options.cache = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--seed=N] [--flips=N] [--events=N] "
                   "[--row-group=N] [--dir=PATH] [--keep-failures] "
                   "[--verbose] [--cache]\n",
                   argv[0]);
      return 2;
    }
  }

  hepq::DatasetSpec spec;
  spec.num_events = options.events;
  spec.row_group_size = options.row_group;
  spec.seed = options.seed;
  auto base = hepq::EnsureDataset(options.dir, spec);
  if (!base.ok()) {
    std::fprintf(stderr, "cannot generate base file: %s\n",
                 base.status().ToString().c_str());
    return 1;
  }
  std::printf("base file: %s\n", base->c_str());

  auto image_result = hepq::laqfuzz::LoadLaqImage(*base);
  if (!image_result.ok()) {
    std::fprintf(stderr, "base file does not load: %s\n",
                 image_result.status().ToString().c_str());
    return 1;
  }
  const LaqImage image = std::move(*image_result);
  std::printf("file size: %zu bytes, %zu row groups, %d leaves\n",
              image.bytes.size(), image.metadata.row_groups.size(),
              image.metadata.num_leaves());

  Tally tally;
  int pristine_failures = CheckPristine(*base);
  SweepImage(image, "classic", options, &tally);

  // The same corpus over the layout-optimized rewrite of the base file,
  // whose chunks carry the dictionary / frame-of-reference encodings; the
  // footer enumeration flips encodings into and out of kDict/kFor, so
  // this pass is what exercises the defensive decode kernels end to end.
  auto optimized = hepq::EnsureOptimizedDataset(options.dir, spec);
  if (!optimized.ok()) {
    std::fprintf(stderr, "cannot optimize base file: %s\n",
                 optimized.status().ToString().c_str());
    return 1;
  }
  auto optimized_image = hepq::laqfuzz::LoadLaqImage(*optimized);
  if (!optimized_image.ok()) {
    std::fprintf(stderr, "optimized file does not load: %s\n",
                 optimized_image.status().ToString().c_str());
    return 1;
  }
  bool has_advanced = false;
  for (const hepq::RowGroupMeta& rg :
       optimized_image->metadata.row_groups) {
    for (const hepq::ChunkMeta& chunk : rg.chunks) {
      if (chunk.encoding == hepq::Encoding::kDict ||
          chunk.encoding == hepq::Encoding::kFor) {
        has_advanced = true;
      }
    }
  }
  if (!has_advanced) {
    std::fprintf(stderr,
                 "optimized file carries no dict/for chunks; the advanced "
                 "sweep would not cover the new decoders\n");
    return 1;
  }
  std::printf("optimized file: %s (%zu bytes)\n", optimized->c_str(),
              optimized_image->bytes.size());
  pristine_failures += CheckPristine(*optimized);
  SweepImage(*optimized_image, "advanced", options, &tally);

  int poison_failures = 0;
  if (options.cache) {
    poison_failures = CheckCachePoisoning(image, options) +
                      CheckCachePoisoning(*optimized_image, options);
  }

  std::printf(
      "\n%d mutated files: %d structural, %d checksummed, %d best-effort "
      "(%d read OK)\n",
      tally.total, tally.structural, tally.checksummed, tally.best_effort,
      tally.best_effort_survived);
  if (options.cache) {
    std::printf("cache determinism: %d/%d mutations reported identical "
                "first errors cache-on vs cache-off\n",
                tally.total - tally.cache_mismatches, tally.total);
  }
  if (tally.failures > 0 || pristine_failures > 0 || poison_failures > 0) {
    std::fprintf(stderr,
                 "%d corruption failures, %d pristine failures, "
                 "%d cache-poisoning failures\n",
                 tally.failures, pristine_failures, poison_failures);
    return 1;
  }
  std::printf("all mutations handled safely; pristine reads bit-identical\n");
  return 0;
}
