# Empty dependencies file for fig3_multiplicity.
# This may be replaced when dependencies are built.
