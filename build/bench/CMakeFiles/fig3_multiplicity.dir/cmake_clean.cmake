file(REMOVE_RECURSE
  "CMakeFiles/fig3_multiplicity.dir/fig3_multiplicity.cc.o"
  "CMakeFiles/fig3_multiplicity.dir/fig3_multiplicity.cc.o.d"
  "fig3_multiplicity"
  "fig3_multiplicity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_multiplicity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
