# Empty dependencies file for fig4_compute_io.
# This may be replaced when dependencies are built.
