file(REMOVE_RECURSE
  "CMakeFiles/fig4_compute_io.dir/fig4_compute_io.cc.o"
  "CMakeFiles/fig4_compute_io.dir/fig4_compute_io.cc.o.d"
  "fig4_compute_io"
  "fig4_compute_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_compute_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
