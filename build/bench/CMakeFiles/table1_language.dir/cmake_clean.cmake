file(REMOVE_RECURSE
  "CMakeFiles/table1_language.dir/table1_language.cc.o"
  "CMakeFiles/table1_language.dir/table1_language.cc.o.d"
  "table1_language"
  "table1_language.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_language.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
