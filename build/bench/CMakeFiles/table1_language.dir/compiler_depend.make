# Empty compiler generated dependencies file for table1_language.
# This may be replaced when dependencies are built.
