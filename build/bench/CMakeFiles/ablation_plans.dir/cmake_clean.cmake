file(REMOVE_RECURSE
  "CMakeFiles/ablation_plans.dir/ablation_plans.cc.o"
  "CMakeFiles/ablation_plans.dir/ablation_plans.cc.o.d"
  "ablation_plans"
  "ablation_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
