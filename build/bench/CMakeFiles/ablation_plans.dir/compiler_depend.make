# Empty compiler generated dependencies file for ablation_plans.
# This may be replaced when dependencies are built.
