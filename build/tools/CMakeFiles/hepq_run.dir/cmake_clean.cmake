file(REMOVE_RECURSE
  "CMakeFiles/hepq_run.dir/hepq_run.cc.o"
  "CMakeFiles/hepq_run.dir/hepq_run.cc.o.d"
  "hepq_run"
  "hepq_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
