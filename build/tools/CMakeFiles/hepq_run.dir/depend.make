# Empty dependencies file for hepq_run.
# This may be replaced when dependencies are built.
