file(REMOVE_RECURSE
  "CMakeFiles/laq_inspect.dir/laq_inspect.cc.o"
  "CMakeFiles/laq_inspect.dir/laq_inspect.cc.o.d"
  "laq_inspect"
  "laq_inspect.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/laq_inspect.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
