# Empty compiler generated dependencies file for laq_inspect.
# This may be replaced when dependencies are built.
