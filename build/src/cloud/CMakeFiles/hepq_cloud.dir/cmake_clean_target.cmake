file(REMOVE_RECURSE
  "libhepq_cloud.a"
)
