# Empty compiler generated dependencies file for hepq_cloud.
# This may be replaced when dependencies are built.
