file(REMOVE_RECURSE
  "CMakeFiles/hepq_cloud.dir/instances.cc.o"
  "CMakeFiles/hepq_cloud.dir/instances.cc.o.d"
  "CMakeFiles/hepq_cloud.dir/simulator.cc.o"
  "CMakeFiles/hepq_cloud.dir/simulator.cc.o.d"
  "libhepq_cloud.a"
  "libhepq_cloud.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_cloud.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
