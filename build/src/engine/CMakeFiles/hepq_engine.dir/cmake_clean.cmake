file(REMOVE_RECURSE
  "CMakeFiles/hepq_engine.dir/context.cc.o"
  "CMakeFiles/hepq_engine.dir/context.cc.o.d"
  "CMakeFiles/hepq_engine.dir/event_query.cc.o"
  "CMakeFiles/hepq_engine.dir/event_query.cc.o.d"
  "CMakeFiles/hepq_engine.dir/expr.cc.o"
  "CMakeFiles/hepq_engine.dir/expr.cc.o.d"
  "CMakeFiles/hepq_engine.dir/flat.cc.o"
  "CMakeFiles/hepq_engine.dir/flat.cc.o.d"
  "libhepq_engine.a"
  "libhepq_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
