# Empty compiler generated dependencies file for hepq_engine.
# This may be replaced when dependencies are built.
