file(REMOVE_RECURSE
  "libhepq_engine.a"
)
