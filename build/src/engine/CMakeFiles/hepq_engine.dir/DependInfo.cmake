
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/context.cc" "src/engine/CMakeFiles/hepq_engine.dir/context.cc.o" "gcc" "src/engine/CMakeFiles/hepq_engine.dir/context.cc.o.d"
  "/root/repo/src/engine/event_query.cc" "src/engine/CMakeFiles/hepq_engine.dir/event_query.cc.o" "gcc" "src/engine/CMakeFiles/hepq_engine.dir/event_query.cc.o.d"
  "/root/repo/src/engine/expr.cc" "src/engine/CMakeFiles/hepq_engine.dir/expr.cc.o" "gcc" "src/engine/CMakeFiles/hepq_engine.dir/expr.cc.o.d"
  "/root/repo/src/engine/flat.cc" "src/engine/CMakeFiles/hepq_engine.dir/flat.cc.o" "gcc" "src/engine/CMakeFiles/hepq_engine.dir/flat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fileio/CMakeFiles/hepq_fileio.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/hepq_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hepq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
