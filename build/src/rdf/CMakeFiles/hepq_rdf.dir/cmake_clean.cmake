file(REMOVE_RECURSE
  "CMakeFiles/hepq_rdf.dir/rdf.cc.o"
  "CMakeFiles/hepq_rdf.dir/rdf.cc.o.d"
  "libhepq_rdf.a"
  "libhepq_rdf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_rdf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
