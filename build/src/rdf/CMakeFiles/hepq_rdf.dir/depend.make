# Empty dependencies file for hepq_rdf.
# This may be replaced when dependencies are built.
