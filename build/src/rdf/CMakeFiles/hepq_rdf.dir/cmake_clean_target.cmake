file(REMOVE_RECURSE
  "libhepq_rdf.a"
)
