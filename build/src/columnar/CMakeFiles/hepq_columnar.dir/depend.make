# Empty dependencies file for hepq_columnar.
# This may be replaced when dependencies are built.
