
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/columnar/array.cc" "src/columnar/CMakeFiles/hepq_columnar.dir/array.cc.o" "gcc" "src/columnar/CMakeFiles/hepq_columnar.dir/array.cc.o.d"
  "/root/repo/src/columnar/builder.cc" "src/columnar/CMakeFiles/hepq_columnar.dir/builder.cc.o" "gcc" "src/columnar/CMakeFiles/hepq_columnar.dir/builder.cc.o.d"
  "/root/repo/src/columnar/types.cc" "src/columnar/CMakeFiles/hepq_columnar.dir/types.cc.o" "gcc" "src/columnar/CMakeFiles/hepq_columnar.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hepq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
