file(REMOVE_RECURSE
  "CMakeFiles/hepq_columnar.dir/array.cc.o"
  "CMakeFiles/hepq_columnar.dir/array.cc.o.d"
  "CMakeFiles/hepq_columnar.dir/builder.cc.o"
  "CMakeFiles/hepq_columnar.dir/builder.cc.o.d"
  "CMakeFiles/hepq_columnar.dir/types.cc.o"
  "CMakeFiles/hepq_columnar.dir/types.cc.o.d"
  "libhepq_columnar.a"
  "libhepq_columnar.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_columnar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
