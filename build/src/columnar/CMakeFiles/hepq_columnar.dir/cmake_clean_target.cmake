file(REMOVE_RECURSE
  "libhepq_columnar.a"
)
