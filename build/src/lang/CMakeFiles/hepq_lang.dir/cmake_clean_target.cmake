file(REMOVE_RECURSE
  "libhepq_lang.a"
)
