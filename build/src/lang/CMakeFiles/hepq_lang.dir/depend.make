# Empty dependencies file for hepq_lang.
# This may be replaced when dependencies are built.
