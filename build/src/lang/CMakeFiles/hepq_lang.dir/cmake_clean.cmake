file(REMOVE_RECURSE
  "CMakeFiles/hepq_lang.dir/corpus.cc.o"
  "CMakeFiles/hepq_lang.dir/corpus.cc.o.d"
  "CMakeFiles/hepq_lang.dir/corpus_athena.cc.o"
  "CMakeFiles/hepq_lang.dir/corpus_athena.cc.o.d"
  "CMakeFiles/hepq_lang.dir/features.cc.o"
  "CMakeFiles/hepq_lang.dir/features.cc.o.d"
  "CMakeFiles/hepq_lang.dir/metrics.cc.o"
  "CMakeFiles/hepq_lang.dir/metrics.cc.o.d"
  "libhepq_lang.a"
  "libhepq_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
