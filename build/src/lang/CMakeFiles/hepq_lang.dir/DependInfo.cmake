
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/corpus.cc" "src/lang/CMakeFiles/hepq_lang.dir/corpus.cc.o" "gcc" "src/lang/CMakeFiles/hepq_lang.dir/corpus.cc.o.d"
  "/root/repo/src/lang/corpus_athena.cc" "src/lang/CMakeFiles/hepq_lang.dir/corpus_athena.cc.o" "gcc" "src/lang/CMakeFiles/hepq_lang.dir/corpus_athena.cc.o.d"
  "/root/repo/src/lang/features.cc" "src/lang/CMakeFiles/hepq_lang.dir/features.cc.o" "gcc" "src/lang/CMakeFiles/hepq_lang.dir/features.cc.o.d"
  "/root/repo/src/lang/metrics.cc" "src/lang/CMakeFiles/hepq_lang.dir/metrics.cc.o" "gcc" "src/lang/CMakeFiles/hepq_lang.dir/metrics.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hepq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
