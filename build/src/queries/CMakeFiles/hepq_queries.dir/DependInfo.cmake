
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/queries/adl.cc" "src/queries/CMakeFiles/hepq_queries.dir/adl.cc.o" "gcc" "src/queries/CMakeFiles/hepq_queries.dir/adl.cc.o.d"
  "/root/repo/src/queries/bq_queries.cc" "src/queries/CMakeFiles/hepq_queries.dir/bq_queries.cc.o" "gcc" "src/queries/CMakeFiles/hepq_queries.dir/bq_queries.cc.o.d"
  "/root/repo/src/queries/doc_queries.cc" "src/queries/CMakeFiles/hepq_queries.dir/doc_queries.cc.o" "gcc" "src/queries/CMakeFiles/hepq_queries.dir/doc_queries.cc.o.d"
  "/root/repo/src/queries/presto_queries.cc" "src/queries/CMakeFiles/hepq_queries.dir/presto_queries.cc.o" "gcc" "src/queries/CMakeFiles/hepq_queries.dir/presto_queries.cc.o.d"
  "/root/repo/src/queries/rdf_queries.cc" "src/queries/CMakeFiles/hepq_queries.dir/rdf_queries.cc.o" "gcc" "src/queries/CMakeFiles/hepq_queries.dir/rdf_queries.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rdf/CMakeFiles/hepq_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hepq_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/hepq_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/fileio/CMakeFiles/hepq_fileio.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hepq_core.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/hepq_columnar.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
