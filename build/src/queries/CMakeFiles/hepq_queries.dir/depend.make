# Empty dependencies file for hepq_queries.
# This may be replaced when dependencies are built.
