file(REMOVE_RECURSE
  "CMakeFiles/hepq_queries.dir/adl.cc.o"
  "CMakeFiles/hepq_queries.dir/adl.cc.o.d"
  "CMakeFiles/hepq_queries.dir/bq_queries.cc.o"
  "CMakeFiles/hepq_queries.dir/bq_queries.cc.o.d"
  "CMakeFiles/hepq_queries.dir/doc_queries.cc.o"
  "CMakeFiles/hepq_queries.dir/doc_queries.cc.o.d"
  "CMakeFiles/hepq_queries.dir/presto_queries.cc.o"
  "CMakeFiles/hepq_queries.dir/presto_queries.cc.o.d"
  "CMakeFiles/hepq_queries.dir/rdf_queries.cc.o"
  "CMakeFiles/hepq_queries.dir/rdf_queries.cc.o.d"
  "libhepq_queries.a"
  "libhepq_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
