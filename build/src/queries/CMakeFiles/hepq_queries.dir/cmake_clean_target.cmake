file(REMOVE_RECURSE
  "libhepq_queries.a"
)
