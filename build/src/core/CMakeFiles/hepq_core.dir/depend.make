# Empty dependencies file for hepq_core.
# This may be replaced when dependencies are built.
