file(REMOVE_RECURSE
  "libhepq_core.a"
)
