
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/fourvector.cc" "src/core/CMakeFiles/hepq_core.dir/fourvector.cc.o" "gcc" "src/core/CMakeFiles/hepq_core.dir/fourvector.cc.o.d"
  "/root/repo/src/core/histogram.cc" "src/core/CMakeFiles/hepq_core.dir/histogram.cc.o" "gcc" "src/core/CMakeFiles/hepq_core.dir/histogram.cc.o.d"
  "/root/repo/src/core/physics.cc" "src/core/CMakeFiles/hepq_core.dir/physics.cc.o" "gcc" "src/core/CMakeFiles/hepq_core.dir/physics.cc.o.d"
  "/root/repo/src/core/rng.cc" "src/core/CMakeFiles/hepq_core.dir/rng.cc.o" "gcc" "src/core/CMakeFiles/hepq_core.dir/rng.cc.o.d"
  "/root/repo/src/core/status.cc" "src/core/CMakeFiles/hepq_core.dir/status.cc.o" "gcc" "src/core/CMakeFiles/hepq_core.dir/status.cc.o.d"
  "/root/repo/src/core/stopwatch.cc" "src/core/CMakeFiles/hepq_core.dir/stopwatch.cc.o" "gcc" "src/core/CMakeFiles/hepq_core.dir/stopwatch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
