file(REMOVE_RECURSE
  "CMakeFiles/hepq_core.dir/fourvector.cc.o"
  "CMakeFiles/hepq_core.dir/fourvector.cc.o.d"
  "CMakeFiles/hepq_core.dir/histogram.cc.o"
  "CMakeFiles/hepq_core.dir/histogram.cc.o.d"
  "CMakeFiles/hepq_core.dir/physics.cc.o"
  "CMakeFiles/hepq_core.dir/physics.cc.o.d"
  "CMakeFiles/hepq_core.dir/rng.cc.o"
  "CMakeFiles/hepq_core.dir/rng.cc.o.d"
  "CMakeFiles/hepq_core.dir/status.cc.o"
  "CMakeFiles/hepq_core.dir/status.cc.o.d"
  "CMakeFiles/hepq_core.dir/stopwatch.cc.o"
  "CMakeFiles/hepq_core.dir/stopwatch.cc.o.d"
  "libhepq_core.a"
  "libhepq_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
