# Empty compiler generated dependencies file for hepq_doc.
# This may be replaced when dependencies are built.
