file(REMOVE_RECURSE
  "libhepq_doc.a"
)
