
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/doc/ast.cc" "src/doc/CMakeFiles/hepq_doc.dir/ast.cc.o" "gcc" "src/doc/CMakeFiles/hepq_doc.dir/ast.cc.o.d"
  "/root/repo/src/doc/convert.cc" "src/doc/CMakeFiles/hepq_doc.dir/convert.cc.o" "gcc" "src/doc/CMakeFiles/hepq_doc.dir/convert.cc.o.d"
  "/root/repo/src/doc/functions.cc" "src/doc/CMakeFiles/hepq_doc.dir/functions.cc.o" "gcc" "src/doc/CMakeFiles/hepq_doc.dir/functions.cc.o.d"
  "/root/repo/src/doc/item.cc" "src/doc/CMakeFiles/hepq_doc.dir/item.cc.o" "gcc" "src/doc/CMakeFiles/hepq_doc.dir/item.cc.o.d"
  "/root/repo/src/doc/runner.cc" "src/doc/CMakeFiles/hepq_doc.dir/runner.cc.o" "gcc" "src/doc/CMakeFiles/hepq_doc.dir/runner.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fileio/CMakeFiles/hepq_fileio.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/hepq_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hepq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
