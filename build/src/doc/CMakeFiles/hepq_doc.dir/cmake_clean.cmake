file(REMOVE_RECURSE
  "CMakeFiles/hepq_doc.dir/ast.cc.o"
  "CMakeFiles/hepq_doc.dir/ast.cc.o.d"
  "CMakeFiles/hepq_doc.dir/convert.cc.o"
  "CMakeFiles/hepq_doc.dir/convert.cc.o.d"
  "CMakeFiles/hepq_doc.dir/functions.cc.o"
  "CMakeFiles/hepq_doc.dir/functions.cc.o.d"
  "CMakeFiles/hepq_doc.dir/item.cc.o"
  "CMakeFiles/hepq_doc.dir/item.cc.o.d"
  "CMakeFiles/hepq_doc.dir/runner.cc.o"
  "CMakeFiles/hepq_doc.dir/runner.cc.o.d"
  "libhepq_doc.a"
  "libhepq_doc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_doc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
