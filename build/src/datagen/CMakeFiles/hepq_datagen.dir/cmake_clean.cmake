file(REMOVE_RECURSE
  "CMakeFiles/hepq_datagen.dir/dataset.cc.o"
  "CMakeFiles/hepq_datagen.dir/dataset.cc.o.d"
  "CMakeFiles/hepq_datagen.dir/generator.cc.o"
  "CMakeFiles/hepq_datagen.dir/generator.cc.o.d"
  "CMakeFiles/hepq_datagen.dir/root_layout.cc.o"
  "CMakeFiles/hepq_datagen.dir/root_layout.cc.o.d"
  "libhepq_datagen.a"
  "libhepq_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
