# Empty dependencies file for hepq_datagen.
# This may be replaced when dependencies are built.
