file(REMOVE_RECURSE
  "libhepq_datagen.a"
)
