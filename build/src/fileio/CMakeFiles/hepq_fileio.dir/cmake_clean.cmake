file(REMOVE_RECURSE
  "CMakeFiles/hepq_fileio.dir/compression.cc.o"
  "CMakeFiles/hepq_fileio.dir/compression.cc.o.d"
  "CMakeFiles/hepq_fileio.dir/crc32.cc.o"
  "CMakeFiles/hepq_fileio.dir/crc32.cc.o.d"
  "CMakeFiles/hepq_fileio.dir/dataset_reader.cc.o"
  "CMakeFiles/hepq_fileio.dir/dataset_reader.cc.o.d"
  "CMakeFiles/hepq_fileio.dir/encoding.cc.o"
  "CMakeFiles/hepq_fileio.dir/encoding.cc.o.d"
  "CMakeFiles/hepq_fileio.dir/format.cc.o"
  "CMakeFiles/hepq_fileio.dir/format.cc.o.d"
  "CMakeFiles/hepq_fileio.dir/reader.cc.o"
  "CMakeFiles/hepq_fileio.dir/reader.cc.o.d"
  "CMakeFiles/hepq_fileio.dir/varint.cc.o"
  "CMakeFiles/hepq_fileio.dir/varint.cc.o.d"
  "CMakeFiles/hepq_fileio.dir/writer.cc.o"
  "CMakeFiles/hepq_fileio.dir/writer.cc.o.d"
  "libhepq_fileio.a"
  "libhepq_fileio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hepq_fileio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
