
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fileio/compression.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/compression.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/compression.cc.o.d"
  "/root/repo/src/fileio/crc32.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/crc32.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/crc32.cc.o.d"
  "/root/repo/src/fileio/dataset_reader.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/dataset_reader.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/dataset_reader.cc.o.d"
  "/root/repo/src/fileio/encoding.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/encoding.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/encoding.cc.o.d"
  "/root/repo/src/fileio/format.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/format.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/format.cc.o.d"
  "/root/repo/src/fileio/reader.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/reader.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/reader.cc.o.d"
  "/root/repo/src/fileio/varint.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/varint.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/varint.cc.o.d"
  "/root/repo/src/fileio/writer.cc" "src/fileio/CMakeFiles/hepq_fileio.dir/writer.cc.o" "gcc" "src/fileio/CMakeFiles/hepq_fileio.dir/writer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/columnar/CMakeFiles/hepq_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hepq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
