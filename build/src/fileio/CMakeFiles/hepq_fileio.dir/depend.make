# Empty dependencies file for hepq_fileio.
# This may be replaced when dependencies are built.
