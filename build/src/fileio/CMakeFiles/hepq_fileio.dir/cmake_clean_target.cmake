file(REMOVE_RECURSE
  "libhepq_fileio.a"
)
