# CMake generated Testfile for 
# Source directory: /root/repo/src/fileio
# Build directory: /root/repo/build/src/fileio
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
