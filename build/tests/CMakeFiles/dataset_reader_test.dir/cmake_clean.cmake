file(REMOVE_RECURSE
  "CMakeFiles/dataset_reader_test.dir/dataset_reader_test.cc.o"
  "CMakeFiles/dataset_reader_test.dir/dataset_reader_test.cc.o.d"
  "dataset_reader_test"
  "dataset_reader_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataset_reader_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
