# Empty dependencies file for dataset_reader_test.
# This may be replaced when dependencies are built.
