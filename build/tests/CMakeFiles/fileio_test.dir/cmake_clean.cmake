file(REMOVE_RECURSE
  "CMakeFiles/fileio_test.dir/fileio_test.cc.o"
  "CMakeFiles/fileio_test.dir/fileio_test.cc.o.d"
  "fileio_test"
  "fileio_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fileio_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
