# Empty dependencies file for fileio_test.
# This may be replaced when dependencies are built.
