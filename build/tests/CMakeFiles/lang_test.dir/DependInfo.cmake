
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang_test.cc" "tests/CMakeFiles/lang_test.dir/lang_test.cc.o" "gcc" "tests/CMakeFiles/lang_test.dir/lang_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/queries/CMakeFiles/hepq_queries.dir/DependInfo.cmake"
  "/root/repo/build/src/cloud/CMakeFiles/hepq_cloud.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/hepq_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rdf/CMakeFiles/hepq_rdf.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/hepq_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/doc/CMakeFiles/hepq_doc.dir/DependInfo.cmake"
  "/root/repo/build/src/datagen/CMakeFiles/hepq_datagen.dir/DependInfo.cmake"
  "/root/repo/build/src/fileio/CMakeFiles/hepq_fileio.dir/DependInfo.cmake"
  "/root/repo/build/src/columnar/CMakeFiles/hepq_columnar.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hepq_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
