file(REMOVE_RECURSE
  "CMakeFiles/root_layout_analysis.dir/root_layout_analysis.cpp.o"
  "CMakeFiles/root_layout_analysis.dir/root_layout_analysis.cpp.o.d"
  "root_layout_analysis"
  "root_layout_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_layout_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
