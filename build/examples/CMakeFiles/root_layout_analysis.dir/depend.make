# Empty dependencies file for root_layout_analysis.
# This may be replaced when dependencies are built.
