file(REMOVE_RECURSE
  "CMakeFiles/trijet_search.dir/trijet_search.cpp.o"
  "CMakeFiles/trijet_search.dir/trijet_search.cpp.o.d"
  "trijet_search"
  "trijet_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trijet_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
