# Empty dependencies file for trijet_search.
# This may be replaced when dependencies are built.
