# Empty dependencies file for dimuon_spectrum.
# This may be replaced when dependencies are built.
