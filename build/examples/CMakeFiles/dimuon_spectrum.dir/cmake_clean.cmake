file(REMOVE_RECURSE
  "CMakeFiles/dimuon_spectrum.dir/dimuon_spectrum.cpp.o"
  "CMakeFiles/dimuon_spectrum.dir/dimuon_spectrum.cpp.o.d"
  "dimuon_spectrum"
  "dimuon_spectrum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dimuon_spectrum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
