#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "datagen/dataset.h"
#include "engine/event_query.h"
#include "engine/flat.h"
#include "fileio/writer.h"

namespace hepq::engine {
namespace {

/// Two-event batch:
///   event 0: MET.pt = 25; jets (pt, q): (50, 1), (10, -1), (45, 1)
///   event 1: MET.pt = 60; jets: (20, -1)
RecordBatchPtr TinyBatch() {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
      {"Jet", DataType::List(DataType::Struct(
                  {{"pt", DataType::Float32()},
                   {"charge", DataType::Int32()}}))},
  });
  auto met = StructArray::Make({{"pt", DataType::Float32()}},
                               {MakeFloat32Array({25.0f, 60.0f})})
                 .ValueOrDie();
  auto jets = MakeListOfStructArray(
                  {{"pt", DataType::Float32()},
                   {"charge", DataType::Int32()}},
                  {0, 3, 4},
                  {MakeFloat32Array({50, 10, 45, 20}),
                   MakeInt32Array({1, -1, 1, -1})})
                  .ValueOrDie();
  return RecordBatch::Make(schema, {met, jets}).ValueOrDie();
}

class ExprTest : public ::testing::Test {
 protected:
  void SetUp() override {
    batch_ = TinyBatch();
    bindings_ = std::make_unique<BatchBindings>(
        BatchBindings::Bind(*batch_, {{"Jet", {"pt", "charge"}, {}}},
                            {{"MET.pt"}})
            .ValueOrDie());
    ctx_.bindings = bindings_.get();
  }

  double Eval(const ExprPtr& e, uint32_t row) {
    ctx_.row = row;
    return e->Eval(&ctx_);
  }

  RecordBatchPtr batch_;
  std::unique_ptr<BatchBindings> bindings_;
  EvalContext ctx_;
};

TEST_F(ExprTest, LiteralsAndScalars) {
  EXPECT_DOUBLE_EQ(Eval(Lit(3.5), 0), 3.5);
  EXPECT_DOUBLE_EQ(Eval(ScalarRef(0), 0), 25.0);
  EXPECT_DOUBLE_EQ(Eval(ScalarRef(0), 1), 60.0);
}

TEST_F(ExprTest, BinaryOperators) {
  EXPECT_DOUBLE_EQ(Eval(Add(Lit(2), Lit(3)), 0), 5.0);
  EXPECT_DOUBLE_EQ(Eval(Sub(Lit(2), Lit(3)), 0), -1.0);
  EXPECT_DOUBLE_EQ(Eval(Mul(Lit(2), Lit(3)), 0), 6.0);
  EXPECT_DOUBLE_EQ(Eval(Bin(BinOp::kDiv, Lit(3), Lit(2)), 0), 1.5);
  EXPECT_DOUBLE_EQ(Eval(Lt(Lit(1), Lit(2)), 0), 1.0);
  EXPECT_DOUBLE_EQ(Eval(Ge(Lit(2), Lit(2)), 0), 1.0);
  EXPECT_DOUBLE_EQ(Eval(Eq(Lit(2), Lit(3)), 0), 0.0);
  EXPECT_DOUBLE_EQ(Eval(And(Lit(1), Lit(0)), 0), 0.0);
  EXPECT_DOUBLE_EQ(Eval(Or(Lit(1), Lit(0)), 0), 1.0);
  EXPECT_DOUBLE_EQ(Eval(Not(Lit(0)), 0), 1.0);
}

TEST_F(ExprTest, ListSizeAndAggregates) {
  EXPECT_DOUBLE_EQ(Eval(ListSize(0), 0), 3.0);
  EXPECT_DOUBLE_EQ(Eval(ListSize(0), 1), 1.0);
  // count jets with pt > 40
  const ExprPtr count = AggOverList(
      AggKind::kCount, 0, 0, Gt(IterMember(0, 0, 0), Lit(40.0)), nullptr);
  EXPECT_DOUBLE_EQ(Eval(count, 0), 2.0);
  EXPECT_DOUBLE_EQ(Eval(count, 1), 0.0);
  // sum of all pts
  const ExprPtr sum =
      AggOverList(AggKind::kSum, 0, 0, nullptr, IterMember(0, 0, 0));
  EXPECT_DOUBLE_EQ(Eval(sum, 0), 105.0);
  // min / max
  EXPECT_DOUBLE_EQ(
      Eval(AggOverList(AggKind::kMin, 0, 0, nullptr, IterMember(0, 0, 0)),
           0),
      10.0);
  EXPECT_DOUBLE_EQ(
      Eval(AggOverList(AggKind::kMax, 0, 0, nullptr, IterMember(0, 0, 0)),
           0),
      50.0);
  // any with negative charge
  EXPECT_DOUBLE_EQ(
      Eval(AggOverList(AggKind::kAny, 0, 0,
                       Lt(IterMember(0, 0, 1), Lit(0.0)), nullptr),
           0),
      1.0);
}

TEST_F(ExprTest, OpsCounterCountsElementVisits) {
  ctx_.ops = 0;
  Eval(AggOverList(AggKind::kCount, 0, 0, nullptr, nullptr), 0);
  EXPECT_EQ(ctx_.ops, 3u);
}

TEST_F(ExprTest, AnyCombinationFindsOppositeChargePair) {
  // Pair of jets with opposite charge and both pt > 15.
  const ExprPtr any = AnyCombination(
      {{0, 0}, {0, 1}},
      And(Ne(IterMember(0, 0, 1), IterMember(0, 1, 1)),
          And(Gt(IterMember(0, 0, 0), Lit(15.0)),
              Gt(IterMember(0, 1, 0), Lit(15.0)))));
  // Event 0 pairs: (50,10) q opp but 10<15; (50,45) same q; (10,45) opp but
  // 10 < 15 -> no match.
  EXPECT_DOUBLE_EQ(Eval(any, 0), 0.0);
  EXPECT_DOUBLE_EQ(Eval(any, 1), 0.0);  // single jet, no pair
}

TEST_F(ExprTest, SymmetricCombinationCount) {
  ctx_.ops = 0;
  ctx_.row = 0;
  const ExprPtr all_pairs = AnyCombination({{0, 0}, {0, 1}}, Lit(0.0));
  EXPECT_DOUBLE_EQ(all_pairs->Eval(&ctx_), 0.0);
  EXPECT_EQ(ctx_.ops, 3u);  // C(3,2) pairs explored
}

TEST_F(ExprTest, BestCombinationBindsWinningPair) {
  // Pair with the largest pt sum: maximize = minimize negated sum.
  const ExprPtr best = BestCombination(
      {{0, 0}, {0, 1}}, nullptr,
      Sub(Lit(0.0), Add(IterMember(0, 0, 0), IterMember(0, 1, 0))));
  ctx_.row = 0;
  ASSERT_DOUBLE_EQ(best->Eval(&ctx_), 1.0);
  // Winners: jets 0 (pt 50) and 2 (pt 45).
  EXPECT_DOUBLE_EQ(IterMember(0, 0, 0)->Eval(&ctx_), 50.0);
  EXPECT_DOUBLE_EQ(IterMember(0, 1, 0)->Eval(&ctx_), 45.0);
  EXPECT_DOUBLE_EQ(IterOrdinal(0, 0)->Eval(&ctx_), 0.0);
  EXPECT_DOUBLE_EQ(IterOrdinal(0, 1)->Eval(&ctx_), 2.0);
}

TEST_F(ExprTest, BestCombinationRespectsFilter) {
  const ExprPtr best =
      BestCombination({{0, 0}, {0, 1}}, Lit(0.0), Lit(1.0));
  ctx_.row = 0;
  EXPECT_DOUBLE_EQ(best->Eval(&ctx_), 0.0);  // filter rejects everything
}

TEST_F(ExprTest, BestElementPicksExtremum) {
  const ExprPtr best =
      BestElement(0, 2, nullptr, Sub(Lit(0.0), IterMember(0, 2, 0)));
  ctx_.row = 0;
  ASSERT_DOUBLE_EQ(best->Eval(&ctx_), 1.0);
  EXPECT_DOUBLE_EQ(IterMember(0, 2, 0)->Eval(&ctx_), 50.0);
}

TEST_F(ExprTest, PhysicsFunctions) {
  EXPECT_NEAR(Eval(Call(Fn::kDeltaPhi, {Lit(0.5), Lit(0.2)}), 0), 0.3,
              1e-12);
  EXPECT_NEAR(Eval(Call(Fn::kInvMass2,
                        {Lit(40), Lit(0), Lit(0), Lit(0), Lit(40), Lit(0),
                         Lit(M_PI), Lit(0)}),
                   0),
              80.0, 1e-9);
  EXPECT_NEAR(Eval(Call(Fn::kTransverseMass,
                        {Lit(25), Lit(0), Lit(25), Lit(M_PI)}),
                   0),
              50.0, 1e-9);
}

TEST(BindingsTest, ErrorsOnUnknownColumnsAndMembers) {
  auto batch = TinyBatch();
  EXPECT_FALSE(BatchBindings::Bind(*batch, {{"Nope", {"pt"}, {}}}, {}).ok());
  EXPECT_FALSE(
      BatchBindings::Bind(*batch, {{"Jet", {"nope"}, {}}}, {}).ok());
  EXPECT_FALSE(BatchBindings::Bind(*batch, {{"MET", {"pt"}, {}}}, {}).ok());
  EXPECT_FALSE(BatchBindings::Bind(*batch, {}, {{"nope"}}).ok());
  EXPECT_FALSE(BatchBindings::Bind(*batch, {}, {{"MET.nope"}}).ok());
}

TEST(BindingsTest, UnionListConcatenatesSources) {
  auto batch = TinyBatch();
  // Union of Jet with itself, tagging the copies 0 / 1.
  auto bindings =
      BatchBindings::Bind(*batch,
                          {{"Both",
                            {"pt", "tag"},
                            {UnionSource{"Jet", {"pt"}, 0.0},
                             UnionSource{"Jet", {"pt"}, 1.0}}}},
                          {})
          .ValueOrDie();
  const ListBinding& both = bindings.list(0);
  EXPECT_EQ(both.size(0), 6u);
  EXPECT_EQ(both.size(1), 2u);
  // First three from copy 0, next three from copy 1.
  EXPECT_DOUBLE_EQ(both.members[0].Get(0), 50.0);
  EXPECT_DOUBLE_EQ(both.members[1].Get(0), 0.0);
  EXPECT_DOUBLE_EQ(both.members[0].Get(3), 50.0);
  EXPECT_DOUBLE_EQ(both.members[1].Get(3), 1.0);
}

// ---------------------------------------------------------------------------
// EventQuery
// ---------------------------------------------------------------------------

TEST(EventQueryTest, GuardAndScalarFill) {
  EventQuery query("test");
  const int jets = query.DeclareList("Jet", {"pt"});
  const int met = query.DeclareScalar("MET.pt");
  query.AddStage(Ge(ListSize(jets), Lit(2.0)));
  query.AddHistogram({"met", "", 10, 0, 100}, ScalarRef(met));
  EventQueryResult result = query.MakeResult();
  ASSERT_TRUE(query.ExecuteBatch(*TinyBatch(), &result).ok());
  EXPECT_EQ(result.events_processed, 2);
  EXPECT_EQ(result.events_selected, 1);  // only event 0 has >= 2 jets
  EXPECT_EQ(result.histograms[0].num_entries(), 1u);
  EXPECT_DOUBLE_EQ(result.histograms[0].mean(), 25.0);
}

TEST(EventQueryTest, PerElementFill) {
  EventQuery query("test");
  const int jets = query.DeclareList("Jet", {"pt"});
  query.AddPerElementHistogram({"pt", "", 10, 0, 100}, jets, 0,
                               Gt(IterMember(jets, 0, 0), Lit(15.0)),
                               IterMember(jets, 0, 0));
  EventQueryResult result = query.MakeResult();
  ASSERT_TRUE(query.ExecuteBatch(*TinyBatch(), &result).ok());
  EXPECT_EQ(result.histograms[0].num_entries(), 3u);  // 50, 45, 20
}

TEST(EventQueryTest, PerCombinationFill) {
  EventQuery query("pairs");
  const int jets = query.DeclareList("Jet", {"pt"});
  // One entry per unordered jet pair, value = pt sum, no filter.
  query.AddPerCombinationHistogram(
      {"pairs", "", 10, 0, 200}, {{jets, 0}, {jets, 1}},
      /*filter=*/nullptr,
      Add(IterMember(jets, 0, 0), IterMember(jets, 1, 0)));
  EventQueryResult result = query.MakeResult();
  ASSERT_TRUE(query.ExecuteBatch(*TinyBatch(), &result).ok());
  // Event 0: C(3,2) = 3 pairs (60, 95, 55); event 1: single jet, none.
  EXPECT_EQ(result.histograms[0].num_entries(), 3u);
  EXPECT_DOUBLE_EQ(result.histograms[0].mean(), 70.0);
}

TEST(EventQueryTest, PerCombinationFillRespectsFilter) {
  EventQuery query("pairs");
  const int jets = query.DeclareList("Jet", {"pt", "charge"});
  query.AddPerCombinationHistogram(
      {"os", "", 10, 0, 200}, {{jets, 0}, {jets, 1}},
      Ne(IterMember(jets, 0, 1), IterMember(jets, 1, 1)),
      Add(IterMember(jets, 0, 0), IterMember(jets, 1, 0)));
  EventQueryResult result = query.MakeResult();
  ASSERT_TRUE(query.ExecuteBatch(*TinyBatch(), &result).ok());
  // Opposite-charge pairs in event 0: (50,10) and (10,45) -> 2 entries.
  EXPECT_EQ(result.histograms[0].num_entries(), 2u);
}

TEST(EventQueryTest, PerCombinationFillCountsOps) {
  EventQuery query("pairs");
  const int jets = query.DeclareList("Jet", {"pt"});
  query.AddPerCombinationHistogram(
      {"pairs", "", 10, 0, 200}, {{jets, 0}, {jets, 1}}, nullptr,
      IterMember(jets, 0, 0));
  EventQueryResult result = query.MakeResult();
  ASSERT_TRUE(query.ExecuteBatch(*TinyBatch(), &result).ok());
  // 2 base accesses + 3 pair evaluations (event 1 has no pair).
  EXPECT_EQ(result.ops, 5u);
}

TEST(EventQueryTest, ProjectionListsDeclaredLeaves) {
  EventQuery query("test");
  query.DeclareList("Jet", {"pt", "eta"});
  query.DeclareScalar("MET.pt");
  EXPECT_EQ(query.Projection(),
            (std::vector<std::string>{"Jet.pt", "Jet.eta", "MET.pt"}));
}

TEST(EventQueryTest, UnionProjectionListsSourceLeaves) {
  EventQuery query("test");
  query.DeclareUnionList("Lepton", {"pt", "flavor"},
                         {UnionSource{"Electron", {"pt"}, 0.0},
                          UnionSource{"Muon", {"pt"}, 1.0}});
  EXPECT_EQ(query.Projection(),
            (std::vector<std::string>{"Electron.pt", "Muon.pt"}));
}

TEST(ExplainTest, ExprToStringRendersTree) {
  EXPECT_EQ(Lit(2.5)->ToString(), "2.5");
  EXPECT_EQ(ScalarRef(1)->ToString(), "scalar1");
  EXPECT_EQ(IterMember(0, 2, 3)->ToString(), "it2.m3");
  EXPECT_EQ(Add(Lit(1), Lit(2))->ToString(), "(1 + 2)");
  EXPECT_EQ(And(Lit(1), Lit(0))->ToString(), "(1 AND 0)");
  EXPECT_EQ(Abs(Lit(-3))->ToString(), "abs(-3)");
  EXPECT_EQ(ListSize(0)->ToString(), "cardinality(list0)");
  EXPECT_EQ(IterOrdinal(0, 1)->ToString(), "ordinal(it1)");
  EXPECT_EQ(AggOverList(AggKind::kCount, 0, 0,
                        Gt(IterMember(0, 0, 0), Lit(40.0)), nullptr)
                ->ToString(),
            "count(list0@it0 where (it0.m0 > 40))");
  EXPECT_EQ(BestCombination({{0, 0}, {0, 1}}, nullptr, Lit(1.0))->ToString(),
            "best_combination(list0@it0, list0@it1 minimize 1)");
  EXPECT_EQ(AnyCombination({{0, 0}}, Lit(1.0))->ToString(),
            "any_combination(list0@it0 where 1)");
}

TEST(ExplainTest, EventQueryExplainListsPlan) {
  EventQuery query("demo");
  const int jets = query.DeclareList("Jet", {"pt"});
  const int met = query.DeclareScalar("MET.pt");
  query.AddStage(Ge(ListSize(jets), Lit(2.0)));
  query.AddHistogram({"met", "", 10, 0, 100}, ScalarRef(met));
  const std::string plan = query.Explain();
  EXPECT_NE(plan.find("EventQuery demo"), std::string::npos);
  EXPECT_NE(plan.find("list0 = Jet"), std::string::npos);
  EXPECT_NE(plan.find("scalar0 = MET.pt"), std::string::npos);
  EXPECT_NE(plan.find("stage 0: (cardinality(list0) >= 2)"),
            std::string::npos);
  EXPECT_NE(plan.find("fill 'met': scalar0"), std::string::npos);
}

TEST(ExplainTest, FlatPipelineExplainListsPlan) {
  FlatPipeline pipeline("demo");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddKeepScalar("MET.pt");
  pipeline.AddFilter(FlatGt(FlatCol("j.pt"), FlatLit(40.0)));
  pipeline.AddAggregate(
      engine::FlatAggSpec{FlatAggKind::kCount, "", "", "n"});
  pipeline.AddHaving(FlatGe(FlatCol("n"), FlatLit(2.0)));
  pipeline.AddHistogram({"met", "", 10, 0, 100}, FlatCol("MET.pt"));
  const std::string plan = pipeline.Explain();
  EXPECT_NE(plan.find("CROSS JOIN UNNEST(Jet) AS j"), std::string::npos);
  EXPECT_NE(plan.find("keep MET.pt"), std::string::npos);
  EXPECT_NE(plan.find("WHERE"), std::string::npos);
  EXPECT_NE(plan.find("GROUP BY event: n"), std::string::npos);
  EXPECT_NE(plan.find("HAVING"), std::string::npos);
}

// ---------------------------------------------------------------------------
// FlatBatch / FlatExpr
// ---------------------------------------------------------------------------

TEST(FlatBatchTest, ColumnLookupAndClear) {
  FlatBatch batch;
  batch.names = {"a", "b"};
  batch.columns = {{1, 2}, {3, 4}};
  batch.num_rows = 2;
  EXPECT_EQ(batch.ColumnIndex("b"), 1);
  EXPECT_EQ(batch.ColumnIndex("z"), -1);
  EXPECT_EQ(batch.NumCells(), 4u);
  batch.Clear();
  EXPECT_EQ(batch.num_rows, 0u);
  EXPECT_TRUE(batch.columns[0].empty());
}

TEST(FlatExprTest, ResolveAndEval) {
  FlatBatch batch;
  batch.names = {"x", "y"};
  batch.columns = {{1, 2, 3}, {10, 20, 30}};
  batch.num_rows = 3;
  auto expr = FlatBin(BinOp::kAdd, FlatCol("x"),
                      FlatBin(BinOp::kMul, FlatCol("y"), FlatLit(2.0)));
  ASSERT_TRUE(expr->Resolve(batch).ok());
  EXPECT_DOUBLE_EQ(expr->Eval(batch, 1), 42.0);
  auto bad = FlatCol("zz");
  EXPECT_FALSE(bad->Resolve(batch).ok());
}

// ---------------------------------------------------------------------------
// Execution determinism through the shared runtime: per-row-group
// accumulator slots merged in ascending group order must make the path-
// based Execute overloads bit-identical for any thread count.
// ---------------------------------------------------------------------------

const std::string& DeterminismDataset() {
  static auto& path = *new std::string(
      EnsureDataset(::testing::TempDir() + "/hepq_engine_det",
                    DatasetSpec{.num_events = 2000, .row_group_size = 500})
          .ValueOrDie());
  return path;
}

void ExpectSameBits(const Histogram1D& a, const Histogram1D& b) {
  EXPECT_EQ(a.num_entries(), b.num_entries());
  EXPECT_EQ(a.sum_weights(), b.sum_weights());
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  for (int i = 0; i < a.spec().num_bins; ++i) {
    EXPECT_EQ(a.BinContent(i), b.BinContent(i)) << "bin " << i;
  }
}

TEST(EventQueryTest, ThreadCountNeverChangesResults) {
  EventQuery query("det");
  const int jets = query.DeclareList("Jet", {"pt"});
  const int met = query.DeclareScalar("MET.pt");
  query.AddStage(Ge(
      AggOverList(AggKind::kCount, jets, 0,
                  Gt(IterMember(jets, 0, 0), Lit(40.0)), nullptr),
      Lit(2.0)));
  query.AddHistogram({"met", "", 100, 0, 200}, ScalarRef(met));
  auto baseline = query.Execute(DeterminismDataset(), ReaderOptions{}, 1);
  ASSERT_TRUE(baseline.ok());
  for (int threads : {2, 4}) {
    auto run = query.Execute(DeterminismDataset(), ReaderOptions{}, threads);
    ASSERT_TRUE(run.ok());
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(run->events_processed, baseline->events_processed);
    EXPECT_EQ(run->events_selected, baseline->events_selected);
    EXPECT_EQ(run->ops, baseline->ops);  // identical Table 2 counters
    EXPECT_EQ(run->scan.storage_bytes, baseline->scan.storage_bytes);
    ExpectSameBits(run->histograms[0], baseline->histograms[0]);
  }
}

/// A data set whose MET.pt values are clustered: group g holds values in
/// [100g, 100(g+1)), sorted within the group so pages carry tight zone
/// maps. Jet.pt rides along as a projected non-predicate column whose
/// decode late materialization can skip entirely for dead groups.
const std::string& ClusteredDataset() {
  static const auto& path = *new std::string([] {
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
        {"Jet", DataType::List(DataType::Struct(
                    {{"pt", DataType::Float32()}}))},
    });
    constexpr int kGroups = 4;
    constexpr int kRows = 256;
    std::vector<RecordBatchPtr> batches;
    for (int g = 0; g < kGroups; ++g) {
      std::vector<float> met(kRows);
      std::vector<uint32_t> offsets(kRows + 1, 0);
      std::vector<float> jet_pt;
      for (int i = 0; i < kRows; ++i) {
        met[static_cast<size_t>(i)] =
            100.0f * g + 100.0f * i / kRows;  // sorted within the group
        jet_pt.push_back(30.0f + i % 20);
        jet_pt.push_back(15.0f + i % 7);
        offsets[static_cast<size_t>(i) + 1] =
            static_cast<uint32_t>(jet_pt.size());
      }
      auto met_col =
          StructArray::Make({{"pt", DataType::Float32()}},
                            {MakeFloat32Array(met)})
              .ValueOrDie();
      auto jets = MakeListOfStructArray({{"pt", DataType::Float32()}},
                                        offsets,
                                        {MakeFloat32Array(jet_pt)})
                      .ValueOrDie();
      batches.push_back(
          RecordBatch::Make(schema, {met_col, jets}).ValueOrDie());
    }
    const std::string p = ::testing::TempDir() + "/clustered.laq";
    WriterOptions options;
    options.row_group_size = kRows;
    options.page_values = 64;  // 4 pages per 256-row chunk
    WriteLaqFile(p, schema, batches, options).Check();
    return p;
  }());
  return path;
}

/// The acceptance check for predicate pushdown + late materialization: a
/// Q2-style selective MET cut must prune at least half the row groups,
/// skip pages inside the straddling group, and decode measurably fewer
/// bytes — with bit-identical histograms and event counters.
TEST(EventQueryTest, ZoneMapPruningDecodesFewerBytes) {
  EventQuery query("selective");
  const int met = query.DeclareScalar("MET.pt");
  query.DeclareList("Jet", {"pt"});
  query.AddStage(Gt(ScalarRef(met), Lit(250.0)));
  query.AddHistogram({"met", "", 100, 0, 400}, ScalarRef(met));

  ReaderOptions with;
  ReaderOptions without;
  without.scan_pushdown = false;
  without.late_materialization = false;
  auto on = query.Execute(ClusteredDataset(), with, 1);
  ASSERT_TRUE(on.ok()) << on.status().ToString();
  auto off = query.Execute(ClusteredDataset(), without, 1);
  ASSERT_TRUE(off.ok()) << off.status().ToString();

  // Groups 0/1 ([0,100) and [100,200)) are disjoint from (250, inf);
  // group 2 straddles 250 so only its trailing pages survive.
  EXPECT_EQ(on->scan.groups_pruned, 2u);
  EXPECT_GE(on->scan.pages_pruned, 2u);
  EXPECT_GT(on->scan.rows_pruned, 0u);
  EXPECT_LT(on->scan.decoded_bytes, off->scan.decoded_bytes);
  EXPECT_EQ(off->scan.groups_pruned, 0u);
  EXPECT_EQ(off->scan.pages_pruned, 0u);

  // Results are bit-identical regardless of pruning.
  EXPECT_EQ(on->events_processed, 1024);
  EXPECT_EQ(off->events_processed, 1024);
  EXPECT_EQ(on->events_selected, off->events_selected);
  ASSERT_EQ(on->histograms.size(), off->histograms.size());
  ExpectSameBits(on->histograms[0], off->histograms[0]);
}

/// Late materialization alone (pushdown on in both runs): disabling it
/// must change decoded bytes only, never any result.
TEST(EventQueryTest, LateMaterializationToggleIsInvisibleInResults) {
  EventQuery query("latemat");
  const int met = query.DeclareScalar("MET.pt");
  query.DeclareList("Jet", {"pt"});
  query.AddStage(Gt(ScalarRef(met), Lit(250.0)));
  query.AddHistogram({"met", "", 100, 0, 400}, ScalarRef(met));

  ReaderOptions eager;
  eager.late_materialization = false;
  auto lazy = query.Execute(ClusteredDataset(), ReaderOptions{}, 1);
  ASSERT_TRUE(lazy.ok());
  auto eager_run = query.Execute(ClusteredDataset(), eager, 1);
  ASSERT_TRUE(eager_run.ok());
  EXPECT_LE(lazy->scan.decoded_bytes, eager_run->scan.decoded_bytes);
  EXPECT_EQ(lazy->events_selected, eager_run->events_selected);
  ExpectSameBits(lazy->histograms[0], eager_run->histograms[0]);
}

TEST(FlatPipelineTest, ThreadCountNeverChangesResults) {
  FlatPipeline pipeline("det_flat");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddKeepScalar("MET.pt");
  pipeline.AddFilter(FlatGt(FlatCol("j.pt"), FlatLit(40.0)));
  pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kCount, "", "", "n_jets"});
  pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kFirst, "MET.pt", "", "met"});
  pipeline.AddHaving(FlatGe(FlatCol("n_jets"), FlatLit(2.0)));
  pipeline.AddHistogram({"met", "", 100, 0, 200}, FlatCol("met"));
  auto baseline = pipeline.Execute(DeterminismDataset(), ReaderOptions{}, 1);
  ASSERT_TRUE(baseline.ok());
  for (int threads : {2, 4}) {
    auto run =
        pipeline.Execute(DeterminismDataset(), ReaderOptions{}, threads);
    ASSERT_TRUE(run.ok());
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(run->events_processed, baseline->events_processed);
    EXPECT_EQ(run->rows_materialized, baseline->rows_materialized);
    EXPECT_EQ(run->cells_materialized, baseline->cells_materialized);
    EXPECT_EQ(run->groups, baseline->groups);
    ExpectSameBits(run->histograms[0], baseline->histograms[0]);
  }
}

}  // namespace
}  // namespace hepq::engine
