// Unit tests for the tracing layer: span nesting and ordering invariants,
// deterministic merges under 1 and 4 runtime workers, counter merging,
// exporter well-formedness, and the zero-allocation hot-path guarantee.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <set>
#include <string>
#include <vector>

#include "exec/exec.h"
#include "obs/report.h"
#include "obs/trace.h"

// ---------------------------------------------------------------------------
// Allocation-counting hook (same shape as bench/micro_kernels.cc): every
// global operator new bumps a counter so the tests below can assert that
// the span hot path allocates nothing — neither when no session is active
// nor, after per-thread warmup, while one is recording.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hepq::obs {
namespace {

TEST(TraceSessionTest, InactiveByDefault) {
  EXPECT_EQ(TraceSession::Active(), nullptr);
  EXPECT_FALSE(TracingActive());
  // Spans and counters are silent no-ops without a session.
  {
    ScopedSpan span("noop", Stage::kOther);
    EXPECT_FALSE(span.active());
    span.set_bytes(1);  // setters must be safe when inactive
    span.End();
    span.End();  // idempotent
  }
  CountStage("noop", Stage::kOther, 1);
}

TEST(TraceSessionTest, StartStopLifecycle) {
  TraceSession session;
  EXPECT_FALSE(session.active());
  session.Start();
  EXPECT_TRUE(session.active());
  EXPECT_TRUE(TracingActive());
  EXPECT_EQ(TraceSession::Active(), &session);
  session.Stop();
  EXPECT_FALSE(session.active());
  EXPECT_EQ(TraceSession::Active(), nullptr);
  session.Stop();  // idempotent
  EXPECT_GE(session.stop_ns(), session.start_ns());
}

TEST(TraceSessionTest, SpanNestingInvariants) {
  TraceSession session;
  session.Start();
  {
    ScopedSpan outer("outer", Stage::kRun);
    EXPECT_TRUE(outer.active());
    {
      ScopedSpan mid("mid", Stage::kRowGroup);
      { ScopedSpan inner("inner", Stage::kDecode); }
      { ScopedSpan inner2("inner2", Stage::kExpr); }
    }
    { ScopedSpan mid2("mid2", Stage::kMerge); }
  }
  session.Stop();

  const std::vector<SpanRecord> spans = session.MergedSpans();
  ASSERT_EQ(spans.size(), 5u);
  EXPECT_EQ(session.num_threads(), 1);

  // Merged order is start order; our nesting starts outer first.
  EXPECT_STREQ(spans[0].name, "outer");
  EXPECT_EQ(spans[0].depth, 0);
  EXPECT_EQ(spans[0].stage, Stage::kRun);
  EXPECT_STREQ(spans[1].name, "mid");
  EXPECT_EQ(spans[1].depth, 1);
  EXPECT_STREQ(spans[2].name, "inner");
  EXPECT_EQ(spans[2].depth, 2);
  EXPECT_STREQ(spans[3].name, "inner2");
  EXPECT_EQ(spans[3].depth, 2);
  EXPECT_STREQ(spans[4].name, "mid2");
  EXPECT_EQ(spans[4].depth, 1);

  // Containment: every child lies within its parent; siblings in order.
  for (const SpanRecord& span : spans) {
    EXPECT_GE(span.end_ns, span.start_ns) << span.name;
    EXPECT_GE(span.start_ns, spans[0].start_ns) << span.name;
    EXPECT_LE(span.end_ns, spans[0].end_ns) << span.name;
  }
  EXPECT_LE(spans[2].end_ns, spans[1].end_ns);
  EXPECT_LE(spans[2].end_ns, spans[3].start_ns);

  // seq is the per-thread end order: inner, inner2, mid, mid2, outer.
  EXPECT_EQ(spans[2].seq, 0u);
  EXPECT_EQ(spans[3].seq, 1u);
  EXPECT_EQ(spans[1].seq, 2u);
  EXPECT_EQ(spans[4].seq, 3u);
  EXPECT_EQ(spans[0].seq, 4u);
}

TEST(TraceSessionTest, EarlyEndStopsTheClock) {
  TraceSession session;
  session.Start();
  int64_t mid_ns = 0;
  {
    ScopedSpan span("early", Stage::kPlan);
    span.End();
    mid_ns = NowNs();
    // Depth bookkeeping must have unwound: a new span starts at depth 0.
    ScopedSpan after("after", Stage::kPlan);
  }
  session.Stop();
  const auto spans = session.MergedSpans();
  ASSERT_EQ(spans.size(), 2u);
  EXPECT_LE(spans[0].end_ns, mid_ns);
  EXPECT_EQ(spans[1].depth, 0);
}

TEST(TraceSessionTest, SpansAfterStopAreDropped) {
  TraceSession session;
  session.Start();
  { ScopedSpan span("kept", Stage::kOther); }
  session.Stop();
  { ScopedSpan span("dropped", Stage::kOther); }
  EXPECT_EQ(session.MergedSpans().size(), 1u);
}

TEST(TraceSessionTest, BuffersDoNotLeakAcrossSessions) {
  // The TLS buffer cache must be invalidated when a new session starts;
  // otherwise spans of session B would land in A's (possibly freed) buffer.
  {
    TraceSession a;
    a.Start();
    { ScopedSpan span("a", Stage::kOther); }
    a.Stop();
    EXPECT_EQ(a.MergedSpans().size(), 1u);
  }
  TraceSession b;
  b.Start();
  { ScopedSpan span("b", Stage::kOther); }
  b.Stop();
  const auto spans = b.MergedSpans();
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_STREQ(spans[0].name, "b");
}

TEST(TraceSessionTest, CounterMerging) {
  TraceSession session;
  session.Start();
  CountStage("flwor_let", Stage::kExpr, 10, 2, 100);
  CountStage("flwor_let", Stage::kExpr, 5, 1, 50);
  CountStage("flwor_where", Stage::kExpr, 7);
  session.Stop();
  const auto counters = session.MergedCounters();
  ASSERT_EQ(counters.size(), 2u);
  // Sorted by stage then name.
  EXPECT_STREQ(counters[0].name, "flwor_let");
  EXPECT_EQ(counters[0].ns, 15);
  EXPECT_EQ(counters[0].count, 3u);
  EXPECT_EQ(counters[0].bytes, 150u);
  EXPECT_STREQ(counters[1].name, "flwor_where");
  EXPECT_EQ(counters[1].count, 1u);
}

TEST(TraceSessionTest, StageNamesAreStable) {
  EXPECT_STREQ(StageName(Stage::kRun), "run");
  EXPECT_STREQ(StageName(Stage::kRowGroup), "row_group");
  EXPECT_STREQ(StageName(Stage::kDecode), "decode");
  EXPECT_STREQ(StageName(Stage::kPagePrune), "page_prune");
  EXPECT_STREQ(StageName(Stage::kLateMat), "late_mat");
  EXPECT_STREQ(StageName(Stage::kMerge), "merge");
}

// ---------------------------------------------------------------------------
// Runtime integration: RunRowGroups scheduling spans.
// ---------------------------------------------------------------------------

/// Runs `num_groups` trivial tasks under a trace and returns the merged
/// row-group spans.
std::vector<SpanRecord> TraceRowGroups(int threads, int num_groups,
                                       TraceSession* session) {
  std::vector<exec::RowGroupTask> tasks;
  for (int g = 0; g < num_groups; ++g) {
    tasks.push_back(exec::RowGroupTask{
        g, static_cast<uint64_t>(1000 + 10 * g)});
  }
  session->Start();
  const Status status = exec::RunRowGroups(
      threads, tasks, [](int, int) { return Status::OK(); });
  session->Stop();
  EXPECT_TRUE(status.ok());
  std::vector<SpanRecord> groups;
  for (const SpanRecord& span : session->MergedSpans()) {
    if (span.stage == Stage::kRowGroup) groups.push_back(span);
  }
  return groups;
}

class RowGroupSpans : public ::testing::TestWithParam<int> {};

TEST_P(RowGroupSpans, CompleteAndDeterministicallyOrdered) {
  const int threads = GetParam();
  constexpr int kGroups = 12;
  TraceSession session;
  const auto spans = TraceRowGroups(threads, kGroups, &session);

  // Every group appears exactly once; slots are a permutation of the LPT
  // order; workers are within range; queue waits are sane.
  ASSERT_EQ(spans.size(), static_cast<size_t>(kGroups));
  std::set<int> groups, slots;
  for (const SpanRecord& span : spans) {
    groups.insert(span.group);
    slots.insert(span.slot);
    EXPECT_GE(span.worker, 0);
    EXPECT_LT(span.worker, threads);
    EXPECT_GE(span.queue_ns, 0) << "group " << span.group;
    EXPECT_GT(span.bytes, 0u);
    EXPECT_GE(span.end_ns, span.start_ns);
  }
  EXPECT_EQ(groups.size(), static_cast<size_t>(kGroups));
  EXPECT_EQ(*groups.begin(), 0);
  EXPECT_EQ(slots.size(), static_cast<size_t>(kGroups));

  // MergedSpans is sorted by (start, thread, seq) — the documented
  // deterministic order.
  const auto all = session.MergedSpans();
  for (size_t i = 1; i < all.size(); ++i) {
    const SpanRecord& a = all[i - 1];
    const SpanRecord& b = all[i];
    const bool ordered =
        a.start_ns < b.start_ns ||
        (a.start_ns == b.start_ns &&
         (a.thread_index < b.thread_index ||
          (a.thread_index == b.thread_index && a.seq < b.seq)));
    EXPECT_TRUE(ordered) << "span " << i << " out of order";
  }

  // One worker executes everything inline; its spans must not overlap.
  if (threads == 1) {
    EXPECT_EQ(session.num_threads(), 1);
    for (size_t i = 1; i < spans.size(); ++i) {
      EXPECT_GE(spans[i].start_ns, spans[i - 1].end_ns);
      // Inline path visits tasks in LPT order: slot == visit order.
      EXPECT_EQ(spans[i].slot, static_cast<int>(i));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Threads, RowGroupSpans, ::testing::Values(1, 4));

TEST(RowGroupSpansTest, WorkerSummariesCoverAllGroups) {
  TraceSession session;
  TraceRowGroups(4, 12, &session);
  RunInfo info;
  info.threads = 4;
  const RunReport report = BuildRunReport(session, info, ScanStats{});
  int64_t total_groups = 0;
  for (const WorkerSummary& worker : report.workers) {
    total_groups += worker.row_groups;
    EXPECT_GE(worker.busy_ns, 0);
    EXPECT_GE(worker.idle_ns, 0);
    EXPECT_LE(worker.busy_ns, report.window_ns);
    EXPECT_GE(worker.busy_fraction, 0.0);
    EXPECT_LE(worker.busy_fraction, 1.0);
    ASSERT_EQ(worker.timeline.size(),
              static_cast<size_t>(worker.row_groups));
    for (size_t i = 1; i < worker.timeline.size(); ++i) {
      EXPECT_GE(worker.timeline[i].start_ns,
                worker.timeline[i - 1].start_ns);
    }
  }
  EXPECT_EQ(total_groups, 12);
  // Stragglers are the slowest groups, sorted descending.
  ASSERT_FALSE(report.stragglers.empty());
  EXPECT_LE(report.stragglers.size(), 5u);
  for (size_t i = 1; i < report.stragglers.size(); ++i) {
    EXPECT_GE(report.stragglers[i - 1].wall_ns, report.stragglers[i].wall_ns);
  }
}

TEST(RowGroupSpansTest, TimelineCapSetsTruncatedFlag) {
  TraceSession session;
  TraceRowGroups(1, 8, &session);
  RunInfo info;
  const RunReport report =
      BuildRunReport(session, info, ScanStats{}, /*max_timeline_entries=*/3);
  ASSERT_EQ(report.workers.size(), 1u);
  EXPECT_EQ(report.workers[0].timeline.size(), 3u);
  EXPECT_TRUE(report.workers[0].timeline_truncated);
  EXPECT_EQ(report.workers[0].row_groups, 8);
}

// ---------------------------------------------------------------------------
// Exporters.
// ---------------------------------------------------------------------------

TEST(ChromeTraceTest, WellFormedAndLoadsSpans) {
  TraceSession session;
  session.Start();
  {
    ScopedSpan span("outer", Stage::kRun);
    ScopedSpan inner("row_group", Stage::kRowGroup);
    inner.set_worker(0);
    inner.set_group(3);
  }
  session.Stop();
  const std::string json = ChromeTraceJson(session);
  EXPECT_EQ(json.rfind("{\"traceEvents\":[", 0), 0u) << json.substr(0, 40);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"row_group\""), std::string::npos);
  EXPECT_NE(json.find("\"group\":3"), std::string::npos);
  // Balanced braces/brackets (the writer emits no strings containing
  // braces, so plain counting is a valid well-formedness check here).
  int braces = 0, brackets = 0;
  for (char c : json) {
    braces += c == '{';
    braces -= c == '}';
    brackets += c == '[';
    brackets -= c == ']';
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(ReportJsonTest, EscapesStrings) {
  TraceSession session;
  session.Start();
  session.Stop();
  RunInfo info;
  info.query = "Q\"5\"\n";
  const RunReport report = BuildRunReport(session, info, ScanStats{});
  const std::string json = ReportToJson(report);
  EXPECT_NE(json.find("\"query\":\"Q\\\"5\\\"\\n\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Allocation guarantees.
// ---------------------------------------------------------------------------

TEST(AllocationTest, InactiveSpansAllocateNothing) {
  ASSERT_EQ(TraceSession::Active(), nullptr);
  const uint64_t before = g_heap_allocations.load();
  for (int i = 0; i < 1000; ++i) {
    ScopedSpan span("hot", Stage::kDecode);
    span.set_bytes(64);
    CountStage("hot_counter", Stage::kExpr, 1);
  }
  EXPECT_EQ(g_heap_allocations.load() - before, 0u);
}

TEST(AllocationTest, WarmActiveSpansAllocateNothing) {
  TraceSession session;
  session.Start();
  // Warmup: first span registers this thread's buffer (allocates, once).
  { ScopedSpan warm("warm", Stage::kOther); }
  CountStage("warm_counter", Stage::kExpr, 1);
  const uint64_t before = g_heap_allocations.load();
  for (int i = 0; i < 1000; ++i) {  // well under the 1<<14 reserve
    ScopedSpan span("hot", Stage::kDecode);
    span.set_bytes(64);
    span.set_worker(0);
    CountStage("warm_counter", Stage::kExpr, 1);
  }
  EXPECT_EQ(g_heap_allocations.load() - before, 0u);
  session.Stop();
}

}  // namespace
}  // namespace hepq::obs
