#include <gtest/gtest.h>

#include "columnar/array.h"
#include "columnar/builder.h"
#include "columnar/types.h"

namespace hepq {
namespace {

TEST(TypesTest, PrimitiveSingletons) {
  EXPECT_EQ(DataType::Float32().get(), DataType::Float32().get());
  EXPECT_TRUE(DataType::Float32()->is_primitive());
  EXPECT_EQ(DataType::Float32()->id(), TypeId::kFloat32);
}

TEST(TypesTest, PrimitiveWidths) {
  EXPECT_EQ(PrimitiveWidth(TypeId::kFloat32), 4);
  EXPECT_EQ(PrimitiveWidth(TypeId::kFloat64), 8);
  EXPECT_EQ(PrimitiveWidth(TypeId::kInt32), 4);
  EXPECT_EQ(PrimitiveWidth(TypeId::kInt64), 8);
  EXPECT_EQ(PrimitiveWidth(TypeId::kBool), 1);
  EXPECT_EQ(PrimitiveWidth(TypeId::kList), 0);
  EXPECT_EQ(PrimitiveWidth(TypeId::kStruct), 0);
}

TEST(TypesTest, StructFieldLookup) {
  auto st = DataType::Struct({{"pt", DataType::Float32()},
                              {"eta", DataType::Float32()}});
  EXPECT_EQ(st->FieldIndex("pt"), 0);
  EXPECT_EQ(st->FieldIndex("eta"), 1);
  EXPECT_EQ(st->FieldIndex("phi"), -1);
}

TEST(TypesTest, EqualityIsStructural) {
  auto a = DataType::List(DataType::Struct({{"x", DataType::Float32()}}));
  auto b = DataType::List(DataType::Struct({{"x", DataType::Float32()}}));
  auto c = DataType::List(DataType::Struct({{"y", DataType::Float32()}}));
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*DataType::Float32()));
}

TEST(TypesTest, ToStringRendersNesting) {
  auto t = DataType::List(DataType::Struct(
      {{"pt", DataType::Float32()}, {"charge", DataType::Int32()}}));
  EXPECT_EQ(t->ToString(), "list<struct<pt: float32, charge: int32>>");
}

TEST(TypesTest, NumLeavesCountsRecursively) {
  auto st = DataType::Struct({{"a", DataType::Float32()},
                              {"b", DataType::Float64()}});
  EXPECT_EQ(st->NumLeaves(), 2);
  EXPECT_EQ(DataType::List(st)->NumLeaves(), 2);
  Schema schema({{"x", DataType::Int64()}, {"s", st}});
  EXPECT_EQ(schema.NumLeaves(), 3);
}

TEST(SchemaTest, FieldLookup) {
  Schema schema({{"a", DataType::Int32()}, {"b", DataType::Float32()}});
  EXPECT_EQ(schema.FieldIndex("b"), 1);
  EXPECT_EQ(schema.FieldIndex("z"), -1);
  EXPECT_TRUE(schema.FindField("a").ok());
  EXPECT_EQ(schema.FindField("zz").status().code(), StatusCode::kKeyError);
}

TEST(ArrayTest, PrimitiveBasics) {
  auto arr = MakeFloat32Array({1.0f, 2.0f, 3.0f});
  EXPECT_EQ(arr->length(), 3);
  EXPECT_EQ(arr->NumBytes(), 12);
  const auto& typed = static_cast<const Float32Array&>(*arr);
  EXPECT_FLOAT_EQ(typed.Value(1), 2.0f);
}

TEST(ArrayTest, PrimitiveEquality) {
  auto a = MakeInt32Array({1, 2, 3});
  auto b = MakeInt32Array({1, 2, 3});
  auto c = MakeInt32Array({1, 2, 4});
  EXPECT_TRUE(a->Equals(*b));
  EXPECT_FALSE(a->Equals(*c));
  EXPECT_FALSE(a->Equals(*MakeInt64Array({1, 2, 3})));
}

TEST(ListArrayTest, OffsetsDefineRows) {
  auto child = MakeFloat32Array({1, 2, 3, 4, 5});
  auto list = ListArray::Make({0, 2, 2, 5}, child);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ((*list)->length(), 3);
  EXPECT_EQ((*list)->list_length(0), 2);
  EXPECT_EQ((*list)->list_length(1), 0);
  EXPECT_EQ((*list)->list_length(2), 3);
  EXPECT_EQ((*list)->list_offset(2), 2u);
}

TEST(ListArrayTest, RejectsBadOffsets) {
  auto child = MakeFloat32Array({1, 2, 3});
  EXPECT_FALSE(ListArray::Make({}, child).ok());
  EXPECT_FALSE(ListArray::Make({1, 3}, child).ok());          // not 0-based
  EXPECT_FALSE(ListArray::Make({0, 2, 1, 3}, child).ok());    // decreasing
  EXPECT_FALSE(ListArray::Make({0, 2}, child).ok());  // child too long
}

TEST(StructArrayTest, ChildrenByName) {
  auto st = StructArray::Make(
      {{"pt", DataType::Float32()}, {"q", DataType::Int32()}},
      {MakeFloat32Array({1, 2}), MakeInt32Array({-1, 1})});
  ASSERT_TRUE(st.ok());
  EXPECT_EQ((*st)->length(), 2);
  EXPECT_NE((*st)->ChildByName("pt"), nullptr);
  EXPECT_EQ((*st)->ChildByName("nope"), nullptr);
}

TEST(StructArrayTest, RejectsLengthMismatch) {
  auto r = StructArray::Make(
      {{"a", DataType::Float32()}, {"b", DataType::Float32()}},
      {MakeFloat32Array({1, 2}), MakeFloat32Array({1})});
  EXPECT_FALSE(r.ok());
}

TEST(StructArrayTest, RejectsTypeMismatch) {
  auto r = StructArray::Make({{"a", DataType::Int32()}},
                             {MakeFloat32Array({1})});
  EXPECT_FALSE(r.ok());
}

TEST(BuilderTest, PrimitiveBuilder) {
  PrimitiveBuilder<float> builder(DataType::Float32());
  builder.Reserve(3);
  builder.Append(1.0f);
  const float more[] = {2.0f, 3.0f};
  builder.AppendSpan(more);
  EXPECT_EQ(builder.length(), 3);
  auto arr = builder.Finish();
  EXPECT_EQ(arr->length(), 3);
  EXPECT_FLOAT_EQ(arr->Value(2), 3.0f);
}

TEST(BuilderTest, ListOfStruct) {
  auto arr = MakeListOfStructArray(
      {{"pt", DataType::Float32()}, {"charge", DataType::Int32()}},
      {0, 1, 3}, {MakeFloat32Array({10, 20, 30}),
                  MakeInt32Array({1, -1, 1})});
  ASSERT_TRUE(arr.ok());
  EXPECT_EQ((*arr)->length(), 2);
  const auto& list = static_cast<const ListArray&>(**arr);
  EXPECT_EQ(list.child()->type()->id(), TypeId::kStruct);
}

TEST(RecordBatchTest, MakeValidatesShape) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"a", DataType::Int32()}});
  EXPECT_FALSE(RecordBatch::Make(schema, {}).ok());  // missing column
  EXPECT_FALSE(
      RecordBatch::Make(schema, {MakeFloat32Array({1})}).ok());  // type
  auto ok = RecordBatch::Make(schema, {MakeInt32Array({1, 2})});
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ((*ok)->num_rows(), 2);
  EXPECT_NE((*ok)->ColumnByName("a"), nullptr);
  EXPECT_EQ((*ok)->ColumnByName("zz"), nullptr);
}

TEST(RecordBatchTest, Equality) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"a", DataType::Int32()}});
  auto b1 = RecordBatch::Make(schema, {MakeInt32Array({1, 2})}).ValueOrDie();
  auto b2 = RecordBatch::Make(schema, {MakeInt32Array({1, 2})}).ValueOrDie();
  auto b3 = RecordBatch::Make(schema, {MakeInt32Array({1, 3})}).ValueOrDie();
  EXPECT_TRUE(b1->Equals(*b2));
  EXPECT_FALSE(b1->Equals(*b3));
}

}  // namespace
}  // namespace hepq
