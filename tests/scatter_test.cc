// Tests for the multi-process scatter/gather layer: shard-range
// partitioning, sharded-generation determinism, the IPC frame protocol
// (bit-exact doubles, malformed-frame detection), deterministic fault
// attribution in the gather, and the core contract — a scattered merge is
// bit-identical to the in-process dataset run.

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/dataset.h"
#include "fileio/dataset_reader.h"
#include "queries/adl.h"
#include "scatter/ipc.h"
#include "scatter/scatter.h"

namespace hepq {
namespace {

using scatter::CombineWorkerStreams;
using scatter::DecodeFragmentPayload;
using scatter::EncodeFragmentPayload;
using scatter::EncodeFrame;
using scatter::Frame;
using scatter::FrameType;
using scatter::MergeShardOutputs;
using scatter::ParseWorkerStream;
using scatter::RunWorker;
using scatter::ShardFragment;
using scatter::ShardRange;
using scatter::ShardRangeFor;
using scatter::TryParseFrame;
using scatter::WorkerStream;

TEST(ShardRangeTest, PartitionsExactlyForAnyWorkerCount) {
  for (int files : {1, 3, 4, 7, 16}) {
    for (int workers : {1, 2, 3, 5, 16, 20}) {
      int covered = 0;
      int prev_end = 0;
      int max_size = 0;
      int min_size = files;  // over nonempty ranges
      for (int w = 0; w < workers; ++w) {
        const ShardRange range = ShardRangeFor(files, workers, w);
        EXPECT_EQ(range.begin, prev_end)
            << "files=" << files << " workers=" << workers << " w=" << w;
        EXPECT_GE(range.size(), 0);
        prev_end = range.end;
        covered += range.size();
        max_size = std::max(max_size, range.size());
        if (range.size() > 0) min_size = std::min(min_size, range.size());
      }
      EXPECT_EQ(prev_end, files);
      EXPECT_EQ(covered, files);
      // Balanced: nonempty ranges differ by at most one shard.
      if (workers <= files) EXPECT_LE(max_size - min_size, 1);
    }
  }
}

TEST(ShardSeedTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(ShardSeed(20120601, 3), ShardSeed(20120601, 3));
  EXPECT_NE(ShardSeed(20120601, 0), ShardSeed(20120601, 1));
  EXPECT_NE(ShardSeed(20120601, 0), ShardSeed(20120602, 0));
  // The mix must not collapse to the identity: consecutive shard seeds
  // should not be consecutive integers.
  EXPECT_NE(ShardSeed(1, 1), ShardSeed(1, 0) + 1);
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes.empty()) << path;
  return bytes;
}

TEST(ShardedDatasetTest, ShardBytesIndependentOfShardCount) {
  ShardedDatasetSpec small;
  small.num_shards = 2;
  small.events_per_shard = 400;
  small.row_group_size = 200;
  ShardedDatasetSpec large = small;
  large.num_shards = 3;
  const std::string dir = ::testing::TempDir() + "/hepq_shard_stable";
  auto small_path = EnsureShardedDataset(dir, small);
  ASSERT_TRUE(small_path.ok()) << small_path.status().message();
  auto large_path = EnsureShardedDataset(dir, large);
  ASSERT_TRUE(large_path.ok()) << large_path.status().message();
  ASSERT_NE(*small_path, *large_path);
  for (int shard = 0; shard < small.num_shards; ++shard) {
    const std::string name = small.ShardFileName(shard);
    EXPECT_EQ(SlurpFile(*small_path + "/" + name),
              SlurpFile(*large_path + "/" + name))
        << name << " changed when the shard count grew";
  }
}

/// A fragment with adversarial doubles: NaN, infinities, a denormal,
/// negative zero. The wire format must reproduce every bit pattern.
ShardFragment MakeFragment(int shard) {
  ShardFragment fragment;
  fragment.file_index = shard;
  fragment.output.events_processed = 100 + shard;
  fragment.output.cpu_seconds = 0.25 * shard;
  fragment.output.wall_seconds = 0.5 + shard;
  fragment.output.ops = 7u * static_cast<uint64_t>(shard + 1);
  fragment.output.scan.storage_bytes = 1000u + static_cast<uint64_t>(shard);
  fragment.output.scan.values_read = 10u;
  Histogram1D histogram(HistogramSpec{"h", "title", 4, 0.0, 4.0});
  histogram.Fill(0.5 + shard, 1.0);
  histogram.Fill(std::numeric_limits<double>::quiet_NaN());
  histogram.Fill(std::numeric_limits<double>::infinity());
  histogram.Fill(-std::numeric_limits<double>::infinity());
  histogram.Fill(std::numeric_limits<double>::denorm_min(), -0.0);
  fragment.output.histograms.push_back(std::move(histogram));
  return fragment;
}

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void ExpectBitEqual(const Histogram1D& a, const Histogram1D& b) {
  ASSERT_EQ(a.spec(), b.spec());
  EXPECT_EQ(a.num_entries(), b.num_entries());
  EXPECT_EQ(Bits(a.underflow()), Bits(b.underflow()));
  EXPECT_EQ(Bits(a.overflow()), Bits(b.overflow()));
  EXPECT_EQ(Bits(a.sum_weights()), Bits(b.sum_weights()));
  EXPECT_EQ(Bits(a.mean()), Bits(b.mean()));
  for (int i = 0; i < a.spec().num_bins; ++i) {
    EXPECT_EQ(Bits(a.BinContent(i)), Bits(b.BinContent(i))) << "bin " << i;
  }
}

TEST(ScatterIpcTest, FragmentFrameRoundTripsBitExactly) {
  const ShardFragment original = MakeFragment(3);
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kFragment, EncodeFragmentPayload(original));
  Frame frame;
  size_t consumed = 0;
  auto complete = TryParseFrame(wire.data(), wire.size(), &frame, &consumed);
  ASSERT_TRUE(complete.ok()) << complete.status().message();
  ASSERT_TRUE(*complete);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame.type, FrameType::kFragment);
  auto decoded = DecodeFragmentPayload(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->file_index, 3);
  EXPECT_EQ(decoded->output.events_processed, 103);
  EXPECT_EQ(decoded->output.ops, original.output.ops);
  EXPECT_EQ(Bits(decoded->output.cpu_seconds),
            Bits(original.output.cpu_seconds));
  EXPECT_EQ(decoded->output.scan.storage_bytes,
            original.output.scan.storage_bytes);
  ASSERT_EQ(decoded->output.histograms.size(), 1u);
  ExpectBitEqual(decoded->output.histograms[0],
                 original.output.histograms[0]);
}

TEST(ScatterIpcTest, PartialFrameAsksForMoreBytes) {
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kFragment,
                  EncodeFragmentPayload(MakeFragment(0)));
  Frame frame;
  for (size_t size : {size_t{0}, size_t{3}, size_t{19}, wire.size() - 1}) {
    size_t consumed = 99;
    auto complete = TryParseFrame(wire.data(), size, &frame, &consumed);
    ASSERT_TRUE(complete.ok()) << "size=" << size;
    EXPECT_FALSE(*complete) << "size=" << size;
    EXPECT_EQ(consumed, 0u) << "size=" << size;
  }
}

TEST(ScatterIpcTest, MalformedFramesAreErrors) {
  const std::vector<uint8_t> good =
      EncodeFrame(FrameType::kFragment,
                  EncodeFragmentPayload(MakeFragment(0)));
  Frame frame;
  size_t consumed = 0;

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  auto magic_result =
      TryParseFrame(bad_magic.data(), bad_magic.size(), &frame, &consumed);
  ASSERT_FALSE(magic_result.ok());
  EXPECT_NE(magic_result.status().message().find("magic"),
            std::string::npos);

  std::vector<uint8_t> bad_version = good;
  bad_version[4] = 42;  // version field, little-endian low byte
  auto version_result = TryParseFrame(bad_version.data(),
                                      bad_version.size(), &frame, &consumed);
  ASSERT_FALSE(version_result.ok());
  EXPECT_NE(version_result.status().message().find("version 42, expected 1"),
            std::string::npos);

  std::vector<uint8_t> bad_crc = good;
  bad_crc[bad_crc.size() - 1] ^= 0x01;
  auto crc_result =
      TryParseFrame(bad_crc.data(), bad_crc.size(), &frame, &consumed);
  ASSERT_FALSE(crc_result.ok());
  EXPECT_NE(crc_result.status().message().find("CRC"), std::string::npos);
}

/// Serializes `fragments` (+ optional done frame) as one worker's stream.
std::vector<uint8_t> StreamOf(const std::vector<ShardFragment>& fragments,
                              bool done) {
  std::vector<uint8_t> bytes;
  for (const ShardFragment& fragment : fragments) {
    const std::vector<uint8_t> frame =
        EncodeFrame(FrameType::kFragment, EncodeFragmentPayload(fragment));
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  if (done) {
    const std::vector<uint8_t> frame = EncodeFrame(
        FrameType::kDone, scatter::EncodeDonePayload(
                              static_cast<int>(fragments.size())));
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

TEST(ScatterGatherTest, TruncatedStreamKeepsWholeFragments) {
  std::vector<uint8_t> bytes = StreamOf({MakeFragment(0), MakeFragment(1)},
                                        /*done=*/false);
  bytes.resize(bytes.size() - 7);  // break the second fragment's frame
  const WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
  ASSERT_EQ(stream.fragments.size(), 1u);
  EXPECT_EQ(stream.fragments[0].file_index, 0);
  EXPECT_FALSE(stream.done);
  ASSERT_FALSE(stream.parse_error.ok());
  EXPECT_NE(stream.parse_error.message().find("ends mid-frame"),
            std::string::npos);
}

/// The gather's determinism contract: the same missing shard produces the
/// same error for any grouping of shards into workers.
TEST(ScatterGatherTest, MissingShardErrorIndependentOfWorkerCount) {
  const std::vector<std::string> files = {"fa", "fb", "fc", "fd"};
  // Shard 2's worker died before emitting it; shard 3 was never reached.
  auto broken = [&](int num_workers) {
    std::vector<WorkerStream> streams;
    for (int w = 0; w < num_workers; ++w) {
      const ShardRange range = ShardRangeFor(4, num_workers, w);
      std::vector<ShardFragment> fragments;
      for (int s = range.begin; s < range.end && s < 2; ++s) {
        fragments.push_back(MakeFragment(s));
      }
      const std::vector<uint8_t> bytes =
          StreamOf(fragments, /*done=*/range.end <= 2);
      WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
      stream.range = range;
      streams.push_back(std::move(stream));
    }
    return CombineWorkerStreams(streams, files).status();
  };
  const Status one = broken(1);
  const Status two = broken(2);
  const Status four = broken(4);
  ASSERT_FALSE(one.ok());
  EXPECT_EQ(one.ToString(), two.ToString());
  EXPECT_EQ(one.ToString(), four.ToString());
  EXPECT_NE(one.message().find("before completing shard 2 ('fc')"),
            std::string::npos)
      << one.message();
}

TEST(ScatterGatherTest, ParseErrorAttributedToWorkersOwnRange) {
  const std::vector<std::string> files = {"fa", "fb", "fc", "fd"};
  // Worker 0 owns shards [0,2) and completes; worker 1 owns [2,4) and its
  // stream breaks before any fragment. The error must name shard 2, not
  // shard 0.
  std::vector<uint8_t> ok_bytes =
      StreamOf({MakeFragment(0), MakeFragment(1)}, /*done=*/true);
  WorkerStream ok_stream =
      ParseWorkerStream(ok_bytes.data(), ok_bytes.size());
  ok_stream.range = {0, 2};
  std::vector<uint8_t> broken_bytes =
      StreamOf({MakeFragment(2)}, /*done=*/false);
  broken_bytes.resize(broken_bytes.size() / 2);
  WorkerStream broken_stream =
      ParseWorkerStream(broken_bytes.data(), broken_bytes.size());
  broken_stream.range = {2, 4};
  const Status status =
      CombineWorkerStreams({ok_stream, broken_stream}, files).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shard 2 ('fc')"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("ends mid-frame"), std::string::npos);
}

TEST(ScatterGatherTest, DuplicateFragmentIsCorruption) {
  const std::vector<std::string> files = {"fa", "fb"};
  std::vector<uint8_t> bytes =
      StreamOf({MakeFragment(0), MakeFragment(0), MakeFragment(1)},
               /*done=*/true);
  WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
  stream.range = {0, 2};
  const Status status = CombineWorkerStreams({stream}, files).status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(ScatterWorkerTest, EmitsFragmentPerShardThenDone) {
  const std::vector<std::string> files = {"fa", "fb", "fc"};
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const Status status = RunWorker(
      files, ShardRange{1, 3},
      [&](const std::string& file) -> Result<queries::QueryRunOutput> {
        const int shard = file == "fb" ? 1 : 2;
        return MakeFragment(shard).output;
      },
      fds[1]);
  ::close(fds[1]);
  ASSERT_TRUE(status.ok()) << status.message();
  std::vector<uint8_t> bytes(1 << 16);
  size_t total = 0;
  for (;;) {
    const ssize_t n =
        ::read(fds[0], bytes.data() + total, bytes.size() - total);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    total += static_cast<size_t>(n);
  }
  ::close(fds[0]);
  const WorkerStream stream = ParseWorkerStream(bytes.data(), total);
  ASSERT_TRUE(stream.parse_error.ok()) << stream.parse_error.message();
  EXPECT_TRUE(stream.done);
  ASSERT_EQ(stream.fragments.size(), 2u);
  EXPECT_EQ(stream.fragments[0].file_index, 1);
  EXPECT_EQ(stream.fragments[1].file_index, 2);
}

TEST(ScatterWorkerTest, ShardFailureEmitsErrorFrame) {
  const std::vector<std::string> files = {"fa", "fb"};
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const Status status = RunWorker(
      files, ShardRange{0, 2},
      [&](const std::string& file) -> Result<queries::QueryRunOutput> {
        if (file == "fb") return Status::Invalid("boom");
        return MakeFragment(0).output;
      },
      fds[1]);
  ::close(fds[1]);
  EXPECT_FALSE(status.ok());
  std::vector<uint8_t> bytes(1 << 16);
  size_t total = 0;
  for (;;) {
    const ssize_t n =
        ::read(fds[0], bytes.data() + total, bytes.size() - total);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    total += static_cast<size_t>(n);
  }
  ::close(fds[0]);
  WorkerStream stream = ParseWorkerStream(bytes.data(), total);
  stream.range = {0, 2};
  ASSERT_EQ(stream.fragments.size(), 1u);
  ASSERT_EQ(stream.errors.size(), 1u);
  EXPECT_EQ(stream.errors[0].first, 1);
  const Status combined =
      CombineWorkerStreams({stream}, files).status();
  ASSERT_FALSE(combined.ok());
  EXPECT_NE(combined.message().find("shard 1 ('fb') failed: boom"),
            std::string::npos)
      << combined.message();
}

// ---------------------------------------------------------------------------
// The end-to-end contract: merging per-shard results reproduces the
// in-process dataset run bit for bit.
// ---------------------------------------------------------------------------

class ScatterMergeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ShardedDatasetSpec spec;
    spec.num_shards = 3;
    spec.events_per_shard = 600;
    spec.row_group_size = 250;
    dataset_ = new std::string(
        EnsureShardedDataset(::testing::TempDir() + "/hepq_scatter", spec)
            .ValueOrDie());
  }

  static std::string* dataset_;
};

std::string* ScatterMergeTest::dataset_ = nullptr;

TEST_F(ScatterMergeTest, MergedShardFragmentsMatchDatasetRun) {
  using queries::EngineKind;
  const auto files = ListLaqFiles(*dataset_).ValueOrDie();
  ASSERT_EQ(files.size(), 3u);
  const EngineKind engines[] = {EngineKind::kRdf, EngineKind::kBigQueryShape,
                                EngineKind::kPrestoShape, EngineKind::kDoc};
  for (int q : {1, 5}) {
    for (EngineKind engine : engines) {
      SCOPED_TRACE("q" + std::to_string(q) + " engine " +
                   std::string(queries::EngineKindName(engine)));
      auto whole = queries::RunAdlQuery(engine, q, *dataset_);
      ASSERT_TRUE(whole.ok()) << whole.status().message();
      std::vector<ShardFragment> fragments;
      for (size_t shard = 0; shard < files.size(); ++shard) {
        auto part = queries::RunAdlQuery(engine, q, files[shard]);
        ASSERT_TRUE(part.ok()) << part.status().message();
        ShardFragment fragment;
        fragment.file_index = static_cast<int>(shard);
        fragment.output = std::move(*part);
        fragments.push_back(std::move(fragment));
      }
      auto merged = MergeShardOutputs(fragments);
      ASSERT_TRUE(merged.ok()) << merged.status().message();
      EXPECT_EQ(merged->events_processed, whole->events_processed);
      EXPECT_EQ(merged->ops, whole->ops);
      EXPECT_EQ(merged->scan.storage_bytes, whole->scan.storage_bytes);
      ASSERT_EQ(merged->histograms.size(), whole->histograms.size());
      for (size_t h = 0; h < merged->histograms.size(); ++h) {
        ExpectBitEqual(merged->histograms[h], whole->histograms[h]);
      }
    }
  }
}

}  // namespace
}  // namespace hepq
