// Tests for the multi-process scatter/gather layer: shard-range
// partitioning, sharded-generation determinism, the IPC frame protocol
// (bit-exact doubles, malformed-frame detection), deterministic fault
// attribution in the gather, and the core contract — a scattered merge is
// bit-identical to the in-process dataset run.

#include <unistd.h>

#include <cmath>
#include <cstring>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/dataset.h"
#include "fileio/dataset_reader.h"
#include "queries/adl.h"
#include "scatter/ipc.h"
#include "scatter/scatter.h"

namespace hepq {
namespace {

using scatter::CombineWorkerStreams;
using scatter::DecodeFragmentPayload;
using scatter::DecodeReportPayload;
using scatter::EncodeFragmentPayload;
using scatter::EncodeReportPayload;
using scatter::EncodeFrame;
using scatter::Frame;
using scatter::FrameType;
using scatter::MergeShardOutputs;
using scatter::ParseWorkerStream;
using scatter::RunWorker;
using scatter::ShardFragment;
using scatter::ShardRange;
using scatter::ShardRangeFor;
using scatter::TryParseFrame;
using scatter::WorkerStream;

TEST(ShardRangeTest, PartitionsExactlyForAnyWorkerCount) {
  for (int files : {1, 3, 4, 7, 16}) {
    for (int workers : {1, 2, 3, 5, 16, 20}) {
      int covered = 0;
      int prev_end = 0;
      int max_size = 0;
      int min_size = files;  // over nonempty ranges
      for (int w = 0; w < workers; ++w) {
        const ShardRange range = ShardRangeFor(files, workers, w);
        EXPECT_EQ(range.begin, prev_end)
            << "files=" << files << " workers=" << workers << " w=" << w;
        EXPECT_GE(range.size(), 0);
        prev_end = range.end;
        covered += range.size();
        max_size = std::max(max_size, range.size());
        if (range.size() > 0) min_size = std::min(min_size, range.size());
      }
      EXPECT_EQ(prev_end, files);
      EXPECT_EQ(covered, files);
      // Balanced: nonempty ranges differ by at most one shard.
      if (workers <= files) EXPECT_LE(max_size - min_size, 1);
    }
  }
}

TEST(ShardSeedTest, DeterministicAndDecorrelated) {
  EXPECT_EQ(ShardSeed(20120601, 3), ShardSeed(20120601, 3));
  EXPECT_NE(ShardSeed(20120601, 0), ShardSeed(20120601, 1));
  EXPECT_NE(ShardSeed(20120601, 0), ShardSeed(20120602, 0));
  // The mix must not collapse to the identity: consecutive shard seeds
  // should not be consecutive integers.
  EXPECT_NE(ShardSeed(1, 1), ShardSeed(1, 0) + 1);
}

std::string SlurpFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  EXPECT_FALSE(bytes.empty()) << path;
  return bytes;
}

TEST(ShardedDatasetTest, ShardBytesIndependentOfShardCount) {
  ShardedDatasetSpec small;
  small.num_shards = 2;
  small.events_per_shard = 400;
  small.row_group_size = 200;
  ShardedDatasetSpec large = small;
  large.num_shards = 3;
  const std::string dir = ::testing::TempDir() + "/hepq_shard_stable";
  auto small_path = EnsureShardedDataset(dir, small);
  ASSERT_TRUE(small_path.ok()) << small_path.status().message();
  auto large_path = EnsureShardedDataset(dir, large);
  ASSERT_TRUE(large_path.ok()) << large_path.status().message();
  ASSERT_NE(*small_path, *large_path);
  for (int shard = 0; shard < small.num_shards; ++shard) {
    const std::string name = small.ShardFileName(shard);
    EXPECT_EQ(SlurpFile(*small_path + "/" + name),
              SlurpFile(*large_path + "/" + name))
        << name << " changed when the shard count grew";
  }
}

/// A fragment with adversarial doubles: NaN, infinities, a denormal,
/// negative zero. The wire format must reproduce every bit pattern.
ShardFragment MakeFragment(int shard) {
  ShardFragment fragment;
  fragment.file_index = shard;
  fragment.output.events_processed = 100 + shard;
  fragment.output.cpu_seconds = 0.25 * shard;
  fragment.output.wall_seconds = 0.5 + shard;
  fragment.output.ops = 7u * static_cast<uint64_t>(shard + 1);
  fragment.output.scan.storage_bytes = 1000u + static_cast<uint64_t>(shard);
  fragment.output.scan.values_read = 10u;
  Histogram1D histogram(HistogramSpec{"h", "title", 4, 0.0, 4.0});
  histogram.Fill(0.5 + shard, 1.0);
  histogram.Fill(std::numeric_limits<double>::quiet_NaN());
  histogram.Fill(std::numeric_limits<double>::infinity());
  histogram.Fill(-std::numeric_limits<double>::infinity());
  histogram.Fill(std::numeric_limits<double>::denorm_min(), -0.0);
  fragment.output.histograms.push_back(std::move(histogram));
  return fragment;
}

uint64_t Bits(double value) {
  uint64_t bits;
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

void ExpectBitEqual(const Histogram1D& a, const Histogram1D& b) {
  ASSERT_EQ(a.spec(), b.spec());
  EXPECT_EQ(a.num_entries(), b.num_entries());
  EXPECT_EQ(Bits(a.underflow()), Bits(b.underflow()));
  EXPECT_EQ(Bits(a.overflow()), Bits(b.overflow()));
  EXPECT_EQ(Bits(a.sum_weights()), Bits(b.sum_weights()));
  EXPECT_EQ(Bits(a.mean()), Bits(b.mean()));
  for (int i = 0; i < a.spec().num_bins; ++i) {
    EXPECT_EQ(Bits(a.BinContent(i)), Bits(b.BinContent(i))) << "bin " << i;
  }
}

TEST(ScatterIpcTest, FragmentFrameRoundTripsBitExactly) {
  const ShardFragment original = MakeFragment(3);
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kFragment, EncodeFragmentPayload(original));
  Frame frame;
  size_t consumed = 0;
  auto complete = TryParseFrame(wire.data(), wire.size(), &frame, &consumed);
  ASSERT_TRUE(complete.ok()) << complete.status().message();
  ASSERT_TRUE(*complete);
  EXPECT_EQ(consumed, wire.size());
  EXPECT_EQ(frame.type, FrameType::kFragment);
  auto decoded = DecodeFragmentPayload(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();
  EXPECT_EQ(decoded->file_index, 3);
  EXPECT_EQ(decoded->output.events_processed, 103);
  EXPECT_EQ(decoded->output.ops, original.output.ops);
  EXPECT_EQ(Bits(decoded->output.cpu_seconds),
            Bits(original.output.cpu_seconds));
  EXPECT_EQ(decoded->output.scan.storage_bytes,
            original.output.scan.storage_bytes);
  ASSERT_EQ(decoded->output.histograms.size(), 1u);
  ExpectBitEqual(decoded->output.histograms[0],
                 original.output.histograms[0]);
}

TEST(ScatterIpcTest, PartialFrameAsksForMoreBytes) {
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kFragment,
                  EncodeFragmentPayload(MakeFragment(0)));
  Frame frame;
  for (size_t size : {size_t{0}, size_t{3}, size_t{19}, wire.size() - 1}) {
    size_t consumed = 99;
    auto complete = TryParseFrame(wire.data(), size, &frame, &consumed);
    ASSERT_TRUE(complete.ok()) << "size=" << size;
    EXPECT_FALSE(*complete) << "size=" << size;
    EXPECT_EQ(consumed, 0u) << "size=" << size;
  }
}

TEST(ScatterIpcTest, MalformedFramesAreErrors) {
  const std::vector<uint8_t> good =
      EncodeFrame(FrameType::kFragment,
                  EncodeFragmentPayload(MakeFragment(0)));
  Frame frame;
  size_t consumed = 0;

  std::vector<uint8_t> bad_magic = good;
  bad_magic[0] ^= 0xFF;
  auto magic_result =
      TryParseFrame(bad_magic.data(), bad_magic.size(), &frame, &consumed);
  ASSERT_FALSE(magic_result.ok());
  EXPECT_NE(magic_result.status().message().find("magic"),
            std::string::npos);

  std::vector<uint8_t> bad_version = good;
  bad_version[4] = 42;  // version field, little-endian low byte
  auto version_result = TryParseFrame(bad_version.data(),
                                      bad_version.size(), &frame, &consumed);
  ASSERT_FALSE(version_result.ok());
  EXPECT_NE(version_result.status().message().find("version 42, expected 2"),
            std::string::npos);

  std::vector<uint8_t> bad_crc = good;
  bad_crc[bad_crc.size() - 1] ^= 0x01;
  auto crc_result =
      TryParseFrame(bad_crc.data(), bad_crc.size(), &frame, &consumed);
  ASSERT_FALSE(crc_result.ok());
  EXPECT_NE(crc_result.status().message().find("CRC"), std::string::npos);
}

/// Serializes `fragments` (+ optional done frame) as one worker's stream.
std::vector<uint8_t> StreamOf(const std::vector<ShardFragment>& fragments,
                              bool done) {
  std::vector<uint8_t> bytes;
  for (const ShardFragment& fragment : fragments) {
    const std::vector<uint8_t> frame =
        EncodeFrame(FrameType::kFragment, EncodeFragmentPayload(fragment));
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  if (done) {
    const std::vector<uint8_t> frame = EncodeFrame(
        FrameType::kDone, scatter::EncodeDonePayload(
                              static_cast<int>(fragments.size())));
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

TEST(ScatterGatherTest, TruncatedStreamKeepsWholeFragments) {
  std::vector<uint8_t> bytes = StreamOf({MakeFragment(0), MakeFragment(1)},
                                        /*done=*/false);
  bytes.resize(bytes.size() - 7);  // break the second fragment's frame
  const WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
  ASSERT_EQ(stream.fragments.size(), 1u);
  EXPECT_EQ(stream.fragments[0].file_index, 0);
  EXPECT_FALSE(stream.done);
  ASSERT_FALSE(stream.parse_error.ok());
  EXPECT_NE(stream.parse_error.message().find("ends mid-frame"),
            std::string::npos);
}

/// The gather's determinism contract: the same missing shard produces the
/// same error for any grouping of shards into workers.
TEST(ScatterGatherTest, MissingShardErrorIndependentOfWorkerCount) {
  const std::vector<std::string> files = {"fa", "fb", "fc", "fd"};
  // Shard 2's worker died before emitting it; shard 3 was never reached.
  auto broken = [&](int num_workers) {
    std::vector<WorkerStream> streams;
    for (int w = 0; w < num_workers; ++w) {
      const ShardRange range = ShardRangeFor(4, num_workers, w);
      std::vector<ShardFragment> fragments;
      for (int s = range.begin; s < range.end && s < 2; ++s) {
        fragments.push_back(MakeFragment(s));
      }
      const std::vector<uint8_t> bytes =
          StreamOf(fragments, /*done=*/range.end <= 2);
      WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
      stream.range = range;
      streams.push_back(std::move(stream));
    }
    return CombineWorkerStreams(streams, files).status();
  };
  const Status one = broken(1);
  const Status two = broken(2);
  const Status four = broken(4);
  ASSERT_FALSE(one.ok());
  EXPECT_EQ(one.ToString(), two.ToString());
  EXPECT_EQ(one.ToString(), four.ToString());
  EXPECT_NE(one.message().find("before completing shard 2 ('fc')"),
            std::string::npos)
      << one.message();
}

TEST(ScatterGatherTest, ParseErrorAttributedToWorkersOwnRange) {
  const std::vector<std::string> files = {"fa", "fb", "fc", "fd"};
  // Worker 0 owns shards [0,2) and completes; worker 1 owns [2,4) and its
  // stream breaks before any fragment. The error must name shard 2, not
  // shard 0.
  std::vector<uint8_t> ok_bytes =
      StreamOf({MakeFragment(0), MakeFragment(1)}, /*done=*/true);
  WorkerStream ok_stream =
      ParseWorkerStream(ok_bytes.data(), ok_bytes.size());
  ok_stream.range = {0, 2};
  std::vector<uint8_t> broken_bytes =
      StreamOf({MakeFragment(2)}, /*done=*/false);
  broken_bytes.resize(broken_bytes.size() / 2);
  WorkerStream broken_stream =
      ParseWorkerStream(broken_bytes.data(), broken_bytes.size());
  broken_stream.range = {2, 4};
  std::vector<WorkerStream> streams;
  streams.push_back(std::move(ok_stream));
  streams.push_back(std::move(broken_stream));
  const Status status = CombineWorkerStreams(streams, files).status();
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("shard 2 ('fc')"), std::string::npos)
      << status.message();
  EXPECT_NE(status.message().find("ends mid-frame"), std::string::npos);
}

TEST(ScatterGatherTest, DuplicateFragmentIsCorruption) {
  const std::vector<std::string> files = {"fa", "fb"};
  std::vector<uint8_t> bytes =
      StreamOf({MakeFragment(0), MakeFragment(0), MakeFragment(1)},
               /*done=*/true);
  WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
  stream.range = {0, 2};
  std::vector<WorkerStream> streams;
  streams.push_back(std::move(stream));
  const Status status = CombineWorkerStreams(streams, files).status();
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
  EXPECT_NE(status.message().find("duplicate"), std::string::npos);
}

TEST(ScatterWorkerTest, EmitsFragmentPerShardThenDone) {
  const std::vector<std::string> files = {"fa", "fb", "fc"};
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const Status status = RunWorker(
      files, ShardRange{1, 3},
      [&](const std::string& file) -> Result<queries::QueryRunOutput> {
        const int shard = file == "fb" ? 1 : 2;
        return MakeFragment(shard).output;
      },
      fds[1]);
  ::close(fds[1]);
  ASSERT_TRUE(status.ok()) << status.message();
  std::vector<uint8_t> bytes(1 << 16);
  size_t total = 0;
  for (;;) {
    const ssize_t n =
        ::read(fds[0], bytes.data() + total, bytes.size() - total);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    total += static_cast<size_t>(n);
  }
  ::close(fds[0]);
  const WorkerStream stream = ParseWorkerStream(bytes.data(), total);
  ASSERT_TRUE(stream.parse_error.ok()) << stream.parse_error.message();
  EXPECT_TRUE(stream.done);
  ASSERT_EQ(stream.fragments.size(), 2u);
  EXPECT_EQ(stream.fragments[0].file_index, 1);
  EXPECT_EQ(stream.fragments[1].file_index, 2);
}

TEST(ScatterWorkerTest, ShardFailureEmitsErrorFrame) {
  const std::vector<std::string> files = {"fa", "fb"};
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const Status status = RunWorker(
      files, ShardRange{0, 2},
      [&](const std::string& file) -> Result<queries::QueryRunOutput> {
        if (file == "fb") return Status::Invalid("boom");
        return MakeFragment(0).output;
      },
      fds[1]);
  ::close(fds[1]);
  EXPECT_FALSE(status.ok());
  std::vector<uint8_t> bytes(1 << 16);
  size_t total = 0;
  for (;;) {
    const ssize_t n =
        ::read(fds[0], bytes.data() + total, bytes.size() - total);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    total += static_cast<size_t>(n);
  }
  ::close(fds[0]);
  WorkerStream stream = ParseWorkerStream(bytes.data(), total);
  stream.range = {0, 2};
  ASSERT_EQ(stream.fragments.size(), 1u);
  ASSERT_EQ(stream.errors.size(), 1u);
  EXPECT_EQ(stream.errors[0].first, 1);
  std::vector<WorkerStream> streams;
  streams.push_back(std::move(stream));
  const Status combined = CombineWorkerStreams(streams, files).status();
  ASSERT_FALSE(combined.ok());
  EXPECT_NE(combined.message().find("shard 1 ('fb') failed: boom"),
            std::string::npos)
      << combined.message();
}

// ---------------------------------------------------------------------------
// The end-to-end contract: merging per-shard results reproduces the
// in-process dataset run bit for bit.
// ---------------------------------------------------------------------------

class ScatterMergeTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ShardedDatasetSpec spec;
    spec.num_shards = 3;
    spec.events_per_shard = 600;
    spec.row_group_size = 250;
    dataset_ = new std::string(
        EnsureShardedDataset(::testing::TempDir() + "/hepq_scatter", spec)
            .ValueOrDie());
  }

  static std::string* dataset_;
};

std::string* ScatterMergeTest::dataset_ = nullptr;

TEST_F(ScatterMergeTest, MergedShardFragmentsMatchDatasetRun) {
  using queries::EngineKind;
  const auto files = ListLaqFiles(*dataset_).ValueOrDie();
  ASSERT_EQ(files.size(), 3u);
  const EngineKind engines[] = {EngineKind::kRdf, EngineKind::kBigQueryShape,
                                EngineKind::kPrestoShape, EngineKind::kDoc};
  for (int q : {1, 5}) {
    for (EngineKind engine : engines) {
      SCOPED_TRACE("q" + std::to_string(q) + " engine " +
                   std::string(queries::EngineKindName(engine)));
      auto whole = queries::RunAdlQuery(engine, q, *dataset_);
      ASSERT_TRUE(whole.ok()) << whole.status().message();
      std::vector<ShardFragment> fragments;
      for (size_t shard = 0; shard < files.size(); ++shard) {
        auto part = queries::RunAdlQuery(engine, q, files[shard]);
        ASSERT_TRUE(part.ok()) << part.status().message();
        ShardFragment fragment;
        fragment.file_index = static_cast<int>(shard);
        fragment.output = std::move(*part);
        fragments.push_back(std::move(fragment));
      }
      auto merged = MergeShardOutputs(fragments);
      ASSERT_TRUE(merged.ok()) << merged.status().message();
      EXPECT_EQ(merged->events_processed, whole->events_processed);
      EXPECT_EQ(merged->ops, whole->ops);
      EXPECT_EQ(merged->scan.storage_bytes, whole->scan.storage_bytes);
      ASSERT_EQ(merged->histograms.size(), whole->histograms.size());
      for (size_t h = 0; h < merged->histograms.size(); ++h) {
        ExpectBitEqual(merged->histograms[h], whole->histograms[h]);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kReport frames: the observability side-channel. The contract is twofold —
// a healthy report round-trips exactly (raw IEEE-754 doubles, interned
// span names), and a lost/corrupt/truncated report degrades the merged
// RunReport without ever dooming the query result.
// ---------------------------------------------------------------------------

/// A ProcessReport with every section populated and an adversarial double
/// (denormal cpu_seconds): the wire format must reproduce each field.
obs::ProcessReport MakeReport(int shard_begin, int shard_end) {
  obs::ProcessReport report;
  report.shard_begin = shard_begin;
  report.shard_end = shard_end;
  report.session_start_ns = 1000000;
  report.session_stop_ns = 9999999;
  obs::RunReport& r = report.report;
  r.info.query = "Q5";
  r.info.engine = "rdf";
  r.info.threads = 3;
  r.info.events_processed = 40000 + shard_begin;
  r.info.wall_seconds = 0.5;
  r.info.cpu_seconds = std::numeric_limits<double>::denorm_min();
  r.scan.storage_bytes = 123456u + static_cast<uint64_t>(shard_begin);
  r.scan.decoded_bytes = 77777u;
  r.scan.cache_bytes_served = 4096u;
  r.scan.values_read = 999u;
  r.run_span_ns = 88;
  r.total_span_ns = 99;
  r.window_ns = 111;
  obs::StageSummary stage;
  stage.stage = obs::Stage::kRowGroup;
  stage.wall_ns = 1234;
  stage.cpu_ns = 1200;
  stage.bytes = 4096;
  stage.count = 7;
  r.stages.push_back(stage);
  obs::WorkerSummary worker;
  worker.worker = 1;
  worker.busy_ns = 500;
  worker.idle_ns = 50;
  worker.busy_fraction = 0.9090625;
  worker.row_groups = 7;
  worker.max_queue_ns = 12;
  worker.max_queue_group = 3;
  obs::WorkerSummary::TimelineEntry entry;
  entry.group = 3;
  entry.slot = 0;
  entry.start_ns = 10;
  entry.dur_ns = 20;
  entry.queue_ns = 2;
  entry.bytes = 64;
  worker.timeline.push_back(entry);
  r.workers.push_back(worker);
  obs::Straggler straggler;
  straggler.group = 3;
  straggler.worker = 1;
  straggler.slot = 0;
  straggler.wall_ns = 20;
  straggler.bytes = 64;
  r.stragglers.push_back(straggler);
  obs::CounterSummary counter;
  counter.name = "flwor_rows";
  counter.stage = obs::Stage::kEventLoop;
  counter.ns = 5;
  counter.count = 6;
  counter.bytes = 7;
  r.counters.push_back(counter);
  obs::metrics::MetricSample c;
  c.name = "hepq_test_total";
  c.kind = obs::metrics::MetricKind::kCounter;
  c.value = 42;
  r.metrics.push_back(c);
  obs::metrics::MetricSample h;
  h.name = "hepq_test_wait_ns";
  h.kind = obs::metrics::MetricKind::kHistogram;
  h.buckets.assign(obs::metrics::kHistogramBuckets + 1, 0);
  h.buckets[1] = 3;
  h.observations = 3;
  h.sum_ns = 4500;
  r.metrics.push_back(h);
  obs::SpanRecord run_span;
  run_span.name = report.InternName("run");
  run_span.stage = obs::Stage::kRun;
  run_span.start_ns = 1000000;
  run_span.end_ns = 9999999;
  run_span.cpu_ns = 800;
  run_span.thread_index = 0;
  report.spans.push_back(run_span);
  obs::SpanRecord span;
  span.name = report.InternName("row_group");
  span.stage = obs::Stage::kRowGroup;
  span.start_ns = 1000100;
  span.end_ns = 1000200;
  span.cpu_ns = 90;
  span.bytes = 64;
  span.queue_ns = 2;
  span.worker = 1;
  span.group = 3;
  span.slot = 0;
  span.leaf = -1;
  span.seq = 1;
  span.thread_index = 2;
  span.depth = 1;
  report.spans.push_back(span);
  return report;
}

TEST(ScatterIpcTest, ReportPayloadRoundTripsExactly) {
  const obs::ProcessReport original = MakeReport(2, 5);
  const std::vector<uint8_t> wire =
      EncodeFrame(FrameType::kReport, EncodeReportPayload(original));
  Frame frame;
  size_t consumed = 0;
  auto complete = TryParseFrame(wire.data(), wire.size(), &frame, &consumed);
  ASSERT_TRUE(complete.ok()) << complete.status().message();
  ASSERT_TRUE(*complete);
  EXPECT_EQ(frame.type, FrameType::kReport);
  auto decoded = DecodeReportPayload(frame.payload);
  ASSERT_TRUE(decoded.ok()) << decoded.status().message();

  EXPECT_EQ(decoded->shard_begin, 2);
  EXPECT_EQ(decoded->shard_end, 5);
  EXPECT_EQ(decoded->session_start_ns, original.session_start_ns);
  EXPECT_EQ(decoded->session_stop_ns, original.session_stop_ns);
  const obs::RunReport& a = original.report;
  const obs::RunReport& b = decoded->report;
  EXPECT_EQ(b.info.query, a.info.query);
  EXPECT_EQ(b.info.engine, a.info.engine);
  EXPECT_EQ(b.info.threads, a.info.threads);
  EXPECT_EQ(b.info.events_processed, a.info.events_processed);
  EXPECT_EQ(Bits(b.info.wall_seconds), Bits(a.info.wall_seconds));
  EXPECT_EQ(Bits(b.info.cpu_seconds), Bits(a.info.cpu_seconds));
  EXPECT_EQ(b.scan.storage_bytes, a.scan.storage_bytes);
  EXPECT_EQ(b.scan.decoded_bytes, a.scan.decoded_bytes);
  EXPECT_EQ(b.scan.cache_bytes_served, a.scan.cache_bytes_served);
  EXPECT_EQ(b.scan.values_read, a.scan.values_read);
  EXPECT_EQ(b.run_span_ns, a.run_span_ns);
  EXPECT_EQ(b.total_span_ns, a.total_span_ns);
  EXPECT_EQ(b.window_ns, a.window_ns);
  ASSERT_EQ(b.stages.size(), 1u);
  EXPECT_EQ(b.stages[0].stage, obs::Stage::kRowGroup);
  EXPECT_EQ(b.stages[0].wall_ns, 1234);
  EXPECT_EQ(b.stages[0].count, 7u);
  ASSERT_EQ(b.workers.size(), 1u);
  EXPECT_EQ(b.workers[0].worker, 1);
  EXPECT_EQ(Bits(b.workers[0].busy_fraction), Bits(a.workers[0].busy_fraction));
  EXPECT_EQ(b.workers[0].max_queue_group, 3);
  ASSERT_EQ(b.workers[0].timeline.size(), 1u);
  EXPECT_EQ(b.workers[0].timeline[0].group, 3);
  EXPECT_EQ(b.workers[0].timeline[0].dur_ns, 20);
  EXPECT_EQ(b.workers[0].timeline[0].bytes, 64u);
  ASSERT_EQ(b.stragglers.size(), 1u);
  EXPECT_EQ(b.stragglers[0].group, 3);
  EXPECT_EQ(b.stragglers[0].wall_ns, 20);
  ASSERT_EQ(b.counters.size(), 1u);
  EXPECT_EQ(b.counters[0].name, "flwor_rows");
  EXPECT_EQ(b.counters[0].stage, obs::Stage::kEventLoop);
  EXPECT_EQ(b.counters[0].count, 6u);
  ASSERT_EQ(b.metrics.size(), 2u);
  EXPECT_EQ(b.metrics[0].name, "hepq_test_total");
  EXPECT_EQ(b.metrics[0].kind, obs::metrics::MetricKind::kCounter);
  EXPECT_EQ(b.metrics[0].value, 42);
  EXPECT_EQ(b.metrics[1].name, "hepq_test_wait_ns");
  EXPECT_EQ(b.metrics[1].kind, obs::metrics::MetricKind::kHistogram);
  ASSERT_EQ(b.metrics[1].buckets.size(),
            static_cast<size_t>(obs::metrics::kHistogramBuckets + 1));
  EXPECT_EQ(b.metrics[1].buckets[1], 3u);
  EXPECT_EQ(b.metrics[1].observations, 3u);
  EXPECT_EQ(b.metrics[1].sum_ns, 4500);
  // Span names decode into the report's own pool; both sites that shared
  // a name share the interned pointer again.
  ASSERT_EQ(decoded->spans.size(), 2u);
  EXPECT_STREQ(decoded->spans[0].name, "run");
  EXPECT_STREQ(decoded->spans[1].name, "row_group");
  EXPECT_EQ(decoded->spans[0].stage, obs::Stage::kRun);
  EXPECT_EQ(decoded->spans[1].stage, obs::Stage::kRowGroup);
  EXPECT_EQ(decoded->spans[1].start_ns, 1000100);
  EXPECT_EQ(decoded->spans[1].end_ns, 1000200);
  EXPECT_EQ(decoded->spans[1].cpu_ns, 90);
  EXPECT_EQ(decoded->spans[1].queue_ns, 2);
  EXPECT_EQ(decoded->spans[1].bytes, 64u);
  EXPECT_EQ(decoded->spans[1].worker, 1);
  EXPECT_EQ(decoded->spans[1].group, 3);
  EXPECT_EQ(decoded->spans[1].slot, 0);
  EXPECT_EQ(decoded->spans[1].leaf, -1);
  EXPECT_EQ(decoded->spans[1].seq, 1u);
  EXPECT_EQ(decoded->spans[1].thread_index, 2);
  EXPECT_EQ(decoded->spans[1].depth, 1);
}

TEST(ScatterWorkerTest, EmitsReportBetweenFragmentsAndDone) {
  const std::vector<std::string> files = {"fa", "fb", "fc"};
  int fds[2];
  ASSERT_EQ(::pipe(fds), 0);
  const Status status = RunWorker(
      files, ShardRange{1, 3},
      [&](const std::string& file) -> Result<queries::QueryRunOutput> {
        return MakeFragment(file == "fb" ? 1 : 2).output;
      },
      fds[1],
      [] { return EncodeReportPayload(MakeReport(1, 3)); });
  ::close(fds[1]);
  ASSERT_TRUE(status.ok()) << status.message();
  std::vector<uint8_t> bytes(1 << 16);
  size_t total = 0;
  for (;;) {
    const ssize_t n =
        ::read(fds[0], bytes.data() + total, bytes.size() - total);
    ASSERT_GE(n, 0);
    if (n == 0) break;
    total += static_cast<size_t>(n);
  }
  ::close(fds[0]);
  // Raw frame order: every fragment, then the one report, then done.
  std::vector<FrameType> order;
  size_t pos = 0;
  while (pos < total) {
    Frame frame;
    size_t consumed = 0;
    auto complete =
        TryParseFrame(bytes.data() + pos, total - pos, &frame, &consumed);
    ASSERT_TRUE(complete.ok()) << complete.status().message();
    ASSERT_TRUE(*complete);
    order.push_back(frame.type);
    pos += consumed;
  }
  ASSERT_EQ(order.size(), 4u);
  EXPECT_EQ(order[0], FrameType::kFragment);
  EXPECT_EQ(order[1], FrameType::kFragment);
  EXPECT_EQ(order[2], FrameType::kReport);
  EXPECT_EQ(order[3], FrameType::kDone);
  const WorkerStream stream = ParseWorkerStream(bytes.data(), total);
  ASSERT_TRUE(stream.parse_error.ok()) << stream.parse_error.message();
  EXPECT_TRUE(stream.done);
  ASSERT_EQ(stream.fragments.size(), 2u);
  ASSERT_EQ(stream.reports.size(), 1u);
  EXPECT_EQ(stream.reports[0].shard_begin, 1);
  EXPECT_EQ(stream.reports[0].shard_end, 3);
  ASSERT_EQ(stream.reports[0].spans.size(), 2u);
  EXPECT_STREQ(stream.reports[0].spans[1].name, "row_group");
}

/// Appends one kReport frame (optionally mangled) to a fragment stream.
std::vector<uint8_t> StreamWithReport(
    const std::vector<ShardFragment>& fragments, bool done,
    std::vector<uint8_t> report_frame) {
  std::vector<uint8_t> bytes = StreamOf(fragments, /*done=*/false);
  bytes.insert(bytes.end(), report_frame.begin(), report_frame.end());
  if (done) {
    const std::vector<uint8_t> frame = EncodeFrame(
        FrameType::kDone,
        scatter::EncodeDonePayload(static_cast<int>(fragments.size())));
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  return bytes;
}

// A kReport frame whose CRC fails (the badreport fault shape: a payload
// byte flipped after encoding) stops parsing — but every fragment
// precedes the report, so the gather still merges and only the report is
// lost. The observability channel must never doom the result.
TEST(ScatterGatherTest, CorruptReportFrameKeepsFragmentsMerging) {
  const std::vector<std::string> files = {"fa", "fb"};
  std::vector<uint8_t> report_frame =
      EncodeFrame(FrameType::kReport, EncodeReportPayload(MakeReport(0, 2)));
  ASSERT_GT(report_frame.size(), 24u);
  report_frame[24] ^= 0xff;  // first payload byte: CRC now fails
  const std::vector<uint8_t> bytes = StreamWithReport(
      {MakeFragment(0), MakeFragment(1)}, /*done=*/true, report_frame);
  WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
  stream.range = {0, 2};
  EXPECT_FALSE(stream.parse_error.ok());
  EXPECT_TRUE(stream.reports.empty());
  ASSERT_EQ(stream.fragments.size(), 2u);
  std::vector<WorkerStream> streams;
  streams.push_back(std::move(stream));
  auto combined = CombineWorkerStreams(streams, files);
  ASSERT_TRUE(combined.ok()) << combined.status().message();
  EXPECT_EQ(combined->size(), 2u);
}

// A kReport frame that passes the CRC but whose payload no longer decodes
// (schema drift / truncated body re-framed intact) is dropped silently:
// the stream stays healthy through kDone.
TEST(ScatterGatherTest, UndecodableReportPayloadIsDroppedNotFatal) {
  const std::vector<std::string> files = {"fa", "fb"};
  std::vector<uint8_t> payload = EncodeReportPayload(MakeReport(0, 2));
  payload.resize(payload.size() / 2);  // valid frame, malformed body
  const std::vector<uint8_t> bytes =
      StreamWithReport({MakeFragment(0), MakeFragment(1)}, /*done=*/true,
                       EncodeFrame(FrameType::kReport, payload));
  WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
  stream.range = {0, 2};
  EXPECT_TRUE(stream.parse_error.ok()) << stream.parse_error.message();
  EXPECT_TRUE(stream.done);
  EXPECT_TRUE(stream.reports.empty());
  ASSERT_EQ(stream.fragments.size(), 2u);
  std::vector<WorkerStream> streams;
  streams.push_back(std::move(stream));
  auto combined = CombineWorkerStreams(streams, files);
  ASSERT_TRUE(combined.ok()) << combined.status().message();
  EXPECT_EQ(combined->size(), 2u);
}

// A worker that dies mid-kReport (truncated write) has already emitted
// all its fragments, so the merge still succeeds.
TEST(ScatterGatherTest, TruncatedReportFrameKeepsFragmentsMerging) {
  const std::vector<std::string> files = {"fa", "fb"};
  std::vector<uint8_t> report_frame =
      EncodeFrame(FrameType::kReport, EncodeReportPayload(MakeReport(0, 2)));
  report_frame.resize(report_frame.size() / 2);
  const std::vector<uint8_t> bytes = StreamWithReport(
      {MakeFragment(0), MakeFragment(1)}, /*done=*/false, report_frame);
  WorkerStream stream = ParseWorkerStream(bytes.data(), bytes.size());
  stream.range = {0, 2};
  ASSERT_FALSE(stream.parse_error.ok());
  EXPECT_NE(stream.parse_error.message().find("ends mid-frame"),
            std::string::npos);
  EXPECT_TRUE(stream.reports.empty());
  ASSERT_EQ(stream.fragments.size(), 2u);
  std::vector<WorkerStream> streams;
  streams.push_back(std::move(stream));
  auto combined = CombineWorkerStreams(streams, files);
  ASSERT_TRUE(combined.ok()) << combined.status().message();
  EXPECT_EQ(combined->size(), 2u);
}

// ---------------------------------------------------------------------------
// Merged-report determinism: the same per-shard observability content
// grouped into 2 workers or 4 workers must yield the same cross-process
// RunReport (modulo the processes[] table, which names the grouping).
// ---------------------------------------------------------------------------

/// One worker's report covering shards [begin, end): per-shard content is
/// a fixed "unit" scaled by the shard index so any regrouping that
/// changes totals is caught.
obs::ProcessReport MakeGroupedReport(int begin, int end) {
  obs::ProcessReport report = MakeReport(begin, end);
  obs::RunReport& r = report.report;
  r.info.events_processed = 0;
  r.scan = ScanStats{};
  r.stages[0].wall_ns = 0;
  r.stages[0].cpu_ns = 0;
  r.stages[0].bytes = 0;
  r.stages[0].count = 0;
  r.counters[0].ns = 0;
  r.counters[0].count = 0;
  r.counters[0].bytes = 0;
  r.metrics[0].value = 0;
  r.run_span_ns = 0;
  r.total_span_ns = 0;
  for (int shard = begin; shard < end; ++shard) {
    r.info.events_processed += 1000 + shard;
    r.scan.storage_bytes += 10000u + static_cast<uint64_t>(shard);
    r.scan.decoded_bytes += 500u * static_cast<uint64_t>(shard + 1);
    r.stages[0].wall_ns += 100 + shard;
    r.stages[0].cpu_ns += 90 + shard;
    r.stages[0].bytes += 64u;
    r.stages[0].count += 1;
    r.counters[0].ns += 5 + shard;
    r.counters[0].count += 1;
    r.counters[0].bytes += 8u;
    r.metrics[0].value += 2 + shard;
    r.run_span_ns += 1000 + shard;
    r.total_span_ns += 1000 + shard;
  }
  return report;
}

TEST(ScatterReportMergeTest, MergedReportInvariantToWorkerGrouping) {
  obs::RunInfo info;
  info.query = "Q5";
  info.engine = "rdf";
  info.threads = 2;
  info.events_processed = 4 * 1000 + 0 + 1 + 2 + 3;
  ScanStats merged_scan;
  for (int shard = 0; shard < 4; ++shard) {
    merged_scan.storage_bytes += 10000u + static_cast<uint64_t>(shard);
    merged_scan.decoded_bytes += 500u * static_cast<uint64_t>(shard + 1);
  }

  std::vector<obs::ProcessReport> two;
  two.push_back(MakeGroupedReport(0, 2));
  two.push_back(MakeGroupedReport(2, 4));
  std::vector<obs::ProcessReport> four;
  for (int shard = 0; shard < 4; ++shard) {
    four.push_back(MakeGroupedReport(shard, shard + 1));
  }
  const obs::RunReport a = obs::MergeProcessReports(info, merged_scan, two);
  const obs::RunReport b = obs::MergeProcessReports(info, merged_scan, four);

  EXPECT_FALSE(a.partial);
  EXPECT_FALSE(b.partial);
  EXPECT_EQ(a.info.events_processed, b.info.events_processed);
  EXPECT_EQ(a.scan.decoded_bytes, b.scan.decoded_bytes);
  EXPECT_EQ(a.run_span_ns, b.run_span_ns);
  EXPECT_EQ(a.total_span_ns, b.total_span_ns);
  ASSERT_EQ(a.stages.size(), b.stages.size());
  for (size_t s = 0; s < a.stages.size(); ++s) {
    EXPECT_EQ(a.stages[s].stage, b.stages[s].stage);
    EXPECT_EQ(a.stages[s].wall_ns, b.stages[s].wall_ns);
    EXPECT_EQ(a.stages[s].cpu_ns, b.stages[s].cpu_ns);
    EXPECT_EQ(a.stages[s].bytes, b.stages[s].bytes);
    EXPECT_EQ(a.stages[s].count, b.stages[s].count);
  }
  ASSERT_EQ(a.counters.size(), b.counters.size());
  for (size_t c = 0; c < a.counters.size(); ++c) {
    EXPECT_EQ(a.counters[c].name, b.counters[c].name);
    EXPECT_EQ(a.counters[c].ns, b.counters[c].ns);
    EXPECT_EQ(a.counters[c].count, b.counters[c].count);
    EXPECT_EQ(a.counters[c].bytes, b.counters[c].bytes);
  }
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (size_t m = 0; m < a.metrics.size(); ++m) {
    EXPECT_EQ(a.metrics[m].name, b.metrics[m].name);
    EXPECT_EQ(a.metrics[m].value, b.metrics[m].value) << a.metrics[m].name;
  }
  // Per-process scan totals reconcile against the merged scan — the
  // schema_version 4 contract — for both groupings.
  for (const obs::RunReport* r : {&a, &b}) {
    uint64_t decoded = 0;
    uint64_t storage = 0;
    for (const auto& process : r->processes) {
      EXPECT_TRUE(process.report_received);
      decoded += process.decoded_bytes;
      storage += process.storage_bytes;
    }
    EXPECT_EQ(decoded, r->scan.decoded_bytes);
    EXPECT_EQ(storage, r->scan.storage_bytes);
  }
  EXPECT_EQ(a.processes.size(), 2u);
  EXPECT_EQ(b.processes.size(), 4u);
  EXPECT_EQ(b.processes[2].proc, 2);
  EXPECT_EQ(b.processes[2].shard_begin, 2);
  EXPECT_EQ(b.processes[2].shard_end, 3);
}

// A placeholder (worker whose kReport never arrived) degrades the merged
// report deterministically: partial, one warning keyed by shard range.
TEST(ScatterReportMergeTest, MissingReportYieldsDeterministicWarning) {
  obs::RunInfo info;
  info.query = "Q1";
  info.engine = "doc";
  ScanStats merged_scan;
  std::vector<obs::ProcessReport> reports;
  reports.push_back(MakeGroupedReport(0, 2));
  obs::ProcessReport placeholder;
  placeholder.shard_begin = 2;
  placeholder.shard_end = 4;
  placeholder.received = false;
  reports.push_back(std::move(placeholder));
  const obs::RunReport merged =
      obs::MergeProcessReports(info, merged_scan, reports);
  EXPECT_TRUE(merged.partial);
  ASSERT_EQ(merged.warnings.size(), 1u);
  EXPECT_EQ(merged.warnings[0],
            "worker for shards [2,4) sent no run report; per-process "
            "attribution is incomplete");
  ASSERT_EQ(merged.processes.size(), 2u);
  EXPECT_TRUE(merged.processes[0].report_received);
  EXPECT_FALSE(merged.processes[1].report_received);
  EXPECT_EQ(merged.processes[1].shard_begin, 2);
  EXPECT_EQ(merged.processes[1].shard_end, 4);
}

}  // namespace
}  // namespace hepq
