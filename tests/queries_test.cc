#include <gtest/gtest.h>

#include "datagen/dataset.h"
#include "queries/adl.h"
#include "queries/builders.h"

namespace hepq::queries {
namespace {

/// Shared small data set for the integration tests.
const std::string& TestDataset() {
  static const auto& path = *new std::string([] {
    DatasetSpec spec;
    spec.num_events = 6000;
    spec.row_group_size = 2000;
    return EnsureDataset(::testing::TempDir() + "/hepq_queries", spec)
        .ValueOrDie();
  }());
  return path;
}

TEST(AdlSpecTest, EveryQueryHasSpecs) {
  for (int q = 1; q <= kNumAdlQueries; ++q) {
    const auto specs = AdlHistogramSpecs(q);
    ASSERT_FALSE(specs.empty()) << "Q" << q;
    EXPECT_EQ(specs.size(), q == 6 ? 2u : 1u);
    for (const HistogramSpec& spec : specs) {
      EXPECT_EQ(spec.num_bins, 100);  // paper: 100 bins is typical
      EXPECT_LT(spec.lo, spec.hi);
    }
    EXPECT_STRNE(AdlQueryTitle(q), "unknown query");
  }
}

TEST(AdlSpecTest, InvalidQueryIdsRejected) {
  EXPECT_FALSE(RunAdlQuery(EngineKind::kRdf, 0, TestDataset()).ok());
  EXPECT_FALSE(RunAdlQuery(EngineKind::kRdf, 9, TestDataset()).ok());
  EXPECT_TRUE(AdlHistogramSpecs(0).empty());
}

/// The core integration property: all four engines produce identical
/// histograms for every benchmark query.
class CrossEngineAgreement : public ::testing::TestWithParam<int> {};

TEST_P(CrossEngineAgreement, AllEnginesMatchRdf) {
  const int q = GetParam();
  const auto reference =
      RunAdlQuery(EngineKind::kRdf, q, TestDataset());
  ASSERT_TRUE(reference.ok()) << reference.status().ToString();
  ASSERT_FALSE(reference->histograms.empty());
  EXPECT_EQ(reference->events_processed, 6000);

  for (EngineKind engine :
       {EngineKind::kBigQueryShape, EngineKind::kPrestoShape,
        EngineKind::kDoc}) {
    const auto result = RunAdlQuery(engine, q, TestDataset());
    ASSERT_TRUE(result.ok())
        << EngineKindName(engine) << ": " << result.status().ToString();
    ASSERT_EQ(result->histograms.size(), reference->histograms.size());
    for (size_t h = 0; h < result->histograms.size(); ++h) {
      EXPECT_TRUE(result->histograms[h].ApproxEquals(
          reference->histograms[h], 1e-6))
          << "Q" << q << " histogram " << h << " differs on "
          << EngineKindName(engine) << "\nreference:\n"
          << reference->histograms[h].ToString() << "\ngot:\n"
          << result->histograms[h].ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CrossEngineAgreement,
                         ::testing::Range(1, 9));

/// Property sweep: engine agreement is not an artefact of one particular
/// data set — it holds across generator seeds (and hence across particle
/// multiplicity patterns, Z-decay placements, edge events, ...).
class SeededAgreement : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SeededAgreement, EnginesAgreeOnHardQueries) {
  DatasetSpec spec;
  spec.num_events = 1500;
  spec.row_group_size = 500;
  spec.seed = GetParam();
  const std::string path =
      EnsureDataset(::testing::TempDir() + "/hepq_seeds", spec)
          .ValueOrDie();
  // Q6 and Q8 exercise every engine feature (combinations, argmin,
  // unions, ordinals); Q5 adds the existence pattern.
  for (int q : {5, 6, 8}) {
    const auto reference = RunAdlQuery(EngineKind::kRdf, q, path);
    ASSERT_TRUE(reference.ok());
    for (EngineKind engine :
         {EngineKind::kBigQueryShape, EngineKind::kPrestoShape,
          EngineKind::kDoc}) {
      const auto result = RunAdlQuery(engine, q, path);
      ASSERT_TRUE(result.ok());
      for (size_t h = 0; h < result->histograms.size(); ++h) {
        EXPECT_TRUE(result->histograms[h].ApproxEquals(
            reference->histograms[h], 1e-6))
            << "seed " << GetParam() << " Q" << q << " on "
            << EngineKindName(engine);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SeededAgreement,
                         ::testing::Values(7, 42, 271828, 3141592,
                                           20120601, 99999999));

/// The golden acceptance property of predicate pushdown + late
/// materialization: for every query on every frontend, pruning is
/// invisible in the results — histograms bit-identical, event counters
/// equal — and never decodes more than the unpruned scan.
class PruningBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(PruningBitIdentity, AllFrontendsUnchangedByPushdownToggles) {
  const int q = GetParam();
  for (EngineKind engine :
       {EngineKind::kRdf, EngineKind::kBigQueryShape,
        EngineKind::kPrestoShape, EngineKind::kDoc}) {
    RunOptions off;
    off.scan_pushdown = false;
    off.late_materialization = false;
    RunOptions pushdown_only;
    pushdown_only.late_materialization = false;
    const auto baseline = RunAdlQuery(engine, q, TestDataset(), off);
    ASSERT_TRUE(baseline.ok())
        << EngineKindName(engine) << ": " << baseline.status().ToString();
    EXPECT_EQ(baseline->scan.groups_pruned, 0u);
    EXPECT_EQ(baseline->scan.pages_pruned, 0u);
    for (const RunOptions& options : {RunOptions{}, pushdown_only}) {
      const auto run = RunAdlQuery(engine, q, TestDataset(), options);
      ASSERT_TRUE(run.ok())
          << EngineKindName(engine) << ": " << run.status().ToString();
      EXPECT_EQ(run->events_processed, baseline->events_processed)
          << "Q" << q << " on " << EngineKindName(engine);
      EXPECT_LE(run->scan.decoded_bytes, baseline->scan.decoded_bytes)
          << "Q" << q << " on " << EngineKindName(engine);
      ASSERT_EQ(run->histograms.size(), baseline->histograms.size());
      for (size_t h = 0; h < run->histograms.size(); ++h) {
        const Histogram1D& a = run->histograms[h];
        const Histogram1D& b = baseline->histograms[h];
        ASSERT_EQ(a.num_entries(), b.num_entries())
            << "Q" << q << " histogram " << h << " on "
            << EngineKindName(engine);
        ASSERT_EQ(a.sum_weights(), b.sum_weights());
        ASSERT_EQ(a.underflow(), b.underflow());
        ASSERT_EQ(a.overflow(), b.overflow());
        for (int i = 0; i < a.spec().num_bins; ++i) {
          ASSERT_EQ(a.BinContent(i), b.BinContent(i))
              << "Q" << q << " histogram " << h << " bin " << i << " on "
              << EngineKindName(engine);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, PruningBitIdentity,
                         ::testing::Range(1, 9));

/// Row accounting closes: every event in the file is either skipped by a
/// row-group zone map (rows_pruned) or enters decode (rows_read). Page
/// skips within a surviving group land in lanes_pruned instead, so the
/// two row counters cannot double-count (the regression this pins down:
/// page skips used to add into rows_pruned on top of the group skips).
class RowAccounting : public ::testing::TestWithParam<int> {};

TEST_P(RowAccounting, PrunedPlusReadEqualsTotal) {
  const int q = GetParam();
  for (EngineKind engine :
       {EngineKind::kRdf, EngineKind::kBigQueryShape,
        EngineKind::kPrestoShape, EngineKind::kDoc}) {
    for (const bool pushdown : {true, false}) {
      RunOptions options;
      options.scan_pushdown = pushdown;
      const auto run = RunAdlQuery(engine, q, TestDataset(), options);
      ASSERT_TRUE(run.ok())
          << EngineKindName(engine) << ": " << run.status().ToString();
      EXPECT_EQ(run->scan.rows_pruned + run->scan.rows_read, 6000u)
          << "Q" << q << " on " << EngineKindName(engine)
          << " pushdown=" << pushdown;
      if (!pushdown) {
        EXPECT_EQ(run->scan.rows_pruned, 0u);
        EXPECT_EQ(run->scan.lanes_pruned, 0u);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, RowAccounting, ::testing::Range(1, 9));

TEST(QueriesTest, OpsCountersTrackComplexity) {
  // Q6 must explore far more combinations per event than Q2 (Table 2).
  const auto q2 =
      RunAdlQuery(EngineKind::kBigQueryShape, 2, TestDataset());
  const auto q6 =
      RunAdlQuery(EngineKind::kBigQueryShape, 6, TestDataset());
  ASSERT_TRUE(q2.ok());
  ASSERT_TRUE(q6.ok());
  const double q2_ops =
      static_cast<double>(q2->ops) / q2->events_processed;
  const double q6_ops =
      static_cast<double>(q6->ops) / q6->events_processed;
  EXPECT_GT(q6_ops, 5.0 * q2_ops);
}

TEST(QueriesTest, PrestoShapeReadsMoreBytesThanBigQueryShape) {
  // No struct projection pushdown: Q1 touches one MET member, Presto
  // must read all seven (paper Figure 4b).
  const auto bq = RunAdlQuery(EngineKind::kBigQueryShape, 1, TestDataset());
  const auto presto =
      RunAdlQuery(EngineKind::kPrestoShape, 1, TestDataset());
  ASSERT_TRUE(bq.ok());
  ASSERT_TRUE(presto.ok());
  EXPECT_GT(presto->scan.storage_bytes, bq->scan.storage_bytes);
  EXPECT_EQ(presto->scan.logical_bytes_bq, bq->scan.logical_bytes_bq);
}

TEST(QueriesTest, DocEngineScansWholeFileOnComplexQueries) {
  // Rumble pushes projections only for the simplest queries (Fig. 4b):
  // Q1 reads little, Q5 reads the full file.
  const auto doc_q1 = RunAdlQuery(EngineKind::kDoc, 1, TestDataset());
  const auto doc_q5 = RunAdlQuery(EngineKind::kDoc, 5, TestDataset());
  const auto bq_q5 =
      RunAdlQuery(EngineKind::kBigQueryShape, 5, TestDataset());
  ASSERT_TRUE(doc_q1.ok());
  ASSERT_TRUE(doc_q5.ok());
  ASSERT_TRUE(bq_q5.ok());
  EXPECT_GT(doc_q5->scan.storage_bytes, 5 * bq_q5->scan.storage_bytes);
  EXPECT_LT(doc_q1->scan.storage_bytes, doc_q5->scan.storage_bytes / 5);
}

TEST(QueriesTest, FlatPipelineOnlyForUnnestFriendlyQueries) {
  for (int q = 1; q <= 6; ++q) {
    EXPECT_TRUE(BuildAdlFlatPipeline(q).ok()) << "Q" << q;
  }
  EXPECT_EQ(BuildAdlFlatPipeline(7).status().code(),
            StatusCode::kNotImplemented);
  EXPECT_EQ(BuildAdlFlatPipeline(8).status().code(),
            StatusCode::kNotImplemented);
}

TEST(QueriesTest, EventQueryBuildersForAllQueries) {
  for (int q = 1; q <= 8; ++q) {
    EXPECT_TRUE(BuildAdlEventQuery(q).ok()) << "Q" << q;
    EXPECT_TRUE(BuildAdlDocQuery(q).ok()) << "Q" << q;
  }
  EXPECT_FALSE(BuildAdlEventQuery(0).ok());
  EXPECT_FALSE(BuildAdlDocQuery(9).ok());
}

TEST(QueriesTest, Q4SelectsSubsetOfEvents) {
  const auto q1 = RunAdlQuery(EngineKind::kRdf, 1, TestDataset());
  const auto q4 = RunAdlQuery(EngineKind::kRdf, 4, TestDataset());
  ASSERT_TRUE(q1.ok());
  ASSERT_TRUE(q4.ok());
  EXPECT_LT(q4->histograms[0].num_entries(),
            q1->histograms[0].num_entries());
  EXPECT_GT(q4->histograms[0].num_entries(), 0u);
}

TEST(QueriesTest, Q5FindsZCandidates) {
  const auto q5 = RunAdlQuery(EngineKind::kRdf, 5, TestDataset());
  ASSERT_TRUE(q5.ok());
  // The generator injects Z -> mumu decays in ~15% of events; with soft
  // dimuons as combinatorial background the yield must be substantial.
  EXPECT_GT(q5->histograms[0].num_entries(), 300u);
}

TEST(QueriesTest, Q6ProducesTwoHistogramsFromOnePass) {
  const auto q6 = RunAdlQuery(EngineKind::kRdf, 6, TestDataset());
  ASSERT_TRUE(q6.ok());
  ASSERT_EQ(q6->histograms.size(), 2u);
  // Same events feed both plots.
  EXPECT_EQ(q6->histograms[0].num_entries(),
            q6->histograms[1].num_entries());
  // b-tag discriminant lives in [0, 1].
  EXPECT_DOUBLE_EQ(q6->histograms[1].underflow(), 0.0);
  EXPECT_DOUBLE_EQ(q6->histograms[1].overflow(), 0.0);
}

TEST(QueriesTest, Q7SumIncludesZeroEvents) {
  const auto q7 = RunAdlQuery(EngineKind::kRdf, 7, TestDataset());
  ASSERT_TRUE(q7.ok());
  // Every event gets a (possibly zero) scalar sum.
  EXPECT_EQ(q7->histograms[0].num_entries(), 6000u);
}

TEST(QueriesTest, Q8RequiresThreeLeptons) {
  const auto q8 = RunAdlQuery(EngineKind::kRdf, 8, TestDataset());
  ASSERT_TRUE(q8.ok());
  EXPECT_GT(q8->histograms[0].num_entries(), 0u);
  EXPECT_LT(q8->histograms[0].num_entries(), 6000u);
}

}  // namespace
}  // namespace hepq::queries
