#include <gtest/gtest.h>

#include "cloud/instances.h"
#include "cloud/simulator.h"

namespace hepq::cloud {
namespace {

TEST(InstancesTest, CataloguePricesAreProportional) {
  const auto& instances = M5dInstances();
  ASSERT_EQ(instances.size(), 7u);
  EXPECT_EQ(instances.front().name, "m5d.xlarge");
  EXPECT_EQ(instances.back().name, "m5d.24xlarge");
  EXPECT_EQ(instances.back().vcpus, 96);
  EXPECT_EQ(instances.back().physical_cores, 48);
  EXPECT_DOUBLE_EQ(instances.back().usd_per_hour, 6.048);  // paper §4.1
  for (const InstanceType& i : instances) {
    EXPECT_NEAR(i.usd_per_hour / i.vcpus, 0.063, 1e-9) << i.name;
  }
}

TEST(InstancesTest, Lookup) {
  EXPECT_TRUE(FindInstance("m5d.12xlarge").ok());
  EXPECT_EQ(FindInstance("t2.micro").status().code(),
            StatusCode::kKeyError);
}

MeasuredQuery TypicalQuery() {
  MeasuredQuery measured;
  measured.cpu_seconds = 120.0;
  measured.storage_bytes = 2ull << 30;     // 2 GiB compressed
  measured.logical_bytes_bq = 5ull << 30;  // logical 8-B accounting
  measured.row_groups = 128;               // as in the paper's data set
  measured.events = 53000000;
  return measured;
}

TEST(SimulatorTest, QaasWallTimeIndependentOfInstance) {
  auto outcome =
      SimulateOn(CloudSystem::kBigQuery, TypicalQuery(), "ignored");
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->wall_seconds, 0.0);
  // Fully elastic: one worker per row group.
  EXPECT_EQ(outcome->workers, 128);
}

TEST(SimulatorTest, QaasBillingModels) {
  const MeasuredQuery measured = TypicalQuery();
  auto bq = SimulateOn(CloudSystem::kBigQuery, measured, "");
  auto athena = SimulateOn(CloudSystem::kAthenaV2, measured, "");
  ASSERT_TRUE(bq.ok());
  ASSERT_TRUE(athena.ok());
  // BigQuery bills logical bytes, Athena the (compressed) storage bytes.
  EXPECT_EQ(bq->billed_bytes, measured.logical_bytes_bq);
  EXPECT_EQ(athena->billed_bytes, measured.storage_bytes);
  // $5/TB.
  EXPECT_NEAR(bq->cost_usd,
              static_cast<double>(measured.logical_bytes_bq) * 5e-12, 1e-9);
}

TEST(SimulatorTest, AthenaV2FasterThanV1) {
  // Paper §4.2: all queries run faster in the newer engine version.
  const MeasuredQuery measured = TypicalQuery();
  auto v1 = SimulateOn(CloudSystem::kAthenaV1, measured, "");
  auto v2 = SimulateOn(CloudSystem::kAthenaV2, measured, "");
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  EXPECT_GT(v1->wall_seconds, v2->wall_seconds);
  // Both bill physical storage bytes.
  EXPECT_EQ(v1->billed_bytes, v2->billed_bytes);
}

TEST(SimulatorTest, PreloadedBigQueryFasterThanExternal) {
  const MeasuredQuery measured = TypicalQuery();
  auto native = SimulateOn(CloudSystem::kBigQuery, measured, "");
  auto external = SimulateOn(CloudSystem::kBigQueryExternal, measured, "");
  ASSERT_TRUE(native.ok());
  ASSERT_TRUE(external.ok());
  EXPECT_LT(native->wall_seconds, external->wall_seconds);
}

TEST(SimulatorTest, SelfManagedCostGrowsWithWallAndPrice) {
  const MeasuredQuery measured = TypicalQuery();
  auto small = SimulateOn(CloudSystem::kPresto, measured, "m5d.xlarge");
  auto large = SimulateOn(CloudSystem::kPresto, measured, "m5d.24xlarge");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_GT(small->wall_seconds, large->wall_seconds);
  const InstanceType xl = FindInstance("m5d.xlarge").ValueOrDie();
  EXPECT_NEAR(small->cost_usd, small->wall_seconds * xl.usd_per_second(),
              1e-12);
}

TEST(SimulatorTest, RdfContentionDegradesBeyondKnee) {
  // The paper's key RDataFrame finding: bigger instances eventually get
  // SLOWER due to lock contention (ROOT-Forum #44222).
  const MeasuredQuery measured = TypicalQuery();
  double best_wall = 1e300;
  std::string best_instance;
  std::vector<double> walls;
  for (const InstanceType& instance : M5dInstances()) {
    auto outcome =
        SimulateOn(CloudSystem::kRDataFrame, measured, instance.name);
    ASSERT_TRUE(outcome.ok());
    walls.push_back(outcome->wall_seconds);
    if (outcome->wall_seconds < best_wall) {
      best_wall = outcome->wall_seconds;
      best_instance = instance.name;
    }
  }
  // Optimum is an intermediate size, not the largest...
  EXPECT_NE(best_instance, "m5d.24xlarge");
  EXPECT_NE(best_instance, "m5d.xlarge");
  // ... and the largest instance is slower than the optimum.
  EXPECT_GT(walls.back(), best_wall * 1.05);
}

TEST(SimulatorTest, PrestoScalesBetterThanRdfAtLargeSizes) {
  const MeasuredQuery measured = TypicalQuery();
  auto rdf24 = SimulateOn(CloudSystem::kRDataFrame, measured,
                          "m5d.24xlarge");
  auto rdf12 = SimulateOn(CloudSystem::kRDataFrame, measured,
                          "m5d.12xlarge");
  auto presto24 = SimulateOn(CloudSystem::kPresto, measured,
                             "m5d.24xlarge");
  auto presto12 = SimulateOn(CloudSystem::kPresto, measured,
                             "m5d.12xlarge");
  ASSERT_TRUE(rdf24.ok() && rdf12.ok() && presto24.ok() && presto12.ok());
  const double rdf_gain = rdf12->wall_seconds / rdf24->wall_seconds;
  const double presto_gain = presto12->wall_seconds / presto24->wall_seconds;
  EXPECT_GT(presto_gain, rdf_gain);
}

TEST(SimulatorTest, RowGroupGranularityBoundsParallelism) {
  MeasuredQuery measured = TypicalQuery();
  measured.row_groups = 2;  // tiny data set: at most 2-way parallel
  auto outcome =
      SimulateOn(CloudSystem::kPresto, measured, "m5d.24xlarge");
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->workers, 2);
}

TEST(SimulatorTest, RumbleHasLargeFixedOverhead) {
  MeasuredQuery tiny;
  tiny.cpu_seconds = 0.1;
  tiny.row_groups = 1;
  auto outcome = SimulateOn(CloudSystem::kRumble, tiny, "m5d.xlarge");
  ASSERT_TRUE(outcome.ok());
  EXPECT_GT(outcome->wall_seconds, 20.0);  // Spark submission dominates
}

TEST(SimulatorTest, InputValidation) {
  MeasuredQuery bad;
  bad.row_groups = 0;
  EXPECT_FALSE(SimulateOn(CloudSystem::kPresto, bad, "m5d.xlarge").ok());
  MeasuredQuery good = TypicalQuery();
  EXPECT_FALSE(SimulateOn(CloudSystem::kPresto, good, "nope").ok());
  const SystemModel model = DefaultModel(CloudSystem::kPresto);
  EXPECT_FALSE(Simulate(model, good, nullptr).ok());
}

TEST(SimulatorTest, NamesAndMeasurementEngines) {
  EXPECT_STREQ(CloudSystemName(CloudSystem::kRumble), "Rumble");
  EXPECT_TRUE(IsQaas(CloudSystem::kAthenaV2));
  EXPECT_FALSE(IsQaas(CloudSystem::kRDataFrame));
  EXPECT_STREQ(MeasurementEngineFor(CloudSystem::kBigQuery),
               "bigquery-shape");
  EXPECT_STREQ(MeasurementEngineFor(CloudSystem::kAthenaV2),
               "presto-shape");
  EXPECT_STREQ(MeasurementEngineFor(CloudSystem::kRumble), "jsoniq-doc");
}

}  // namespace
}  // namespace hepq::cloud
