#include <cmath>

#include <gtest/gtest.h>

#include "datagen/dataset.h"
#include "datagen/generator.h"
#include "fileio/reader.h"

namespace hepq {
namespace {

TEST(GeneratorTest, SchemaHasBenchmarkShape) {
  const SchemaPtr schema = EventGenerator::CmsSchema();
  EXPECT_GE(schema->num_fields(), 13);
  EXPECT_GE(schema->FieldIndex("MET"), 0);
  EXPECT_GE(schema->FieldIndex("Jet"), 0);
  EXPECT_GE(schema->FieldIndex("Muon"), 0);
  EXPECT_GE(schema->FieldIndex("Electron"), 0);
  // The benchmark data set has ~65 attributes; ours shreds to a
  // comparable number of physical leaf columns.
  EXPECT_GE(schema->NumLeaves(), 40);
}

TEST(GeneratorTest, DeterministicAcrossInstances) {
  EventGenerator g1, g2;
  auto b1 = g1.GenerateBatch(500);
  auto b2 = g2.GenerateBatch(500);
  EXPECT_TRUE(b1->Equals(*b2));
}

TEST(GeneratorTest, SequentialBatchesContinueEventIds) {
  EventGenerator g;
  auto b1 = g.GenerateBatch(10);
  auto b2 = g.GenerateBatch(10);
  const auto& id1 = static_cast<const Int64Array&>(
      *b1->ColumnByName("event"));
  const auto& id2 = static_cast<const Int64Array&>(
      *b2->ColumnByName("event"));
  EXPECT_EQ(id1.Value(0), 0);
  EXPECT_EQ(id2.Value(0), 10);
  EXPECT_EQ(g.events_generated(), 20);
}

TEST(GeneratorTest, DifferentSeedsProduceDifferentData) {
  GeneratorConfig a, b;
  a.seed = 1;
  b.seed = 2;
  EventGenerator g1(a), g2(b);
  EXPECT_FALSE(g1.GenerateBatch(100)->Equals(*g2.GenerateBatch(100)));
}

/// Calibration targets from the paper's Table 2 workload analysis.
TEST(GeneratorTest, MultiplicityMomentsMatchPaper) {
  EventGenerator g;
  auto batch = g.GenerateBatch(60000);
  const auto& jets =
      static_cast<const ListArray&>(*batch->ColumnByName("Jet"));
  const auto& muons =
      static_cast<const ListArray&>(*batch->ColumnByName("Muon"));
  const auto& electrons =
      static_cast<const ListArray&>(*batch->ColumnByName("Electron"));

  double sum_j = 0, sum_j3 = 0, sum_m2 = 0, sum_e = 0;
  const int64_t n = batch->num_rows();
  for (int64_t i = 0; i < n; ++i) {
    const double j = jets.list_length(i);
    const double m = muons.list_length(i);
    sum_j += j;
    sum_j3 += j * (j - 1) * (j - 2) / 6.0;  // C(J,3)
    sum_m2 += m * (m - 1) / 2.0;            // C(M,2)
    sum_e += electrons.list_length(i);
  }
  // E[J] ~ 3.2 (Q2 ops/event in Table 2).
  EXPECT_NEAR(sum_j / n, 3.2, 0.4);
  // E[C(J,3)] ~ 41.8 (Q6: 42.8 = 1 + E[C(J,3)]). Heavy-tailed, so loose.
  EXPECT_GT(sum_j3 / n, 15.0);
  EXPECT_LT(sum_j3 / n, 90.0);
  // E[C(M,2)] ~ 0.6 (Q5: 1.6 = 1 + E[C(M,2)]).
  EXPECT_NEAR(sum_m2 / n, 0.6, 0.3);
  // Electrons in the low single digits (Figure 3).
  EXPECT_LT(sum_e / n, 1.0);
}

TEST(GeneratorTest, JetTailReachesSeveralDozen) {
  EventGenerator g;
  auto batch = g.GenerateBatch(50000);
  const auto& jets =
      static_cast<const ListArray&>(*batch->ColumnByName("Jet"));
  int32_t max_jets = 0;
  for (int64_t i = 0; i < batch->num_rows(); ++i) {
    max_jets = std::max(max_jets, jets.list_length(i));
  }
  EXPECT_GE(max_jets, 24);  // "several dozen jets" (paper Figure 3)
}

TEST(GeneratorTest, ZPeakPresentInDimuonSpectrum) {
  EventGenerator g;
  auto batch = g.GenerateBatch(20000);
  const auto& muons =
      static_cast<const ListArray&>(*batch->ColumnByName("Muon"));
  const auto& st = static_cast<const StructArray&>(*muons.child());
  const auto& pt = static_cast<const Float32Array&>(*st.ChildByName("pt"));
  const auto& charge =
      static_cast<const Int32Array&>(*st.ChildByName("charge"));
  // Count events whose first two muons are opposite-charge with pt > 20 —
  // a proxy for reconstructable Z decays, which should be common.
  int z_candidates = 0;
  for (int64_t i = 0; i < batch->num_rows(); ++i) {
    if (muons.list_length(i) < 2) continue;
    const uint32_t o = muons.list_offset(i);
    if (charge.Value(o) != charge.Value(o + 1) && pt.Value(o) > 20.0f) {
      ++z_candidates;
    }
  }
  EXPECT_GT(z_candidates, batch->num_rows() / 20);
}

TEST(GeneratorTest, KinematicSanity) {
  EventGenerator g;
  auto batch = g.GenerateBatch(5000);
  const auto& jets =
      static_cast<const ListArray&>(*batch->ColumnByName("Jet"));
  const auto& st = static_cast<const StructArray&>(*jets.child());
  const auto& pt = static_cast<const Float32Array&>(*st.ChildByName("pt"));
  const auto& eta = static_cast<const Float32Array&>(*st.ChildByName("eta"));
  const auto& phi = static_cast<const Float32Array&>(*st.ChildByName("phi"));
  const auto& btag =
      static_cast<const Float32Array&>(*st.ChildByName("btag"));
  for (int64_t i = 0; i < pt.length(); ++i) {
    EXPECT_GT(pt.Value(i), 0.0f);
    EXPECT_LE(std::abs(eta.Value(i)), 4.7f);
    EXPECT_LE(std::abs(phi.Value(i)), static_cast<float>(M_PI) + 1e-5f);
    EXPECT_GE(btag.Value(i), 0.0f);
    EXPECT_LE(btag.Value(i), 1.0f);
  }
}

TEST(DatasetTest, FileNameEncodesSpec) {
  DatasetSpec spec;
  spec.num_events = 123;
  spec.row_group_size = 45;
  spec.seed = 6;
  spec.codec = Codec::kNone;
  EXPECT_EQ(spec.FileName(), "cms_123ev_45rg_s6_none.laq");
}

TEST(DatasetTest, EnsureDatasetWritesAndCaches) {
  const std::string dir = ::testing::TempDir() + "/hepq_ds";
  DatasetSpec spec;
  spec.num_events = 1000;
  spec.row_group_size = 400;
  auto path1 = EnsureDataset(dir, spec);
  ASSERT_TRUE(path1.ok());
  auto reader = LaqReader::Open(*path1);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->total_rows(), 1000);
  EXPECT_EQ((*reader)->num_row_groups(), 3);  // 400 + 400 + 200

  // Second call reuses the file (same path, still readable).
  auto path2 = EnsureDataset(dir, spec);
  ASSERT_TRUE(path2.ok());
  EXPECT_EQ(*path1, *path2);
}

TEST(DatasetTest, RowGroupsHaveExactSpecSize) {
  const std::string dir = ::testing::TempDir() + "/hepq_ds2";
  DatasetSpec spec;
  spec.num_events = 900;
  spec.row_group_size = 300;
  auto path = EnsureDataset(dir, spec);
  ASSERT_TRUE(path.ok());
  auto reader = LaqReader::Open(*path);
  ASSERT_TRUE(reader.ok());
  for (const RowGroupMeta& rg : (*reader)->metadata().row_groups) {
    EXPECT_EQ(rg.num_rows, 300);
  }
}

}  // namespace
}  // namespace hepq
