#include <gtest/gtest.h>

#include "lang/corpus.h"
#include "lang/features.h"
#include "lang/metrics.h"

namespace hepq::lang {
namespace {

TEST(CorpusTest, AllDialectsCoverAllQueries) {
  for (Dialect dialect : kAllDialects) {
    for (int q = 1; q <= 8; ++q) {
      auto text = QueryText(dialect, q);
      ASSERT_TRUE(text.ok()) << DialectName(dialect) << " Q" << q;
      EXPECT_GT(text->size(), 40u) << DialectName(dialect) << " Q" << q;
    }
    EXPECT_FALSE(QueryText(dialect, 0).ok());
    EXPECT_FALSE(QueryText(dialect, 9).ok());
  }
}

TEST(CorpusTest, AthenaInlinesPhysicsFormulae) {
  // No UDFs: the invariant-mass formula appears spelled out.
  const std::string q5 = QueryText(Dialect::kAthena, 5).ValueOrDie();
  EXPECT_NE(q5.find("COSH"), std::string::npos);
  EXPECT_NE(q5.find("GREATEST"), std::string::npos);
  EXPECT_TRUE(SharedPrelude(Dialect::kAthena).empty());
  // Presto moves the same formula into UDFs.
  const std::string presto_q5 = QueryText(Dialect::kPresto, 5).ValueOrDie();
  EXPECT_NE(presto_q5.find("inv_mass2"), std::string::npos);
  EXPECT_NE(SharedPrelude(Dialect::kPresto).find("CREATE FUNCTION"),
            std::string::npos);
}

TEST(CorpusTest, BigQueryUsesNestedSubqueries) {
  const std::string q4 = QueryText(Dialect::kBigQuery, 4).ValueOrDie();
  EXPECT_NE(q4.find("(SELECT COUNT(*) FROM UNNEST"), std::string::npos);
  // Presto cannot: it unnests and regroups.
  const std::string presto_q4 = QueryText(Dialect::kPresto, 4).ValueOrDie();
  EXPECT_NE(presto_q4.find("CROSS JOIN UNNEST"), std::string::npos);
  EXPECT_NE(presto_q4.find("GROUP BY"), std::string::npos);
  EXPECT_NE(presto_q4.find("HAVING"), std::string::npos);
}

TEST(CorpusTest, JsoniqUsesFlwor) {
  const std::string q8 = QueryText(Dialect::kJsoniq, 8).ValueOrDie();
  EXPECT_NE(q8.find("for $"), std::string::npos);
  EXPECT_NE(q8.find("let $"), std::string::npos);
  EXPECT_NE(q8.find("order by"), std::string::npos);
}

TEST(MetricsTest, CountsCharactersAndLines) {
  const ConcisenessMetrics m =
      AnalyzeQuery(Dialect::kJsoniq, "for $x in $v\n\nreturn $x\n");
  EXPECT_EQ(m.lines, 2);
  EXPECT_EQ(m.characters, 17);  // whitespace excluded
  EXPECT_GE(m.clauses, 2);      // for, return
}

TEST(MetricsTest, CommentsAreIgnored) {
  const ConcisenessMetrics with_comment = AnalyzeQuery(
      Dialect::kPresto, "SELECT a -- this comment vanishes\nFROM t\n");
  const ConcisenessMetrics without =
      AnalyzeQuery(Dialect::kPresto, "SELECT a\nFROM t\n");
  EXPECT_EQ(with_comment.characters, without.characters);
  EXPECT_EQ(with_comment.lines, without.lines);
  EXPECT_EQ(with_comment.clauses, without.clauses);
}

TEST(MetricsTest, ClausesIncludeFunctionCalls) {
  const auto tokens =
      ClauseTokens(Dialect::kPresto, "SELECT SQRT(x) FROM t");
  // select, sqrt (call), from.
  EXPECT_EQ(tokens.size(), 3u);
}

TEST(MetricsTest, UniqueClausesDeduplicate) {
  const ConcisenessMetrics m = AnalyzeQuery(
      Dialect::kPresto, "SELECT a FROM t WHERE x AND y AND z");
  EXPECT_EQ(m.unique_clauses, 4);  // select, from, where, and
  EXPECT_EQ(m.clauses, 5);
}

TEST(MetricsTest, SummariesReproduceTable1Ordering) {
  DialectSummary athena = SummarizeDialect(Dialect::kAthena).ValueOrDie();
  DialectSummary bigquery =
      SummarizeDialect(Dialect::kBigQuery).ValueOrDie();
  DialectSummary presto = SummarizeDialect(Dialect::kPresto).ValueOrDie();
  DialectSummary jsoniq = SummarizeDialect(Dialect::kJsoniq).ValueOrDie();
  DialectSummary rdf = SummarizeDialect(Dialect::kRDataFrame).ValueOrDie();

  // Table 1's qualitative ordering:
  // BigQuery and JSONiq are the most concise dialects.
  EXPECT_LT(bigquery.characters, presto.characters);
  EXPECT_LT(bigquery.characters, athena.characters);
  EXPECT_LT(jsoniq.characters, presto.characters);
  EXPECT_LT(jsoniq.characters, athena.characters);
  // RDataFrame needs the most characters of all.
  EXPECT_GT(rdf.characters, athena.characters);
  EXPECT_GT(rdf.characters, bigquery.characters);
  // JSONiq uses the fewest lines and the fewest clauses per query.
  EXPECT_LT(jsoniq.lines, bigquery.lines);
  EXPECT_LT(jsoniq.avg_clauses_per_query, bigquery.avg_clauses_per_query);
  EXPECT_LT(jsoniq.avg_clauses_per_query, presto.avg_clauses_per_query);
  // All metrics are positive and sane.
  for (const DialectSummary& s : {athena, bigquery, presto, jsoniq, rdf}) {
    EXPECT_GT(s.characters, 500);
    EXPECT_GT(s.lines, 20);
    EXPECT_GT(s.clauses, 20);
    EXPECT_GT(s.unique_clauses, 5);
    EXPECT_GT(s.avg_unique_clauses_per_query, 1.0);
  }
}

TEST(FeaturesTest, MatrixMatchesTable1) {
  const auto& matrix = FeatureMatrix();
  ASSERT_EQ(matrix.size(), 15u);  // R1.1 .. R3.5
  EXPECT_EQ(matrix.front().id, "R1.1");
  EXPECT_EQ(matrix.back().id, "R3.5");
  // Spot checks against the paper's Table 1.
  const FeatureRow& udfs = matrix[3];
  ASSERT_EQ(udfs.id, "R1.4");
  EXPECT_EQ(udfs.athena, Support::kNone);
  EXPECT_EQ(udfs.presto, Support::kParen);
  EXPECT_EQ(udfs.jsoniq, Support::kThreeStars);
  const FeatureRow& variables = matrix[6];
  ASSERT_EQ(variables.id, "R2.3");
  EXPECT_EQ(variables.athena, Support::kNone);
  EXPECT_EQ(variables.bigquery, Support::kNone);
  EXPECT_EQ(variables.jsoniq, Support::kThreeStars);
  EXPECT_EQ(variables.rdataframe, Support::kThreeStars);
}

TEST(FeaturesTest, SupportRendering) {
  EXPECT_EQ(SupportToString(Support::kNone), "-");
  EXPECT_EQ(SupportToString(Support::kThreeStars), "***");
  EXPECT_EQ(SupportToString(Support::kParen), "(**)");
}

TEST(FeaturesTest, ForDialectAccessor) {
  const FeatureRow& row = FeatureMatrix()[0];
  EXPECT_EQ(row.ForDialect(Dialect::kJsoniq), Support::kThreeStars);
  EXPECT_EQ(row.ForDialect(Dialect::kPresto), Support::kOneStar);
}

}  // namespace
}  // namespace hepq::lang
