#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "fileio/compression.h"
#include "fileio/crc32.h"
#include "fileio/encoding.h"
#include "fileio/varint.h"

namespace hepq {
namespace {

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE reference vector).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(1024);
  Rng rng(3);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  const uint32_t crc = Crc32(data.data(), data.size());
  data[517] ^= 0x10;
  EXPECT_NE(Crc32(data.data(), data.size()), crc);
}

// ---------------------------------------------------------------------------
// Varint
// ---------------------------------------------------------------------------

TEST(VarintTest, RoundTripUnsigned) {
  std::vector<uint8_t> buf;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, ~0ull};
  for (uint64_t v : values) PutVarint(&buf, v);
  ByteReader reader(buf.data(), buf.size());
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(reader.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, RoundTripSigned) {
  std::vector<uint8_t> buf;
  const int64_t values[] = {0, -1, 1, -64, 64, -1000000, 1000000,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) PutSignedVarint(&buf, v);
  ByteReader reader(buf.data(), buf.size());
  for (int64_t v : values) {
    int64_t out = 0;
    ASSERT_TRUE(reader.GetSignedVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, TruncatedFails) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 1u << 30);
  ByteReader reader(buf.data(), buf.size() - 1);
  uint64_t out;
  EXPECT_EQ(reader.GetVarint(&out).code(), StatusCode::kCorruption);
}

TEST(VarintTest, StringsAndFixed) {
  std::vector<uint8_t> buf;
  PutString(&buf, "hello");
  PutFixed32(&buf, 0xdeadbeef);
  PutDouble(&buf, 3.25);
  ByteReader reader(buf.data(), buf.size());
  std::string s;
  uint32_t u;
  double d;
  ASSERT_TRUE(reader.GetString(&s).ok());
  ASSERT_TRUE(reader.GetFixed32(&u).ok());
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(u, 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(d, 3.25);
}

// ---------------------------------------------------------------------------
// Value encodings
// ---------------------------------------------------------------------------

TEST(EncodingTest, PlainFloatRoundTrip) {
  const std::vector<float> values = {1.5f, -2.25f, 0.0f, 1e30f};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kFloat32, Encoding::kPlain,
                           values.data(), values.size(), &encoded)
                  .ok());
  EXPECT_EQ(encoded.size(), values.size() * 4);
  std::vector<float> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kFloat32, Encoding::kPlain,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, RleCompressesRuns) {
  std::vector<int32_t> values(10000, 7);
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kRleVarint,
                           values.data(), values.size(), &encoded)
                  .ok());
  EXPECT_LT(encoded.size(), 16u);
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kRleVarint,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, RleRejectsFloat) {
  const float v = 1.0f;
  std::vector<uint8_t> out;
  EXPECT_FALSE(
      EncodeValues(TypeId::kFloat32, Encoding::kRleVarint, &v, 1, &out).ok());
}

TEST(EncodingTest, BitPackBools) {
  std::vector<uint8_t> values = {1, 0, 1, 1, 0, 0, 0, 1, 1};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kBool, Encoding::kBitPack, values.data(),
                           values.size(), &encoded)
                  .ok());
  EXPECT_EQ(encoded.size(), 2u);
  std::vector<uint8_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kBool, Encoding::kBitPack, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DecodeRleDetectsOverrun) {
  std::vector<uint8_t> encoded;
  PutVarint(&encoded, 100);       // run of 100 ...
  PutSignedVarint(&encoded, 42);  // ... but we only ask for 5 values
  int32_t out[5];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kRleVarint,
                         encoded.data(), encoded.size(), 5, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DeltaCompressesMonotonicIds) {
  std::vector<int64_t> ids(10000);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = 1000000 + static_cast<int64_t>(i);
  }
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt64, Encoding::kDeltaVarint,
                           ids.data(), ids.size(), &encoded)
                  .ok());
  // First value is a multi-byte varint; every delta is one byte.
  EXPECT_LT(encoded.size(), ids.size() + 8);
  std::vector<int64_t> decoded(ids.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt64, Encoding::kDeltaVarint,
                           encoded.data(), encoded.size(), ids.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, ids);
}

TEST(EncodingTest, DeltaRoundTripsNegativeJumps) {
  const std::vector<int32_t> values = {5, -1000000, 5, 0, INT32_MAX,
                                       INT32_MIN, 7};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kDeltaVarint,
                           values.data(), values.size(), &encoded)
                  .ok());
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kDeltaVarint,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DeltaRejectsFloats) {
  const float v = 1.0f;
  std::vector<uint8_t> out;
  EXPECT_FALSE(
      EncodeValues(TypeId::kFloat32, Encoding::kDeltaVarint, &v, 1, &out)
          .ok());
}

TEST(EncodingTest, ChooseEncodingPicksDeltaForMonotonicData) {
  std::vector<int64_t> ids(4096);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int64_t>(i);
  }
  EXPECT_EQ(ChooseEncoding(TypeId::kInt64, ids.data(), ids.size()),
            Encoding::kDeltaVarint);
}

TEST(EncodingTest, ChooseEncodingHeuristics) {
  std::vector<int32_t> runs(1000, -1);
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, runs.data(), runs.size()),
            Encoding::kRleVarint);
  std::vector<int32_t> distinct(1000);
  for (int i = 0; i < 1000; ++i) {
    // Scattered values: no runs, large deltas -> plain is best.
    distinct[static_cast<size_t>(i)] =
        static_cast<int32_t>(static_cast<uint32_t>(i) * 2654435761u);
  }
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, distinct.data(), distinct.size()),
            Encoding::kPlain);
  const float f = 0.0f;
  EXPECT_EQ(ChooseEncoding(TypeId::kFloat32, &f, 1), Encoding::kPlain);
  const uint8_t b = 1;
  EXPECT_EQ(ChooseEncoding(TypeId::kBool, &b, 1), Encoding::kBitPack);
}

/// Property sweep: RLE round-trips arbitrary int sequences with varying
/// run structure.
class RleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RleProperty, RoundTripRandomRuns) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<int64_t> values;
  while (values.size() < 5000) {
    const int64_t v = static_cast<int64_t>(rng.NextU64() % 1000) - 500;
    const uint64_t run = 1 + rng.NextBelow(20);
    for (uint64_t k = 0; k < run; ++k) values.push_back(v);
  }
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt64, Encoding::kRleVarint,
                           values.data(), values.size(), &encoded)
                  .ok());
  std::vector<int64_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt64, Encoding::kRleVarint,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// LZ compression
// ---------------------------------------------------------------------------

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> compressed;
  EXPECT_TRUE(
      Compress(Codec::kLz, input.data(), input.size(), &compressed).ok());
  std::vector<uint8_t> output;
  EXPECT_TRUE(Decompress(Codec::kLz, compressed.data(), compressed.size(),
                         input.size(), &output)
                  .ok());
  return output;
}

TEST(LzTest, EmptyInput) {
  EXPECT_TRUE(RoundTrip({}).empty());
}

TEST(LzTest, ShortLiteralOnly) {
  const std::vector<uint8_t> input = {1, 2, 3};
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, RepetitiveDataCompresses) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 1000; ++i) {
    input.insert(input.end(), {'a', 'b', 'c', 'd', 'e', 'f'});
  }
  std::vector<uint8_t> compressed;
  ASSERT_TRUE(
      Compress(Codec::kLz, input.data(), input.size(), &compressed).ok());
  EXPECT_LT(compressed.size(), input.size() / 10);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, OverlappingMatch) {
  // A run of a single byte forces self-overlapping match copies.
  std::vector<uint8_t> input(5000, 'x');
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, IncompressibleRandomData) {
  Rng rng(61);
  std::vector<uint8_t> input(65536);
  for (auto& b : input) b = static_cast<uint8_t>(rng.NextU64());
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, DecompressRejectsWrongSize) {
  const std::vector<uint8_t> input = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> compressed;
  ASSERT_TRUE(
      Compress(Codec::kLz, input.data(), input.size(), &compressed).ok());
  std::vector<uint8_t> output;
  EXPECT_FALSE(Decompress(Codec::kLz, compressed.data(), compressed.size(),
                          input.size() + 1, &output)
                   .ok());
}

TEST(LzTest, DecompressRejectsGarbage) {
  // Token demanding a match with offset 0xffff into an empty window.
  const std::vector<uint8_t> garbage = {0x0f, 0xff, 0xff};
  std::vector<uint8_t> output;
  EXPECT_EQ(
      Decompress(Codec::kLz, garbage.data(), garbage.size(), 100, &output)
          .code(),
      StatusCode::kCorruption);
}

TEST(CodecTest, NoneCodecPassesThrough) {
  const std::vector<uint8_t> input = {9, 8, 7};
  std::vector<uint8_t> compressed, output;
  ASSERT_TRUE(
      Compress(Codec::kNone, input.data(), input.size(), &compressed).ok());
  EXPECT_EQ(compressed, input);
  ASSERT_TRUE(Decompress(Codec::kNone, compressed.data(), compressed.size(),
                         input.size(), &output)
                  .ok());
  EXPECT_EQ(output, input);
  EXPECT_FALSE(Decompress(Codec::kNone, compressed.data(),
                          compressed.size(), 2, &output)
                   .ok());
}

/// Property sweep over sizes: round-trip structured float-like data (the
/// realistic column content).
class LzSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(LzSizeProperty, RoundTrip) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(71 + n);
  std::vector<uint8_t> input(n);
  // Mix of runs and noise, like encoded int columns.
  size_t i = 0;
  while (i < n) {
    const uint8_t v = static_cast<uint8_t>(rng.NextBelow(8));
    const size_t run = 1 + rng.NextBelow(32);
    for (size_t k = 0; k < run && i < n; ++k) input[i++] = v;
  }
  EXPECT_EQ(RoundTrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzSizeProperty,
                         ::testing::Values(1, 2, 4, 15, 16, 17, 255, 256,
                                           1000, 65535, 65536, 300000));

}  // namespace
}  // namespace hepq
