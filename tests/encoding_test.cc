#include <cstring>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "fileio/compression.h"
#include "fileio/crc32.h"
#include "fileio/encoding.h"
#include "fileio/varint.h"

namespace hepq {
namespace {

// ---------------------------------------------------------------------------
// CRC32
// ---------------------------------------------------------------------------

TEST(Crc32Test, KnownVector) {
  // CRC-32 of "123456789" is 0xCBF43926 (IEEE reference vector).
  EXPECT_EQ(Crc32("123456789", 9), 0xCBF43926u);
}

TEST(Crc32Test, EmptyIsZero) { EXPECT_EQ(Crc32("", 0), 0u); }

TEST(Crc32Test, DetectsSingleBitFlip) {
  std::vector<uint8_t> data(1024);
  Rng rng(3);
  for (auto& b : data) b = static_cast<uint8_t>(rng.NextU64());
  const uint32_t crc = Crc32(data.data(), data.size());
  data[517] ^= 0x10;
  EXPECT_NE(Crc32(data.data(), data.size()), crc);
}

// ---------------------------------------------------------------------------
// Varint
// ---------------------------------------------------------------------------

TEST(VarintTest, RoundTripUnsigned) {
  std::vector<uint8_t> buf;
  const uint64_t values[] = {0, 1, 127, 128, 300, 1u << 20, ~0ull};
  for (uint64_t v : values) PutVarint(&buf, v);
  ByteReader reader(buf.data(), buf.size());
  for (uint64_t v : values) {
    uint64_t out = 0;
    ASSERT_TRUE(reader.GetVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, RoundTripSigned) {
  std::vector<uint8_t> buf;
  const int64_t values[] = {0, -1, 1, -64, 64, -1000000, 1000000,
                            INT64_MIN, INT64_MAX};
  for (int64_t v : values) PutSignedVarint(&buf, v);
  ByteReader reader(buf.data(), buf.size());
  for (int64_t v : values) {
    int64_t out = 0;
    ASSERT_TRUE(reader.GetSignedVarint(&out).ok());
    EXPECT_EQ(out, v);
  }
}

TEST(VarintTest, TruncatedFails) {
  std::vector<uint8_t> buf;
  PutVarint(&buf, 1u << 30);
  ByteReader reader(buf.data(), buf.size() - 1);
  uint64_t out;
  EXPECT_EQ(reader.GetVarint(&out).code(), StatusCode::kCorruption);
}

TEST(VarintTest, StringsAndFixed) {
  std::vector<uint8_t> buf;
  PutString(&buf, "hello");
  PutFixed32(&buf, 0xdeadbeef);
  PutDouble(&buf, 3.25);
  ByteReader reader(buf.data(), buf.size());
  std::string s;
  uint32_t u;
  double d;
  ASSERT_TRUE(reader.GetString(&s).ok());
  ASSERT_TRUE(reader.GetFixed32(&u).ok());
  ASSERT_TRUE(reader.GetDouble(&d).ok());
  EXPECT_EQ(s, "hello");
  EXPECT_EQ(u, 0xdeadbeefu);
  EXPECT_DOUBLE_EQ(d, 3.25);
}

// ---------------------------------------------------------------------------
// Value encodings
// ---------------------------------------------------------------------------

TEST(EncodingTest, PlainFloatRoundTrip) {
  const std::vector<float> values = {1.5f, -2.25f, 0.0f, 1e30f};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kFloat32, Encoding::kPlain,
                           values.data(), values.size(), &encoded)
                  .ok());
  EXPECT_EQ(encoded.size(), values.size() * 4);
  std::vector<float> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kFloat32, Encoding::kPlain,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, RleCompressesRuns) {
  std::vector<int32_t> values(10000, 7);
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kRleVarint,
                           values.data(), values.size(), &encoded)
                  .ok());
  EXPECT_LT(encoded.size(), 16u);
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kRleVarint,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, RleRejectsFloat) {
  const float v = 1.0f;
  std::vector<uint8_t> out;
  EXPECT_FALSE(
      EncodeValues(TypeId::kFloat32, Encoding::kRleVarint, &v, 1, &out).ok());
}

TEST(EncodingTest, BitPackBools) {
  std::vector<uint8_t> values = {1, 0, 1, 1, 0, 0, 0, 1, 1};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kBool, Encoding::kBitPack, values.data(),
                           values.size(), &encoded)
                  .ok());
  EXPECT_EQ(encoded.size(), 2u);
  std::vector<uint8_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kBool, Encoding::kBitPack, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DecodeRleDetectsOverrun) {
  std::vector<uint8_t> encoded;
  PutVarint(&encoded, 100);       // run of 100 ...
  PutSignedVarint(&encoded, 42);  // ... but we only ask for 5 values
  int32_t out[5];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kRleVarint,
                         encoded.data(), encoded.size(), 5, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DeltaCompressesMonotonicIds) {
  std::vector<int64_t> ids(10000);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = 1000000 + static_cast<int64_t>(i);
  }
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt64, Encoding::kDeltaVarint,
                           ids.data(), ids.size(), &encoded)
                  .ok());
  // First value is a multi-byte varint; every delta is one byte.
  EXPECT_LT(encoded.size(), ids.size() + 8);
  std::vector<int64_t> decoded(ids.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt64, Encoding::kDeltaVarint,
                           encoded.data(), encoded.size(), ids.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, ids);
}

TEST(EncodingTest, DeltaRoundTripsNegativeJumps) {
  const std::vector<int32_t> values = {5, -1000000, 5, 0, INT32_MAX,
                                       INT32_MIN, 7};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kDeltaVarint,
                           values.data(), values.size(), &encoded)
                  .ok());
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kDeltaVarint,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DeltaRejectsFloats) {
  const float v = 1.0f;
  std::vector<uint8_t> out;
  EXPECT_FALSE(
      EncodeValues(TypeId::kFloat32, Encoding::kDeltaVarint, &v, 1, &out)
          .ok());
}

// ---------------------------------------------------------------------------
// Dictionary and frame-of-reference encodings (the advanced integer set)
// ---------------------------------------------------------------------------

TEST(EncodingTest, DictRoundTripLowCardinality) {
  // Scattered magnitudes with only four distinct values: the dictionary
  // case that plain/RLE/delta all handle badly.
  std::vector<int32_t> values(4096);
  const int32_t alphabet[] = {-2000000, 13, 999999, INT32_MAX};
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = alphabet[(i * 7 + i / 3) % 4];
  }
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kDict, values.data(),
                           values.size(), &encoded)
                  .ok());
  // Two index bits per value plus a tiny dictionary.
  EXPECT_LT(encoded.size(), values.size() / 2);
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DictRoundTripInt64Extremes) {
  const std::vector<int64_t> values = {INT64_MIN, 0, INT64_MAX, 0,
                                       INT64_MIN, INT64_MAX, -1};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt64, Encoding::kDict, values.data(),
                           values.size(), &encoded)
                  .ok());
  std::vector<int64_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt64, Encoding::kDict, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DictSingleValueCarriesNoIndices) {
  std::vector<int32_t> values(1000, 42);
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kDict, values.data(),
                           values.size(), &encoded)
                  .ok());
  // varint(1) + zig-zag varint(42): the indices are width 0.
  EXPECT_EQ(encoded.size(), 2u);
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DictAllDistinctRoundTrips) {
  std::vector<int32_t> values(257);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<int32_t>(static_cast<uint32_t>(i) * 2654435761u);
  }
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kDict, values.data(),
                           values.size(), &encoded)
                  .ok());
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, DictRejectsFloat) {
  const float v = 1.0f;
  std::vector<uint8_t> out;
  EXPECT_FALSE(
      EncodeValues(TypeId::kFloat32, Encoding::kDict, &v, 1, &out).ok());
}

TEST(EncodingTest, DecodeDictRejectsOversizedDictionary) {
  // A dictionary larger than the page's value count cannot come from an
  // honest encoder; a crafted count must not trigger a huge allocation.
  std::vector<uint8_t> encoded;
  PutVarint(&encoded, 1u << 30);
  int32_t out[4];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                         encoded.size(), 4, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeDictRejectsIndexOutOfRange) {
  // Three dictionary entries -> width 2; a packed index of 3 points past
  // the dictionary.
  std::vector<uint8_t> encoded;
  PutVarint(&encoded, 3);
  PutSignedVarint(&encoded, 10);
  PutSignedVarint(&encoded, 20);
  PutSignedVarint(&encoded, 30);
  encoded.push_back(0x03);  // indices {3, 0}; padding bits zero
  int32_t out[2];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                         encoded.size(), 2, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeDictRejectsValueOutsideInt32) {
  std::vector<uint8_t> encoded;
  PutVarint(&encoded, 1);
  PutSignedVarint(&encoded, int64_t{1} << 40);
  int32_t out[3];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                         encoded.size(), 3, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeDictRejectsTrailingBytes) {
  std::vector<uint8_t> encoded;
  PutVarint(&encoded, 1);
  PutSignedVarint(&encoded, 5);
  encoded.push_back(0xff);
  int32_t out[4];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                         encoded.size(), 4, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeDictRejectsNonzeroPaddingBits) {
  // Two entries -> width 1; three values use 3 bits, so bits 3..7 of the
  // single index byte are padding and must be zero.
  std::vector<uint8_t> encoded;
  PutVarint(&encoded, 2);
  PutSignedVarint(&encoded, 1);
  PutSignedVarint(&encoded, 2);
  encoded.push_back(0xf8);
  int32_t out[3];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                         encoded.size(), 3, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, ForRoundTripNarrowSpan) {
  // A large base with a narrow spread: frame-of-reference's home turf.
  std::vector<int32_t> values(4096);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1000000000 + static_cast<int32_t>((i * 37) % 8192);
  }
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kFor, values.data(),
                           values.size(), &encoded)
                  .ok());
  // 13 offset bits per value instead of 32.
  EXPECT_LT(encoded.size(), values.size() * 2);
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kFor, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, ForRoundTripInt64FullSpan) {
  // INT64_MIN..INT64_MAX spans the whole 64-bit range; the offsets must
  // wrap in uint64 arithmetic rather than overflow.
  const std::vector<int64_t> values = {INT64_MIN, -1, 0, 1, INT64_MAX};
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt64, Encoding::kFor, values.data(),
                           values.size(), &encoded)
                  .ok());
  std::vector<int64_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt64, Encoding::kFor, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, ForConstantIsTwoBytes) {
  std::vector<int32_t> values(5000, -7);
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt32, Encoding::kFor, values.data(),
                           values.size(), &encoded)
                  .ok());
  EXPECT_EQ(encoded.size(), 2u);  // base varint + width byte 0
  std::vector<int32_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kFor, encoded.data(),
                           encoded.size(), values.size(), decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

TEST(EncodingTest, ForRejectsFloat) {
  const float v = 1.0f;
  std::vector<uint8_t> out;
  EXPECT_FALSE(
      EncodeValues(TypeId::kFloat32, Encoding::kFor, &v, 1, &out).ok());
}

TEST(EncodingTest, DecodeForRejectsWidthOver64) {
  std::vector<uint8_t> encoded;
  PutSignedVarint(&encoded, 0);
  encoded.push_back(65);
  int32_t out[1];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kFor, encoded.data(),
                         encoded.size(), 1, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeForRejectsValueOutsideInt32) {
  // base INT32_MAX + offset 1 lands outside the leaf's physical type.
  std::vector<uint8_t> encoded;
  PutSignedVarint(&encoded, INT32_MAX);
  encoded.push_back(1);
  encoded.push_back(0x01);
  int32_t out[1];
  EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kFor, encoded.data(),
                         encoded.size(), 1, out)
                .code(),
            StatusCode::kCorruption);
}

TEST(EncodingTest, DecodeForRejectsSizeMismatch) {
  // Width 8 with two values needs exactly two offset bytes; one is short,
  // three has a trailing byte — both must be rejected.
  for (const size_t extra : {size_t{1}, size_t{3}}) {
    std::vector<uint8_t> encoded;
    PutSignedVarint(&encoded, 100);
    encoded.push_back(8);
    for (size_t i = 0; i < extra; ++i) encoded.push_back(0);
    int32_t out[2];
    EXPECT_EQ(DecodeValues(TypeId::kInt32, Encoding::kFor, encoded.data(),
                           encoded.size(), 2, out)
                  .code(),
              StatusCode::kCorruption);
  }
}

TEST(EncodingTest, DictAndForEmptyPages) {
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(
      EncodeValues(TypeId::kInt32, Encoding::kDict, nullptr, 0, &encoded)
          .ok());
  ASSERT_TRUE(DecodeValues(TypeId::kInt32, Encoding::kDict, encoded.data(),
                           encoded.size(), 0, nullptr)
                  .ok());
  ASSERT_TRUE(
      EncodeValues(TypeId::kInt64, Encoding::kFor, nullptr, 0, &encoded)
          .ok());
  ASSERT_TRUE(DecodeValues(TypeId::kInt64, Encoding::kFor, encoded.data(),
                           encoded.size(), 0, nullptr)
                  .ok());
}

/// Property sweep: dict and FOR round-trip random low-cardinality data
/// (the distribution the optimizer targets them at).
class AdvancedEncodingProperty : public ::testing::TestWithParam<int> {};

TEST_P(AdvancedEncodingProperty, RoundTripRandom) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 131);
  const size_t n = 1 + rng.NextBelow(3000);
  const uint64_t cardinality = 1 + rng.NextBelow(40);
  std::vector<int64_t> values(n);
  for (auto& v : values) {
    v = static_cast<int64_t>(rng.NextBelow(cardinality)) * 1000003 - 500;
  }
  for (const Encoding enc : {Encoding::kDict, Encoding::kFor}) {
    std::vector<uint8_t> encoded;
    ASSERT_TRUE(
        EncodeValues(TypeId::kInt64, enc, values.data(), n, &encoded).ok());
    std::vector<int64_t> decoded(n);
    ASSERT_TRUE(DecodeValues(TypeId::kInt64, enc, encoded.data(),
                             encoded.size(), n, decoded.data())
                    .ok());
    EXPECT_EQ(decoded, values);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdvancedEncodingProperty,
                         ::testing::Range(1, 9));

TEST(EncodingTest, ChooseEncodingPicksDeltaForMonotonicData) {
  std::vector<int64_t> ids(4096);
  for (size_t i = 0; i < ids.size(); ++i) {
    ids[i] = static_cast<int64_t>(i);
  }
  EXPECT_EQ(ChooseEncoding(TypeId::kInt64, ids.data(), ids.size()),
            Encoding::kDeltaVarint);
}

TEST(EncodingTest, ChooseEncodingHeuristics) {
  std::vector<int32_t> runs(1000, -1);
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, runs.data(), runs.size()),
            Encoding::kRleVarint);
  std::vector<int32_t> distinct(1000);
  for (int i = 0; i < 1000; ++i) {
    // Scattered values: no runs, large deltas -> plain is best.
    distinct[static_cast<size_t>(i)] =
        static_cast<int32_t>(static_cast<uint32_t>(i) * 2654435761u);
  }
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, distinct.data(), distinct.size()),
            Encoding::kPlain);
  const float f = 0.0f;
  EXPECT_EQ(ChooseEncoding(TypeId::kFloat32, &f, 1), Encoding::kPlain);
  const uint8_t b = 1;
  EXPECT_EQ(ChooseEncoding(TypeId::kBool, &b, 1), Encoding::kBitPack);
}

TEST(EncodingTest, ChooseEncodingAdvancedPicksDictAndFor) {
  // Low cardinality, scattered magnitudes: classic selection settles on
  // plain, advanced finds the dictionary.
  std::vector<int32_t> low_card(4096);
  const int32_t alphabet[] = {-2000000, 13, 999999, 77};
  for (size_t i = 0; i < low_card.size(); ++i) {
    // (i*3)%4 cycles with period 4: no runs for RLE, no small deltas.
    low_card[i] = alphabet[(i * 3) % 4];
  }
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, low_card.data(), low_card.size()),
            Encoding::kPlain);
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, low_card.data(), low_card.size(),
                           /*advanced=*/true),
            Encoding::kDict);

  // High cardinality, narrow span on a large base, scattered order (so
  // delta cannot claim it): the dictionary is bigger than the data,
  // frame-of-reference wins.
  std::vector<int32_t> narrow(4096);
  for (size_t i = 0; i < narrow.size(); ++i) {
    narrow[i] = 1000000000 +
                static_cast<int32_t>((static_cast<uint32_t>(i) * 2654435761u) %
                                     8192u);
  }
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, narrow.data(), narrow.size(),
                           /*advanced=*/true),
            Encoding::kFor);
}

TEST(EncodingTest, ChooseEncodingAdvancedKeepsClassicUnlessClearlyBetter) {
  // Span just under 2^28 -> 28 offset bits -> exactly 7/8 of plain's 32.
  // That misses the "at least 1/8 smaller" margin, so plain stays.
  std::vector<int32_t> wide(4096);
  for (size_t i = 0; i < wide.size(); ++i) {
    wide[i] = static_cast<int32_t>((static_cast<uint32_t>(i) * 2654435761u) &
                                   0x0fffffffu);
  }
  EXPECT_EQ(ChooseEncoding(TypeId::kInt32, wide.data(), wide.size(),
                           /*advanced=*/true),
            Encoding::kPlain);
  // Advanced selection never touches floats or bools.
  const float f = 0.0f;
  EXPECT_EQ(ChooseEncoding(TypeId::kFloat32, &f, 1, /*advanced=*/true),
            Encoding::kPlain);
  const uint8_t b = 1;
  EXPECT_EQ(ChooseEncoding(TypeId::kBool, &b, 1, /*advanced=*/true),
            Encoding::kBitPack);
}

/// Whatever ChooseEncoding picks must round-trip: sweep distributions
/// through the full pick-encode-decode path with advanced selection on.
TEST(EncodingTest, ChooseEncodingAdvancedAlwaysRoundTrips) {
  Rng rng(977);
  for (int trial = 0; trial < 24; ++trial) {
    const size_t n = 1 + rng.NextBelow(2000);
    const uint64_t cardinality = 1 + rng.NextBelow(1 + (trial * 97) % 512);
    std::vector<int64_t> values(n);
    for (auto& v : values) {
      v = static_cast<int64_t>(rng.NextBelow(cardinality)) * 37 +
          (trial % 3 == 0 ? 1000000000 : -64);
    }
    const Encoding enc = ChooseEncoding(TypeId::kInt64, values.data(), n,
                                        /*advanced=*/true);
    std::vector<uint8_t> encoded;
    ASSERT_TRUE(
        EncodeValues(TypeId::kInt64, enc, values.data(), n, &encoded).ok());
    std::vector<int64_t> decoded(n);
    ASSERT_TRUE(DecodeValues(TypeId::kInt64, enc, encoded.data(),
                             encoded.size(), n, decoded.data())
                    .ok());
    EXPECT_EQ(decoded, values);
  }
}

/// Property sweep: RLE round-trips arbitrary int sequences with varying
/// run structure.
class RleProperty : public ::testing::TestWithParam<int> {};

TEST_P(RleProperty, RoundTripRandomRuns) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::vector<int64_t> values;
  while (values.size() < 5000) {
    const int64_t v = static_cast<int64_t>(rng.NextU64() % 1000) - 500;
    const uint64_t run = 1 + rng.NextBelow(20);
    for (uint64_t k = 0; k < run; ++k) values.push_back(v);
  }
  std::vector<uint8_t> encoded;
  ASSERT_TRUE(EncodeValues(TypeId::kInt64, Encoding::kRleVarint,
                           values.data(), values.size(), &encoded)
                  .ok());
  std::vector<int64_t> decoded(values.size());
  ASSERT_TRUE(DecodeValues(TypeId::kInt64, Encoding::kRleVarint,
                           encoded.data(), encoded.size(), values.size(),
                           decoded.data())
                  .ok());
  EXPECT_EQ(decoded, values);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RleProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// LZ compression
// ---------------------------------------------------------------------------

std::vector<uint8_t> RoundTrip(const std::vector<uint8_t>& input) {
  std::vector<uint8_t> compressed;
  EXPECT_TRUE(
      Compress(Codec::kLz, input.data(), input.size(), &compressed).ok());
  std::vector<uint8_t> output;
  EXPECT_TRUE(Decompress(Codec::kLz, compressed.data(), compressed.size(),
                         input.size(), &output)
                  .ok());
  return output;
}

TEST(LzTest, EmptyInput) {
  EXPECT_TRUE(RoundTrip({}).empty());
}

TEST(LzTest, ShortLiteralOnly) {
  const std::vector<uint8_t> input = {1, 2, 3};
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, RepetitiveDataCompresses) {
  std::vector<uint8_t> input;
  for (int i = 0; i < 1000; ++i) {
    input.insert(input.end(), {'a', 'b', 'c', 'd', 'e', 'f'});
  }
  std::vector<uint8_t> compressed;
  ASSERT_TRUE(
      Compress(Codec::kLz, input.data(), input.size(), &compressed).ok());
  EXPECT_LT(compressed.size(), input.size() / 10);
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, OverlappingMatch) {
  // A run of a single byte forces self-overlapping match copies.
  std::vector<uint8_t> input(5000, 'x');
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, IncompressibleRandomData) {
  Rng rng(61);
  std::vector<uint8_t> input(65536);
  for (auto& b : input) b = static_cast<uint8_t>(rng.NextU64());
  EXPECT_EQ(RoundTrip(input), input);
}

TEST(LzTest, DecompressRejectsWrongSize) {
  const std::vector<uint8_t> input = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> compressed;
  ASSERT_TRUE(
      Compress(Codec::kLz, input.data(), input.size(), &compressed).ok());
  std::vector<uint8_t> output;
  EXPECT_FALSE(Decompress(Codec::kLz, compressed.data(), compressed.size(),
                          input.size() + 1, &output)
                   .ok());
}

TEST(LzTest, DecompressRejectsGarbage) {
  // Token demanding a match with offset 0xffff into an empty window.
  const std::vector<uint8_t> garbage = {0x0f, 0xff, 0xff};
  std::vector<uint8_t> output;
  EXPECT_EQ(
      Decompress(Codec::kLz, garbage.data(), garbage.size(), 100, &output)
          .code(),
      StatusCode::kCorruption);
}

TEST(CodecTest, NoneCodecPassesThrough) {
  const std::vector<uint8_t> input = {9, 8, 7};
  std::vector<uint8_t> compressed, output;
  ASSERT_TRUE(
      Compress(Codec::kNone, input.data(), input.size(), &compressed).ok());
  EXPECT_EQ(compressed, input);
  ASSERT_TRUE(Decompress(Codec::kNone, compressed.data(), compressed.size(),
                         input.size(), &output)
                  .ok());
  EXPECT_EQ(output, input);
  EXPECT_FALSE(Decompress(Codec::kNone, compressed.data(),
                          compressed.size(), 2, &output)
                   .ok());
}

/// Property sweep over sizes: round-trip structured float-like data (the
/// realistic column content).
class LzSizeProperty : public ::testing::TestWithParam<int> {};

TEST_P(LzSizeProperty, RoundTrip) {
  const size_t n = static_cast<size_t>(GetParam());
  Rng rng(71 + n);
  std::vector<uint8_t> input(n);
  // Mix of runs and noise, like encoded int columns.
  size_t i = 0;
  while (i < n) {
    const uint8_t v = static_cast<uint8_t>(rng.NextBelow(8));
    const size_t run = 1 + rng.NextBelow(32);
    for (size_t k = 0; k < run && i < n; ++k) input[i++] = v;
  }
  EXPECT_EQ(RoundTrip(input), input);
}

INSTANTIATE_TEST_SUITE_P(Sizes, LzSizeProperty,
                         ::testing::Values(1, 2, 4, 15, 16, 17, 255, 256,
                                           1000, 65535, 65536, 300000));

}  // namespace
}  // namespace hepq
