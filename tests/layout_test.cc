#include <gtest/gtest.h>

#include "cloud/simulator.h"
#include "columnar/builder.h"
#include "datagen/dataset.h"
#include "datagen/generator.h"
#include "datagen/root_layout.h"
#include "fileio/reader.h"
#include "fileio/writer.h"

namespace hepq {
namespace {

// ---------------------------------------------------------------------------
// ROOT-style flat layout conversion (paper §3.1 "Data Format")
// ---------------------------------------------------------------------------

TEST(RootLayoutTest, SchemaFlattening) {
  const SchemaPtr nested = EventGenerator::CmsSchema();
  auto flat = RootLayoutSchema(*nested);
  ASSERT_TRUE(flat.ok());
  // Scalars survive as-is; structs become underscore branches; every
  // particle column gets an nX counter.
  EXPECT_GE((*flat)->FieldIndex("event"), 0);
  EXPECT_GE((*flat)->FieldIndex("MET_pt"), 0);
  EXPECT_GE((*flat)->FieldIndex("nJet"), 0);
  EXPECT_GE((*flat)->FieldIndex("Jet_pt"), 0);
  EXPECT_GE((*flat)->FieldIndex("Muon_charge"), 0);
  EXPECT_EQ((*flat)->FieldIndex("Jet"), -1);
  // The flat layout carries strictly more columns (the redundant counts).
  EXPECT_GT((*flat)->num_fields(), nested->num_fields());
}

TEST(RootLayoutTest, RoundTripPreservesData) {
  EventGenerator generator;
  const RecordBatchPtr nested = generator.GenerateBatch(2000);
  auto flat = ToRootLayout(*nested);
  ASSERT_TRUE(flat.ok());
  EXPECT_EQ((*flat)->num_rows(), nested->num_rows());
  auto back = FromRootLayout(**flat, nested->schema());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->Equals(*nested));
}

TEST(RootLayoutTest, BranchValuesMatchNestedView) {
  EventGenerator generator;
  const RecordBatchPtr nested = generator.GenerateBatch(100);
  auto flat = ToRootLayout(*nested).ValueOrDie();
  const auto& njet =
      static_cast<const Int32Array&>(*flat->ColumnByName("nJet"));
  const auto& jets =
      static_cast<const ListArray&>(*nested->ColumnByName("Jet"));
  for (int64_t i = 0; i < nested->num_rows(); ++i) {
    EXPECT_EQ(njet.Value(i), jets.list_length(i));
  }
}

TEST(RootLayoutTest, DetectsInconsistentBranches) {
  // Build a flat batch where nJet disagrees with the Jet_pt branch — the
  // consistency violation a nested layout makes impossible.
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"nJet", DataType::Int32()},
      {"Jet_pt", DataType::List(DataType::Float32())},
  });
  auto pt_branch =
      ListArray::Make({0, 2}, MakeFloat32Array({1, 2})).ValueOrDie();
  auto flat = RecordBatch::Make(
                  schema, {MakeInt32Array({3}), ArrayPtr(pt_branch)})
                  .ValueOrDie();
  auto nested_schema = std::make_shared<Schema>(std::vector<Field>{
      {"Jet", DataType::List(DataType::Struct(
                  {{"pt", DataType::Float32()}}))}});
  auto result = FromRootLayout(*flat, nested_schema);
  EXPECT_EQ(result.status().code(), StatusCode::kCorruption);
}

TEST(RootLayoutTest, MissingBranchIsKeyError) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"nJet", DataType::Int32()}});
  auto flat =
      RecordBatch::Make(schema, {MakeInt32Array({0})}).ValueOrDie();
  auto nested_schema = std::make_shared<Schema>(std::vector<Field>{
      {"Jet", DataType::List(DataType::Struct(
                  {{"pt", DataType::Float32()}}))}});
  EXPECT_EQ(FromRootLayout(*flat, nested_schema).status().code(),
            StatusCode::kKeyError);
}

TEST(RootLayoutTest, FlatLayoutWritesToLaq) {
  // The ROOT-style logical layout is storable in the same file format:
  // same physical shredding, different logical schema (paper §3.1).
  EventGenerator generator;
  const RecordBatchPtr nested = generator.GenerateBatch(500);
  auto flat = ToRootLayout(*nested).ValueOrDie();
  const std::string path = ::testing::TempDir() + "/root_layout.laq";
  ASSERT_TRUE(WriteLaqFile(path, flat->schema(), {flat}).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->ReadRowGroup(0, {"nJet", "Jet_pt", "MET_pt"});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)->num_rows(), 500);
}

// ---------------------------------------------------------------------------
// Row-group pruning on statistics
// ---------------------------------------------------------------------------

class PruningTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec;
    spec.num_events = 4000;
    spec.row_group_size = 1000;
    path_ = new std::string(
        EnsureDataset(::testing::TempDir() + "/hepq_prune", spec)
            .ValueOrDie());
  }
  static std::string* path_;
};

std::string* PruningTest::path_ = nullptr;

TEST_F(PruningTest, EventIdRangeSelectsMatchingGroups) {
  auto reader = LaqReader::Open(*path_).ValueOrDie();
  // Event ids are monotonically increasing: 0..999 in group 0, etc.
  auto groups = reader->SelectRowGroups("event", 1500.0, 1700.0);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, std::vector<int>{1});
  groups = reader->SelectRowGroups("event", 900.0, 1100.0);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, (std::vector<int>{0, 1}));
}

TEST_F(PruningTest, FullRangeKeepsAllGroups) {
  auto reader = LaqReader::Open(*path_).ValueOrDie();
  auto groups = reader->SelectRowGroups("event", -1e18, 1e18);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 4u);
}

TEST_F(PruningTest, DisjointRangeSelectsNothing) {
  auto reader = LaqReader::Open(*path_).ValueOrDie();
  auto groups = reader->SelectRowGroups("event", 1e9, 2e9);
  ASSERT_TRUE(groups.ok());
  EXPECT_TRUE(groups->empty());
}

TEST_F(PruningTest, WorksOnNestedLeaves) {
  auto reader = LaqReader::Open(*path_).ValueOrDie();
  // Jet pt starts at jet_pt_min = 15: a below-threshold range prunes all.
  auto groups = reader->SelectRowGroups("Jet.pt", 0.0, 10.0);
  ASSERT_TRUE(groups.ok());
  EXPECT_TRUE(groups->empty());
  groups = reader->SelectRowGroups("Jet.pt", 20.0, 30.0);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(groups->size(), 4u);
}

TEST_F(PruningTest, ErrorsOnBadInput) {
  auto reader = LaqReader::Open(*path_).ValueOrDie();
  EXPECT_EQ(reader->SelectRowGroups("nope", 0, 1).status().code(),
            StatusCode::kKeyError);
  EXPECT_EQ(reader->SelectRowGroups("event", 2, 1).status().code(),
            StatusCode::kInvalid);
}

// ---------------------------------------------------------------------------
// Spot pricing
// ---------------------------------------------------------------------------

TEST(SpotPricingTest, DiscountsSelfManagedCost) {
  cloud::MeasuredQuery measured;
  measured.cpu_seconds = 100.0;
  measured.row_groups = 64;
  const cloud::InstanceType instance =
      cloud::FindInstance("m5d.8xlarge").ValueOrDie();
  cloud::SystemModel on_demand =
      cloud::DefaultModel(cloud::CloudSystem::kPresto);
  cloud::SystemModel spot = on_demand;
  spot.price_factor = 0.2;  // "up to 5x" cheaper (paper §4.1)
  auto a = cloud::Simulate(on_demand, measured, &instance);
  auto b = cloud::Simulate(spot, measured, &instance);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->wall_seconds, b->wall_seconds);
  EXPECT_NEAR(b->cost_usd, a->cost_usd * 0.2, 1e-12);
}

// ---------------------------------------------------------------------------
// Property test: file round-trip over randomized batches
// ---------------------------------------------------------------------------

class FileRoundTripProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FileRoundTripProperty, GeneratedDataSurvivesWriteRead) {
  GeneratorConfig config;
  config.seed = GetParam();
  EventGenerator generator(config);
  std::vector<RecordBatchPtr> batches;
  Rng rng(GetParam() * 7919);
  int64_t total = 0;
  const int num_batches = 1 + static_cast<int>(rng.NextBelow(4));
  for (int b = 0; b < num_batches; ++b) {
    const int64_t n = 1 + static_cast<int64_t>(rng.NextBelow(700));
    batches.push_back(generator.GenerateBatch(n));
    total += n;
  }
  WriterOptions options;
  options.row_group_size = 1 + static_cast<int64_t>(rng.NextBelow(500));
  options.codec = rng.NextBool(0.5) ? Codec::kLz : Codec::kNone;

  const std::string path = ::testing::TempDir() + "/roundtrip_" +
                           std::to_string(GetParam()) + ".laq";
  ASSERT_TRUE(
      WriteLaqFile(path, EventGenerator::CmsSchema(), batches, options)
          .ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->total_rows(), total);

  // Reassemble all rows and compare column-by-column via the doc-item
  // dump of a few sampled events (cheap deep equality across group
  // boundaries would require concatenation; instead verify per-group
  // equality against a freshly generated reference stream).
  EventGenerator reference(config);
  std::vector<RecordBatchPtr> reference_batches;
  for (int b = 0; b < num_batches; ++b) {
    reference_batches.push_back(
        reference.GenerateBatch(batches[static_cast<size_t>(b)]->num_rows()));
  }
  // Flatten reference to one event cursor.
  int64_t checked = 0;
  int ref_index = 0;
  int64_t ref_offset = 0;
  for (int g = 0; g < (*reader)->num_row_groups(); ++g) {
    auto batch = (*reader)->ReadRowGroup(g);
    ASSERT_TRUE(batch.ok());
    const auto& met = static_cast<const StructArray&>(
        *(*batch)->ColumnByName("MET"));
    const auto& met_pt =
        static_cast<const Float32Array&>(*met.ChildByName("pt"));
    const auto& jets = static_cast<const ListArray&>(
        *(*batch)->ColumnByName("Jet"));
    for (int64_t row = 0; row < (*batch)->num_rows(); ++row) {
      while (ref_offset >=
             reference_batches[static_cast<size_t>(ref_index)]->num_rows()) {
        ++ref_index;
        ref_offset = 0;
      }
      const auto& ref_batch =
          *reference_batches[static_cast<size_t>(ref_index)];
      const auto& ref_met = static_cast<const StructArray&>(
          *ref_batch.ColumnByName("MET"));
      const auto& ref_met_pt =
          static_cast<const Float32Array&>(*ref_met.ChildByName("pt"));
      const auto& ref_jets = static_cast<const ListArray&>(
          *ref_batch.ColumnByName("Jet"));
      ASSERT_FLOAT_EQ(met_pt.Value(row), ref_met_pt.Value(ref_offset));
      ASSERT_EQ(jets.list_length(row), ref_jets.list_length(ref_offset));
      ++ref_offset;
      ++checked;
    }
  }
  EXPECT_EQ(checked, total);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FileRoundTripProperty,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

// ---------------------------------------------------------------------------
// Failure injection: arbitrary truncation must error, never crash.
// ---------------------------------------------------------------------------

class TruncationProperty : public ::testing::TestWithParam<int> {};

TEST_P(TruncationProperty, TruncatedFilesFailCleanly) {
  EventGenerator generator;
  const std::string path = ::testing::TempDir() + "/trunc_base.laq";
  ASSERT_TRUE(WriteLaqFile(path, EventGenerator::CmsSchema(),
                           {generator.GenerateBatch(300)})
                  .ok());
  // Read the original file bytes.
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long size = std::ftell(f);
  std::fclose(f);

  const long keep = size * GetParam() / 100;
  const std::string truncated_path =
      ::testing::TempDir() + "/trunc_" + std::to_string(GetParam()) + ".laq";
  std::FILE* in = std::fopen(path.c_str(), "rb");
  std::FILE* out = std::fopen(truncated_path.c_str(), "wb");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  std::vector<char> buf(static_cast<size_t>(keep));
  ASSERT_EQ(std::fread(buf.data(), 1, buf.size(), in), buf.size());
  ASSERT_EQ(std::fwrite(buf.data(), 1, buf.size(), out), buf.size());
  std::fclose(in);
  std::fclose(out);

  auto reader = LaqReader::Open(truncated_path);
  if (reader.ok()) {
    // Footer happened to survive (only possible for keep=100)...
    for (int g = 0; g < (*reader)->num_row_groups(); ++g) {
      auto batch = (*reader)->ReadRowGroup(g);
      if (GetParam() < 100) {
        // ... data reads may still fail but must never crash.
        (void)batch;
      } else {
        EXPECT_TRUE(batch.ok());
      }
    }
  } else {
    EXPECT_FALSE(reader.status().ok());
  }
}

INSTANTIATE_TEST_SUITE_P(KeepPercent, TruncationProperty,
                         ::testing::Values(1, 10, 25, 50, 75, 90, 99, 100));

}  // namespace
}  // namespace hepq
