#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "engine/flat.h"
#include "fileio/writer.h"

namespace hepq::engine {
namespace {

/// Writes a three-event file:
///   event 0: MET 10; jets (pt): 50, 10, 45
///   event 1: MET 20; jets: 20
///   event 2: MET 30; jets: (none)
const std::string& TinyFile() {
  static const auto& path = *new std::string([] {
    auto schema = std::make_shared<Schema>(std::vector<Field>{
        {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
        {"Jet", DataType::List(DataType::Struct(
                    {{"pt", DataType::Float32()},
                     {"eta", DataType::Float32()}}))},
    });
    auto met = StructArray::Make({{"pt", DataType::Float32()}},
                                 {MakeFloat32Array({10, 20, 30})})
                   .ValueOrDie();
    auto jets = MakeListOfStructArray(
                    {{"pt", DataType::Float32()},
                     {"eta", DataType::Float32()}},
                    {0, 3, 4, 4},
                    {MakeFloat32Array({50, 10, 45, 20}),
                     MakeFloat32Array({0.5f, -2.0f, 1.5f, 0.0f})})
                    .ValueOrDie();
    auto batch = RecordBatch::Make(schema, {met, jets}).ValueOrDie();
    const std::string file = ::testing::TempDir() + "/flat_tiny.laq";
    WriteLaqFile(file, schema, {RecordBatchPtr(batch)}).Check();
    return file;
  }());
  return path;
}

TEST(FlatPipelineTest, NoUnnestFillsPerEvent) {
  FlatPipeline pipeline("q1");
  pipeline.AddKeepScalar("MET.pt");
  pipeline.AddHistogram({"met", "", 10, 0, 100}, FlatCol("MET.pt"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  auto result = pipeline.Execute(reader.get()).ValueOrDie();
  EXPECT_EQ(result.events_processed, 3);
  EXPECT_EQ(result.rows_materialized, 3u);
  EXPECT_EQ(result.histograms[0].num_entries(), 3u);
  EXPECT_DOUBLE_EQ(result.histograms[0].mean(), 20.0);
}

TEST(FlatPipelineTest, UnnestDropsParticleFreeEvents) {
  FlatPipeline pipeline("unnest");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddHistogram({"pt", "", 10, 0, 100}, FlatCol("j.pt"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  auto result = pipeline.Execute(reader.get()).ValueOrDie();
  // Inner-join semantics of CROSS JOIN UNNEST: event 2 vanishes.
  EXPECT_EQ(result.rows_materialized, 4u);
  EXPECT_EQ(result.histograms[0].num_entries(), 4u);
}

TEST(FlatPipelineTest, FilterThenProjectInRegistrationOrder) {
  FlatPipeline pipeline("chain");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddFilter(FlatGt(FlatCol("j.pt"), FlatLit(15.0)));
  pipeline.AddProject("double_pt",
                      FlatBin(BinOp::kMul, FlatCol("j.pt"), FlatLit(2.0)));
  pipeline.AddFilter(FlatLt(FlatCol("double_pt"), FlatLit(95.0)));
  pipeline.AddHistogram({"pt", "", 10, 0, 200}, FlatCol("double_pt"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  auto result = pipeline.Execute(reader.get()).ValueOrDie();
  // 50, 45, 20 pass the first filter; doubled: 100, 90, 40; < 95: 90, 40.
  EXPECT_EQ(result.histograms[0].num_entries(), 2u);
  EXPECT_DOUBLE_EQ(result.histograms[0].mean(), 65.0);
}

TEST(FlatPipelineTest, GroupByEventAggregates) {
  FlatPipeline pipeline("agg");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddKeepScalar("MET.pt");
  pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kCount, "", "", "n"});
  pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kSum, "j.pt", "", "sum"});
  pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kMin, "j.pt", "", "lo"});
  pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kMax, "j.pt", "", "hi"});
  pipeline.AddAggregate(
      FlatAggSpec{FlatAggKind::kFirst, "MET.pt", "", "met"});
  pipeline.AddAggregate(
      FlatAggSpec{FlatAggKind::kMinBy, "j.pt", "j.idx", "first_jet_pt"});
  // One histogram per aggregate output to observe each value.
  pipeline.AddHistogram({"n", "", 10, 0, 10}, FlatCol("n"));
  pipeline.AddHistogram({"sum", "", 10, 0, 200}, FlatCol("sum"));
  pipeline.AddHistogram({"met", "", 10, 0, 100}, FlatCol("met"));
  pipeline.AddHistogram({"fj", "", 10, 0, 100}, FlatCol("first_jet_pt"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  auto result = pipeline.Execute(reader.get()).ValueOrDie();
  EXPECT_EQ(result.groups, 2);  // events 0 and 1
  // n: {3, 1} -> mean 2; sum: {105, 20}; met: {10, 20};
  // min_by idx -> first jet pt {50, 20}.
  EXPECT_DOUBLE_EQ(result.histograms[0].mean(), 2.0);
  EXPECT_DOUBLE_EQ(result.histograms[1].mean(), 62.5);
  EXPECT_DOUBLE_EQ(result.histograms[2].mean(), 15.0);
  EXPECT_DOUBLE_EQ(result.histograms[3].mean(), 35.0);
}

TEST(FlatPipelineTest, HavingFiltersGroups) {
  FlatPipeline pipeline("having");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddKeepScalar("MET.pt");
  pipeline.AddAggregate(FlatAggSpec{FlatAggKind::kCount, "", "", "n"});
  pipeline.AddAggregate(
      FlatAggSpec{FlatAggKind::kFirst, "MET.pt", "", "met"});
  pipeline.AddHaving(FlatGe(FlatCol("n"), FlatLit(2.0)));
  pipeline.AddHistogram({"met", "", 10, 0, 100}, FlatCol("met"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  auto result = pipeline.Execute(reader.get()).ValueOrDie();
  EXPECT_EQ(result.histograms[0].num_entries(), 1u);
  EXPECT_DOUBLE_EQ(result.histograms[0].mean(), 10.0);
}

TEST(FlatPipelineTest, SelfJoinProducesFullProduct) {
  FlatPipeline pipeline("pairs");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "a"});
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "b"});
  pipeline.AddHistogram({"x", "", 10, 0, 200},
                        FlatBin(BinOp::kAdd, FlatCol("a.pt"),
                                FlatCol("b.pt")));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  auto result = pipeline.Execute(reader.get()).ValueOrDie();
  // Full Cartesian product per event: 3*3 + 1*1 = 10 rows (the plan-shape
  // cost the WHERE idx filter would then cut down).
  EXPECT_EQ(result.rows_materialized, 10u);
}

TEST(FlatPipelineTest, OrdinalsAreZeroBasedPerEvent) {
  FlatPipeline pipeline("ord");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddFilter(FlatBin(BinOp::kEq, FlatCol("j.idx"), FlatLit(0.0)));
  pipeline.AddHistogram({"lead", "", 10, 0, 100}, FlatCol("j.pt"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  auto result = pipeline.Execute(reader.get()).ValueOrDie();
  // Leading jets: 50 (event 0) and 20 (event 1).
  EXPECT_EQ(result.histograms[0].num_entries(), 2u);
  EXPECT_DOUBLE_EQ(result.histograms[0].mean(), 35.0);
}

TEST(FlatPipelineTest, UnknownColumnFailsAtPreparation) {
  FlatPipeline pipeline("bad");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt"}, "j"});
  pipeline.AddHistogram({"x", "", 10, 0, 1}, FlatCol("j.nope"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  EXPECT_EQ(pipeline.Execute(reader.get()).status().code(),
            StatusCode::kKeyError);
}

TEST(FlatPipelineTest, HavingWithoutAggregatesIsInvalid) {
  FlatPipeline pipeline("bad");
  pipeline.AddKeepScalar("MET.pt");
  pipeline.AddHaving(FlatGt(FlatCol("MET.pt"), FlatLit(0.0)));
  pipeline.AddHistogram({"x", "", 10, 0, 1}, FlatCol("MET.pt"));
  auto reader = LaqReader::Open(TinyFile()).ValueOrDie();
  EXPECT_EQ(pipeline.Execute(reader.get()).status().code(),
            StatusCode::kInvalid);
}

TEST(FlatPipelineTest, ProjectionCoversUnnestsAndScalars) {
  FlatPipeline pipeline("proj");
  pipeline.AddUnnest(UnnestList{"Jet", {"pt", "eta"}, "j"});
  pipeline.AddKeepScalar("MET.pt");
  EXPECT_EQ(pipeline.Projection(),
            (std::vector<std::string>{"Jet.pt", "Jet.eta", "MET.pt"}));
}

}  // namespace
}  // namespace hepq::engine
