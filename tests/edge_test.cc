// Edge cases across the stack: empty data sets, particle-free events,
// degenerate inputs — the situations interactive exploration hits first.

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "datagen/generator.h"
#include "fileio/corruption.h"
#include "fileio/reader.h"
#include "fileio/writer.h"
#include "queries/adl.h"
#include "queries/builders.h"
#include "rdf/rdf.h"

namespace hepq {
namespace {

/// A file whose events all have zero particles.
std::string EmptyParticlesFile() {
  const std::string path = ::testing::TempDir() + "/empty_particles.laq";
  GeneratorConfig config;
  config.jet_soft_mean = 0.0;
  config.jet_busy_fraction = 0.0;
  config.jet_very_busy_fraction = 0.0;
  config.muon_cumprob[0] = 1.0;  // always zero muons
  config.muon_cumprob[1] = 1.0;
  config.muon_cumprob[2] = 1.0;
  config.muon_cumprob[3] = 1.0;
  config.muon_cumprob[4] = 1.0;
  config.electron_mean = 0.0;
  config.photon_mean = 0.0;
  config.tau_mean = 0.0;
  config.z_to_mumu_fraction = 0.0;
  config.z_to_ee_fraction = 0.0;
  EventGenerator generator(config);
  WriteLaqFile(path, EventGenerator::CmsSchema(),
               {generator.GenerateBatch(500)})
      .Check();
  return path;
}

TEST(EdgeTest, ParticleFreeEventsAcrossAllEnginesAndQueries) {
  const std::string path = EmptyParticlesFile();
  for (int q = 1; q <= 8; ++q) {
    for (queries::EngineKind engine :
         {queries::EngineKind::kRdf, queries::EngineKind::kBigQueryShape,
          queries::EngineKind::kPrestoShape, queries::EngineKind::kDoc}) {
      auto result = queries::RunAdlQuery(engine, q, path);
      ASSERT_TRUE(result.ok())
          << "Q" << q << " on " << queries::EngineKindName(engine) << ": "
          << result.status().ToString();
      // Q1 sees every event; Q7 fills a zero sum per event; everything
      // else selects nothing.
      if (q == 1 || q == 7) {
        EXPECT_EQ(result->histograms[0].num_entries(), 500u);
      } else {
        EXPECT_EQ(result->histograms[0].num_entries(), 0u)
            << "Q" << q << " on " << queries::EngineKindName(engine);
      }
    }
  }
}

TEST(EdgeTest, SingleEventFile) {
  const std::string path = ::testing::TempDir() + "/one_event.laq";
  EventGenerator generator;
  WriteLaqFile(path, EventGenerator::CmsSchema(),
               {generator.GenerateBatch(1)})
      .Check();
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->total_rows(), 1);
  auto result =
      queries::RunAdlQuery(queries::EngineKind::kBigQueryShape, 1, path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->histograms[0].num_entries(), 1u);
}

TEST(EdgeTest, EmptyFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/zero_events.laq";
  auto writer = LaqWriter::Open(path, EventGenerator::CmsSchema());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->total_rows(), 0);
  EXPECT_EQ((*reader)->num_row_groups(), 0);
  // Every engine handles a file with no row groups.
  auto result = queries::RunAdlQuery(queries::EngineKind::kRdf, 1, path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->histograms[0].num_entries(), 0u);
  result = queries::RunAdlQuery(queries::EngineKind::kPrestoShape, 6, path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->histograms[0].num_entries(), 0u);
  result = queries::RunAdlQuery(queries::EngineKind::kDoc, 8, path);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->histograms[0].num_entries(), 0u);
}

TEST(EdgeTest, EmptyFileSurvivesTruncationSweep) {
  // A zero-row file is all structure (magic + footer + trailer): every
  // truncation of it must be rejected, never crash the footer parser.
  const std::string path = ::testing::TempDir() + "/zero_truncate.laq";
  auto writer = LaqWriter::Open(path, EventGenerator::CmsSchema());
  ASSERT_TRUE(writer.ok());
  ASSERT_TRUE((*writer)->Close().ok());
  auto image = laqfuzz::LoadLaqImage(path).ValueOrDie();
  const std::string mutated = ::testing::TempDir() + "/zero_truncated.laq";
  for (uint64_t size = 0; size < image.bytes.size(); ++size) {
    laqfuzz::WriteBytes(mutated, laqfuzz::TruncateAt(image, size)).Check();
    EXPECT_FALSE(LaqReader::Open(mutated).ok()) << "size " << size;
  }
}

TEST(EdgeTest, ParticleFreeFileReadsIdenticallyWithoutChecksums) {
  // All-empty lists stress the lengths/offsets fold; the answer must not
  // depend on whether CRC validation is on.
  const std::string path = EmptyParticlesFile();
  ReaderOptions with, without;
  with.validate_checksums = true;
  without.validate_checksums = false;
  auto a = LaqReader::Open(path, with).ValueOrDie()->ReadRowGroup(0);
  auto b = LaqReader::Open(path, without).ValueOrDie()->ReadRowGroup(0);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE((*a)->Equals(**b));
}

TEST(EdgeTest, RdfMoreThreadsThanRowGroups) {
  const std::string path = ::testing::TempDir() + "/one_event.laq";
  EventGenerator generator;
  WriteLaqFile(path, EventGenerator::CmsSchema(),
               {generator.GenerateBatch(10)})
      .Check();
  rdf::RdfOptions options;
  options.num_threads = 16;  // clamped to the single row group
  auto df = rdf::RDataFrame::Open(path, options).ValueOrDie();
  auto count = df->root().Count();
  ASSERT_TRUE(df->Run().ok());
  EXPECT_EQ(df->GetCount(count), 10);
}

TEST(EdgeTest, ExtremeKinematicValuesSurviveRoundTrip) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
      {"Jet",
       DataType::List(DataType::Struct({{"pt", DataType::Float32()}}))},
  });
  const float huge = 3.0e38f;
  const float tiny = 1.0e-38f;
  auto met = StructArray::Make({{"pt", DataType::Float32()}},
                               {MakeFloat32Array({huge, tiny, 0.0f})})
                 .ValueOrDie();
  auto jets = MakeListOfStructArray({{"pt", DataType::Float32()}},
                                    {0, 1, 2, 3},
                                    {MakeFloat32Array({huge, tiny, -1.0f})})
                  .ValueOrDie();
  auto batch = RecordBatch::Make(schema, {met, jets}).ValueOrDie();
  const std::string path = ::testing::TempDir() + "/extreme.laq";
  ASSERT_TRUE(WriteLaqFile(path, schema, {RecordBatchPtr(batch)}).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto back = (*reader)->ReadRowGroup(0);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE((*back)->Equals(*batch));
  // Statistics cover the extremes.
  const FileMetadata& meta = (*reader)->metadata();
  const int leaf = meta.LeafIndex("MET.pt");
  EXPECT_FLOAT_EQ(
      static_cast<float>(
          meta.row_groups[0].chunks[static_cast<size_t>(leaf)].max_value),
      huge);
}

TEST(EdgeTest, HistogramHandlesNonFiniteFills) {
  Histogram1D h({"h", "", 10, 0.0, 10.0});
  h.Fill(std::numeric_limits<double>::infinity());
  h.Fill(-std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_EQ(h.num_entries(), 2u);
}

TEST(EdgeTest, GeneratorZeroEventsBatch) {
  EventGenerator generator;
  auto batch = generator.GenerateBatch(0);
  EXPECT_EQ(batch->num_rows(), 0);
  EXPECT_EQ(generator.events_generated(), 0);
}

TEST(EdgeTest, Q6NeedsExactlyThreeJetsBoundary) {
  // An event with exactly 3 jets has exactly one trijet combination.
  auto query = queries::BuildAdlEventQuery(6).ValueOrDie();
  auto schema = EventGenerator::CmsSchema();
  GeneratorConfig config;
  config.jet_soft_mean = 3.0;
  EventGenerator generator(config);
  auto batch = generator.GenerateBatch(200);
  auto result = query.MakeResult();
  ASSERT_TRUE(query.ExecuteBatch(*batch, &result).ok());
  // Every selected event contributes exactly one entry to both plots.
  EXPECT_EQ(result.histograms[0].num_entries(),
            static_cast<uint64_t>(result.events_selected));
  EXPECT_EQ(result.histograms[1].num_entries(),
            static_cast<uint64_t>(result.events_selected));
}

}  // namespace
}  // namespace hepq
