// Tests for the vectorized expression bytecode (engine/vexpr): builder
// unit tests, a seeded randomized cross-check of the compiled kernel
// against the tree-walking interpreter (bit-identical values AND ops
// counters), and golden agreement of all 8 ADL queries across both plan
// shapes, both execution modes, and thread counts.

#include <cmath>
#include <cstdint>
#include <cstring>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "core/physics.h"
#include "datagen/dataset.h"
#include "engine/event_query.h"
#include "engine/vexpr.h"
#include "engine/vexpr_fuse.h"
#include "queries/adl.h"

namespace hepq::engine {
namespace {

uint64_t Bits(double v) {
  uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

// ---------------------------------------------------------------------------
// VProgramBuilder
// ---------------------------------------------------------------------------

TEST(VProgramBuilderTest, FoldsConstantSubtrees) {
  VProgramBuilder b;
  const int r = b.Op(VOp::kAdd, {b.Const(2.0), b.Const(3.0)});
  double v = 0.0;
  ASSERT_TRUE(b.IsConst(r, &v));
  EXPECT_EQ(v, 5.0);
  // Only the materialized result constant reaches the instruction stream.
  EXPECT_EQ(b.Finish(r).num_instrs(), 1);
}

TEST(VProgramBuilderTest, FoldingMatchesInterpreterHelpers) {
  VProgramBuilder b;
  double v = 0.0;
  ASSERT_TRUE(b.IsConst(b.Op(VOp::kDeltaPhi, {b.Const(0.5), b.Const(0.2)}),
                        &v));
  EXPECT_EQ(Bits(v), Bits(DeltaPhi(0.5, 0.2)));
  ASSERT_TRUE(b.IsConst(b.Op(VOp::kSqrt, {b.Const(2.0)}), &v));
  EXPECT_EQ(Bits(v), Bits(std::sqrt(2.0)));
}

TEST(VProgramBuilderTest, CseMergesIdenticalSubcomputations) {
  VProgramBuilder b;
  const int a = b.Op(VOp::kMul, {b.Load(0), b.Load(0)});
  const int c = b.Op(VOp::kMul, {b.Load(0), b.Load(0)});
  EXPECT_EQ(a, c);
  // load, mul, add — the repeated mul and loads were merged.
  EXPECT_EQ(b.Finish(b.Op(VOp::kAdd, {a, c})).num_instrs(), 3);
}

TEST(VProgramBuilderTest, ToStringDisassembles) {
  VProgramBuilder b;
  const std::string text =
      b.Finish(b.Op(VOp::kGt, {b.Load(1), b.Const(40.0)})).ToString();
  EXPECT_NE(text.find("load slot1"), std::string::npos);
  EXPECT_NE(text.find("const 40"), std::string::npos);
  EXPECT_NE(text.find("gt"), std::string::npos);
  EXPECT_NE(text.find("ret"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fusion pass (engine/vexpr_fuse): peephole rewrites, checked on the
// micro-op disassembly of small hand-built programs.
// ---------------------------------------------------------------------------

TEST(FusionPassTest, ImmediateAndCompareMaskFusion) {
  // (x > 40) && (y < 2.5): the comparisons take their constants as
  // immediates, the And absorbs its single-use rhs comparison, and the
  // splats die — 7 source ops fuse into 4 micro-ops.
  VProgramBuilder b;
  const int cut = b.Op(
      VOp::kAnd, {b.Op(VOp::kGt, {b.Load(0), b.Const(40.0)}),
                  b.Op(VOp::kLt, {b.Load(1), b.Const(2.5)})});
  const VProgram p = b.Finish(cut);
  ASSERT_NE(p.fused(), nullptr);
  const std::string text = p.fused()->ToString();
  SCOPED_TRACE(text);
  EXPECT_NE(text.find("gt_imm"), std::string::npos);
  EXPECT_NE(text.find("and_lt_imm"), std::string::npos);
  EXPECT_EQ(text.find("splat"), std::string::npos);  // dead splats removed
  EXPECT_EQ(p.fused()->num_micro_ops(), 4);
  EXPECT_EQ(p.fused()->num_source_ops(), 7);
}

TEST(FusionPassTest, NanImmediatesAreNeverFolded) {
  // A NaN comparand must stay a splat + reg-reg op: folding it into an
  // immediate form could change which NaN payload an arithmetic op
  // propagates. (The builder's constant folder doesn't touch Load ops,
  // so the NaN reaches the fusion pass.)
  VProgramBuilder b;
  const int r = b.Op(
      VOp::kAdd, {b.Load(0), b.Const(std::numeric_limits<double>::quiet_NaN())});
  const VProgram p = b.Finish(r);
  ASSERT_NE(p.fused(), nullptr);
  const std::string text = p.fused()->ToString();
  SCOPED_TRACE(text);
  EXPECT_NE(text.find("splat"), std::string::npos);
  EXPECT_EQ(text.find("add_imm"), std::string::npos);
}

TEST(FusionPassTest, GatherAbsorbsSingleUseLoadsOfCartesianKernels) {
  // Every operand of the mass kernel is a single-use load, so the loads
  // are absorbed: one micro-op reading eight slots directly.
  VProgramBuilder b;
  std::vector<int> args;
  for (int s = 0; s < 8; ++s) args.push_back(b.Load(s));
  const VProgram p = b.Finish(b.Op(VOp::kMassOfSum2, args));
  ASSERT_NE(p.fused(), nullptr);
  const std::string text = p.fused()->ToString();
  SCOPED_TRACE(text);
  EXPECT_NE(text.find("mass_of_sum2_g slot0"), std::string::npos);
  EXPECT_NE(text.find("slot7"), std::string::npos);
  EXPECT_EQ(text.find("load"), std::string::npos);
  EXPECT_EQ(p.fused()->num_micro_ops(), 1);
  EXPECT_EQ(p.fused()->num_source_ops(), 9);
}

TEST(FusionPassTest, GatherAbsorptionRejectsSharedLoads) {
  // CSE merges the duplicated Load(0), so that operand has two consumers
  // and absorption must leave the whole kernel in staged form.
  VProgramBuilder b;
  std::vector<int> args;
  for (int s = 0; s < 8; ++s) args.push_back(b.Load(s % 4));
  const VProgram p = b.Finish(b.Op(VOp::kMassOfSum2, args));
  ASSERT_NE(p.fused(), nullptr);
  const std::string text = p.fused()->ToString();
  SCOPED_TRACE(text);
  EXPECT_NE(text.find("load"), std::string::npos);
  EXPECT_EQ(text.find("mass_of_sum2_g"), std::string::npos);
  EXPECT_NE(text.find("mass_of_sum2"), std::string::npos);
}

TEST(PhysicsTest, DeltaPhiIsTotalOnNonFiniteInput) {
  // max() over an empty list yields -inf; feeding that into delta_phi used
  // to spin forever in the wrapping loop (found by the randomized trees).
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE(std::isnan(DeltaPhi(-inf, 0.3)));
  EXPECT_TRUE(std::isnan(DeltaPhi(0.3, inf)));
  EXPECT_TRUE(std::isnan(DeltaPhi(inf, inf)));
  EXPECT_TRUE(std::isnan(DeltaPhi(std::nan(""), 0.0)));
}

TEST(VProgramTest, RunsGathersAndSplats) {
  VProgramBuilder b;
  const int r = b.Op(VOp::kAdd, {b.Load(0), b.Const(1.5)});
  const VProgram p = b.Finish(r);
  const float data[4] = {1.0f, 2.0f, 3.0f, 4.0f};
  const uint32_t idx[3] = {3, 0, 2};
  VColumn col;
  col.type = TypeId::kFloat32;
  col.data = data;
  col.index = idx;
  VScratch scratch;
  double out[3] = {0, 0, 0};
  p.Run(&col, 3, &scratch, out);
  EXPECT_EQ(out[0], 5.5);
  EXPECT_EQ(out[1], 2.5);
  EXPECT_EQ(out[2], 4.5);
}

// ---------------------------------------------------------------------------
// Randomized compiled-vs-interpreted cross-check
// ---------------------------------------------------------------------------

/// Random event batch: Jet list with (pt, eta, phi, mass, charge) members
/// of mixed physical types plus MET.pt / MET.phi scalars.
RecordBatchPtr RandomBatch(std::mt19937* rng, int num_events) {
  std::uniform_int_distribution<int> njets(0, 6);
  std::uniform_real_distribution<float> pt(15.0f, 120.0f);
  std::uniform_real_distribution<float> eta(-2.5f, 2.5f);
  std::uniform_real_distribution<float> phi(-3.14f, 3.14f);
  std::uniform_real_distribution<float> mass(0.0f, 25.0f);
  std::bernoulli_distribution minus(0.5);

  std::vector<uint32_t> offsets{0};
  std::vector<float> jpt, jeta, jphi, jmass;
  std::vector<int32_t> jcharge;
  std::vector<float> met_pt, met_phi;
  for (int e = 0; e < num_events; ++e) {
    // Guarantee one non-empty event so top-level member reads of element 0
    // are in range, like the interpreter's default iterator binding.
    const int n = e == 0 ? 3 : njets(*rng);
    for (int j = 0; j < n; ++j) {
      jpt.push_back(pt(*rng));
      jeta.push_back(eta(*rng));
      jphi.push_back(phi(*rng));
      jmass.push_back(mass(*rng));
      jcharge.push_back(minus(*rng) ? -1 : 1);
    }
    offsets.push_back(static_cast<uint32_t>(jpt.size()));
    met_pt.push_back(pt(*rng));
    met_phi.push_back(phi(*rng));
  }

  const std::vector<Field> jet_fields{{"pt", DataType::Float32()},
                                      {"eta", DataType::Float32()},
                                      {"phi", DataType::Float32()},
                                      {"mass", DataType::Float32()},
                                      {"charge", DataType::Int32()}};
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"MET", DataType::Struct({{"pt", DataType::Float32()},
                                {"phi", DataType::Float32()}})},
      {"Jet", DataType::List(DataType::Struct(jet_fields))},
  });
  auto met = StructArray::Make({{"pt", DataType::Float32()},
                                {"phi", DataType::Float32()}},
                               {MakeFloat32Array(std::move(met_pt)),
                                MakeFloat32Array(std::move(met_phi))})
                 .ValueOrDie();
  auto jets = MakeListOfStructArray(jet_fields, std::move(offsets),
                                    {MakeFloat32Array(std::move(jpt)),
                                     MakeFloat32Array(std::move(jeta)),
                                     MakeFloat32Array(std::move(jphi)),
                                     MakeFloat32Array(std::move(jmass)),
                                     MakeInt32Array(std::move(jcharge))})
                  .ValueOrDie();
  return RecordBatch::Make(schema, {met, jets}).ValueOrDie();
}

/// Seeded random expression trees over the RandomBatch declarations:
/// list slot 0 = Jet (members pt, eta, phi, mass, charge), scalar slots
/// 0/1 = MET.pt / MET.phi. `in_iter` marks positions where iterator 1 is
/// bound (aggregate bodies), enabling per-element member reads and the
/// kinematic calls that exercise the decomposed Cartesian path.
class RandomExprGen {
 public:
  explicit RandomExprGen(uint64_t seed) : rng_(seed) {}

  ExprPtr Gen(int depth, bool in_iter) {
    if (depth <= 0) return Leaf(in_iter);
    switch (Pick(in_iter ? 9 : 10)) {
      case 0:
        return Bin(static_cast<BinOp>(Pick(4)),  // + - * /
                   Gen(depth - 1, in_iter), Gen(depth - 1, in_iter));
      case 1:
        return Bin(static_cast<BinOp>(4 + Pick(6)),  // < <= > >= == !=
                   Gen(depth - 1, in_iter), Gen(depth - 1, in_iter));
      case 2: {
        const ExprPtr l = Gen(depth - 1, in_iter);
        const ExprPtr r = Gen(depth - 1, in_iter);
        return Pick(2) == 0 ? And(l, r) : Or(l, r);
      }
      case 3:
        return Abs(Gen(depth - 1, in_iter));
      case 4:
        return Call(Fn::kSqrt, {Abs(Gen(depth - 1, in_iter))});
      case 5:
        return Not(Gen(depth - 1, in_iter));
      case 6:
        return Call(Fn::kMin2,
                    {Gen(depth - 1, in_iter), Gen(depth - 1, in_iter)});
      case 7:
        return Call(Fn::kDeltaPhi,
                    {Gen(depth - 1, in_iter), Gen(depth - 1, in_iter)});
      case 8:
        return in_iter ? Kinematic() : Leaf(false);
      default:
        return Agg(depth);
    }
  }

 private:
  std::mt19937 rng_;

  int Pick(int n) {
    return std::uniform_int_distribution<int>(0, n - 1)(rng_);
  }

  ExprPtr Leaf(bool in_iter) {
    switch (Pick(in_iter ? 5 : 3)) {
      case 0:
        return Lit(static_cast<double>(Pick(41) - 20) * 0.5);
      case 1:
        return ScalarRef(Pick(2));
      case 2:
        return ListSize(0);
      case 3:
        return IterMember(0, 1, Pick(5));
      default:
        return IterOrdinal(0, 1);
    }
  }

  /// InvMass2 / InvMass3 / SumPt3 over (pt, eta, phi, mass) member quads —
  /// the decomposed Cartesian fast path. One variant swaps a quad member
  /// for a literal so the generic per-lane opcode fallback stays covered.
  ExprPtr Kinematic() {
    const auto quad = [&]() -> std::vector<ExprPtr> {
      return {IterMember(0, 1, 0), IterMember(0, 1, 1), IterMember(0, 1, 2),
              IterMember(0, 1, 3)};
    };
    std::vector<ExprPtr> args = quad();
    std::vector<ExprPtr> b = quad();
    args.insert(args.end(), b.begin(), b.end());
    switch (Pick(4)) {
      case 0:
        return Call(Fn::kInvMass2, std::move(args));
      case 1: {
        args[5] = Lit(1.0);  // not a pure member quad: generic opcode
        return Call(Fn::kInvMass2, std::move(args));
      }
      default: {
        std::vector<ExprPtr> c = quad();
        args.insert(args.end(), c.begin(), c.end());
        return Call(Pick(2) == 0 ? Fn::kInvMass3 : Fn::kSumPt3,
                    std::move(args));
      }
    }
  }

  ExprPtr Agg(int depth) {
    const AggKind kind = static_cast<AggKind>(Pick(5));
    const ExprPtr filter =
        Pick(2) == 0 ? Gen(depth - 1, /*in_iter=*/true) : nullptr;
    const bool needs_value = kind == AggKind::kSum || kind == AggKind::kMin ||
                             kind == AggKind::kMax;
    const ExprPtr value = needs_value || Pick(2) == 0
                              ? Gen(depth - 1, /*in_iter=*/true)
                              : nullptr;
    return AggOverList(kind, 0, 1, filter, value);
  }
};

TEST(CompiledKernelTest, RandomTreesMatchInterpreterBitForBit) {
  std::mt19937 data_rng(20120601);
  const RecordBatchPtr batch = RandomBatch(&data_rng, 64);
  const BatchBindings bindings =
      BatchBindings::Bind(*batch,
                          {{"Jet", {"pt", "eta", "phi", "mass", "charge"}, {}}},
                          {{"MET.pt"}, {"MET.phi"}})
          .ValueOrDie();
  const int64_t rows = batch->num_rows();

  VexprScratch scratch;
  std::vector<double> compiled(static_cast<size_t>(rows));
  for (uint64_t seed = 1; seed <= 60; ++seed) {
    RandomExprGen gen(seed);
    const ExprPtr tree = gen.Gen(/*depth=*/4, /*in_iter=*/false);
    SCOPED_TRACE("seed " + std::to_string(seed) + ": " + tree->ToString());

    auto kernel = CompiledExprKernel::Compile(tree);
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();

    uint64_t interp_ops = 0;
    std::vector<double> expected(static_cast<size_t>(rows));
    for (int64_t row = 0; row < rows; ++row) {
      EvalContext ctx;
      ctx.bindings = &bindings;
      ctx.row = static_cast<uint32_t>(row);
      expected[static_cast<size_t>(row)] = tree->Eval(&ctx);
      interp_ops += ctx.ops;
    }

    // Both VM tiers: bytecode loops and the fused strip kernels.
    for (const bool simd : {false, true}) {
      SCOPED_TRACE(simd ? "simd" : "bytecode");
      scratch.vm.set_simd(simd);
      uint64_t compiled_ops = 0;
      ASSERT_TRUE(kernel
                      ->Eval(bindings, rows, &scratch, compiled.data(),
                             &compiled_ops)
                      .ok());
      for (int64_t row = 0; row < rows; ++row) {
        EXPECT_EQ(Bits(compiled[static_cast<size_t>(row)]),
                  Bits(expected[static_cast<size_t>(row)]))
            << "row " << row;
      }
      EXPECT_EQ(compiled_ops, interp_ops);
    }
  }
}

TEST(CompiledKernelTest, CombinationInValuePositionKeepsBindingSemantics) {
  // The interpreter leaves a search's winners bound for sibling subtrees;
  // the kernel must reproduce that (it falls back to a whole-tree walk).
  std::mt19937 data_rng(7);
  const RecordBatchPtr batch = RandomBatch(&data_rng, 32);
  const BatchBindings bindings =
      BatchBindings::Bind(*batch,
                          {{"Jet", {"pt", "eta", "phi", "mass", "charge"}, {}}},
                          {{"MET.pt"}, {"MET.phi"}})
          .ValueOrDie();
  const int64_t rows = batch->num_rows();
  // Highest-pt-sum pair, then read the winning pair's leading jet pt.
  const ExprPtr tree =
      Mul(BestCombination({{0, 0}, {0, 1}}, nullptr,
                          Sub(Lit(0.0), Add(IterMember(0, 0, 0),
                                            IterMember(0, 1, 0)))),
          IterMember(0, 0, 0));
  auto kernel = CompiledExprKernel::Compile(tree);
  ASSERT_TRUE(kernel.ok());
  VexprScratch scratch;
  std::vector<double> compiled(static_cast<size_t>(rows));
  uint64_t compiled_ops = 0;
  ASSERT_TRUE(
      kernel->Eval(bindings, rows, &scratch, compiled.data(), &compiled_ops)
          .ok());
  uint64_t interp_ops = 0;
  for (int64_t row = 0; row < rows; ++row) {
    EvalContext ctx;
    ctx.bindings = &bindings;
    ctx.row = static_cast<uint32_t>(row);
    const double expected = tree->Eval(&ctx);
    interp_ops += ctx.ops;
    EXPECT_EQ(Bits(compiled[static_cast<size_t>(row)]), Bits(expected));
  }
  EXPECT_EQ(compiled_ops, interp_ops);
}

/// Hand-placed adversarial values: NaN and ±inf scalars, NaN jet members,
/// an empty jet list (aggregate identities ±inf flow out of it), and
/// signed zeros. Same declarations as RandomBatch.
RecordBatchPtr AdversarialBatch() {
  const float finf = std::numeric_limits<float>::infinity();
  const float fnan = std::numeric_limits<float>::quiet_NaN();
  std::vector<float> met_pt{fnan, finf, -finf, 30.0f, 0.0f, -0.0f, 20.0f,
                            50.0f};
  std::vector<float> met_phi{0.3f, -finf, fnan, finf, 3.1f, -3.1f, fnan,
                             -0.0f};
  const int num_events = static_cast<int>(met_pt.size());
  std::vector<uint32_t> offsets{0};
  std::vector<float> jpt, jeta, jphi, jmass;
  std::vector<int32_t> jcharge;
  for (int e = 0; e < num_events; ++e) {
    const int n = e == 0 ? 3 : (e == 1 ? 0 : 2);  // event 1 is empty
    for (int j = 0; j < n; ++j) {
      const bool poison = e >= 4 && j == 0;
      jpt.push_back(poison ? fnan : 30.0f + static_cast<float>(e + j));
      jeta.push_back(poison ? finf : 0.1f * static_cast<float>(j - 1));
      jphi.push_back(poison ? -finf : 0.5f * static_cast<float>(e - 3));
      jmass.push_back(poison ? fnan : 5.0f);
      jcharge.push_back(j % 2 == 0 ? 1 : -1);
    }
    offsets.push_back(static_cast<uint32_t>(jpt.size()));
  }
  const std::vector<Field> jet_fields{{"pt", DataType::Float32()},
                                      {"eta", DataType::Float32()},
                                      {"phi", DataType::Float32()},
                                      {"mass", DataType::Float32()},
                                      {"charge", DataType::Int32()}};
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"MET", DataType::Struct({{"pt", DataType::Float32()},
                                {"phi", DataType::Float32()}})},
      {"Jet", DataType::List(DataType::Struct(jet_fields))},
  });
  auto met = StructArray::Make({{"pt", DataType::Float32()},
                                {"phi", DataType::Float32()}},
                               {MakeFloat32Array(std::move(met_pt)),
                                MakeFloat32Array(std::move(met_phi))})
                 .ValueOrDie();
  auto jets = MakeListOfStructArray(jet_fields, std::move(offsets),
                                    {MakeFloat32Array(std::move(jpt)),
                                     MakeFloat32Array(std::move(jeta)),
                                     MakeFloat32Array(std::move(jphi)),
                                     MakeFloat32Array(std::move(jmass)),
                                     MakeInt32Array(std::move(jcharge))})
                  .ValueOrDie();
  return RecordBatch::Make(schema, {met, jets}).ValueOrDie();
}

TEST(CompiledKernelTest, AdversarialNanInfAgreeAcrossAllTiers) {
  // Regression companion to the float-ordering audit: NaN payloads,
  // non-finite aggregate identities, NaN-asymmetric min/max operand
  // orders, and always-false NaN comparisons must come out bit-identical
  // from the interpreter, the bytecode loops, and the fused kernels.
  const RecordBatchPtr batch = AdversarialBatch();
  const BatchBindings bindings =
      BatchBindings::Bind(*batch,
                          {{"Jet", {"pt", "eta", "phi", "mass", "charge"}, {}}},
                          {{"MET.pt"}, {"MET.phi"}})
          .ValueOrDie();
  const int64_t rows = batch->num_rows();

  const auto quad = [](int iter) -> std::vector<ExprPtr> {
    return {IterMember(0, iter, 0), IterMember(0, iter, 1),
            IterMember(0, iter, 2), IterMember(0, iter, 3)};
  };
  std::vector<ExprPtr> mass_args = quad(1);
  {
    std::vector<ExprPtr> b = quad(1);
    mass_args.insert(mass_args.end(), b.begin(), b.end());
  }
  std::vector<ExprPtr> trees;
  trees.push_back(Call(Fn::kDeltaPhi, {ScalarRef(1), Lit(0.3)}));
  // max over an empty list is -inf; delta_phi must stay total on it.
  trees.push_back(Call(
      Fn::kDeltaPhi,
      {AggOverList(AggKind::kMax, 0, 1, nullptr, IterMember(0, 1, 2)),
       ScalarRef(1)}));
  // std::min/std::max are operand-order-asymmetric under NaN: both orders.
  trees.push_back(Call(Fn::kMin2, {ScalarRef(0), ScalarRef(1)}));
  trees.push_back(Call(Fn::kMin2, {ScalarRef(1), ScalarRef(0)}));
  trees.push_back(Call(Fn::kMax2, {ScalarRef(0), ScalarRef(1)}));
  // NaN comparisons are false on every tier, also through the fused
  // compare+mask and immediate forms.
  trees.push_back(And(Gt(ScalarRef(0), Lit(25.0)),
                      Lt(Abs(Call(Fn::kDeltaPhi, {ScalarRef(1), Lit(0.4)})),
                         Lit(1.5))));
  trees.push_back(Not(Ge(ScalarRef(0), ScalarRef(0))));
  // NaN members through the SoA mass kernel (m2 clamp sees NaN).
  trees.push_back(
      AggOverList(AggKind::kSum, 0, 1, nullptr,
                  Call(Fn::kInvMass2, std::move(mass_args))));
  // Float-ordering audit witness: a left-to-right sum over NaN/inf jets.
  trees.push_back(AggOverList(AggKind::kSum, 0, 1, nullptr,
                              IterMember(0, 1, 0)));

  VexprScratch scratch;
  std::vector<double> compiled(static_cast<size_t>(rows));
  for (const ExprPtr& tree : trees) {
    SCOPED_TRACE(tree->ToString());
    auto kernel = CompiledExprKernel::Compile(tree);
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    for (const bool simd : {false, true}) {
      SCOPED_TRACE(simd ? "simd" : "bytecode");
      scratch.vm.set_simd(simd);
      uint64_t ops = 0;
      ASSERT_TRUE(
          kernel->Eval(bindings, rows, &scratch, compiled.data(), &ops).ok());
      for (int64_t row = 0; row < rows; ++row) {
        EvalContext ctx;
        ctx.bindings = &bindings;
        ctx.row = static_cast<uint32_t>(row);
        EXPECT_EQ(Bits(compiled[static_cast<size_t>(row)]),
                  Bits(tree->Eval(&ctx)))
            << "row " << row;
      }
    }
  }
}

TEST(CompiledKernelTest, GateMatchesEvalPlusCompactionAcrossDensities) {
  // The fused gate (evaluate + compact in one strip pass) must select
  // exactly the lanes an Eval + `!= 0.0` compaction selects, on both VM
  // tiers, from all-pass through sparse to empty selections.
  std::mt19937 data_rng(11);
  const RecordBatchPtr batch = RandomBatch(&data_rng, 96);
  const BatchBindings bindings =
      BatchBindings::Bind(*batch,
                          {{"Jet", {"pt", "eta", "phi", "mass", "charge"}, {}}},
                          {{"MET.pt"}, {"MET.phi"}})
          .ValueOrDie();
  const int64_t rows = batch->num_rows();
  for (const double threshold : {-1.0, 60.0, 1e9}) {
    const ExprPtr cut = Gt(ScalarRef(0), Lit(threshold));
    SCOPED_TRACE(cut->ToString());
    auto kernel = CompiledExprKernel::Compile(cut);
    ASSERT_TRUE(kernel.ok()) << kernel.status().ToString();
    VexprScratch scratch;
    std::vector<double> values(static_cast<size_t>(rows));
    std::vector<uint32_t> expect_sel, gate_sel(static_cast<size_t>(rows));
    for (const bool simd : {false, true}) {
      SCOPED_TRACE(simd ? "simd" : "bytecode");
      scratch.vm.set_simd(simd);
      uint64_t eval_ops = 0;
      ASSERT_TRUE(
          kernel->Eval(bindings, rows, &scratch, values.data(), &eval_ops)
              .ok());
      expect_sel.clear();
      for (int64_t row = 0; row < rows; ++row) {
        if (values[static_cast<size_t>(row)] != 0.0) {
          expect_sel.push_back(static_cast<uint32_t>(row));
        }
      }
      uint64_t gate_ops = 0;
      const auto count =
          kernel->Gate(bindings, rows, &scratch, gate_sel.data(), &gate_ops);
      ASSERT_TRUE(count.ok()) << count.status().ToString();
      ASSERT_EQ(static_cast<size_t>(*count), expect_sel.size());
      for (size_t i = 0; i < expect_sel.size(); ++i) {
        EXPECT_EQ(gate_sel[i], expect_sel[i]) << "position " << i;
      }
      EXPECT_EQ(gate_ops, eval_ops);
    }
  }
}

TEST(BindingsTest, NonPrimitiveLeafRejectedAtBindWithTypeName) {
  std::mt19937 data_rng(3);
  const RecordBatchPtr batch = RandomBatch(&data_rng, 4);
  // "Jet" as a scalar leaf is a list column — rejected when the accessor
  // is built, never silently read as 0.0 at evaluation time.
  auto bound = BatchBindings::Bind(*batch, {}, {{"Jet"}});
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().ToString().find("primitive"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Golden agreement: 8 queries x both plan shapes x all three execution
// tiers x {1, 4} threads, all bit-identical.
// ---------------------------------------------------------------------------

const std::string& GoldenDataset() {
  static const auto& path = *new std::string([] {
    DatasetSpec spec;
    spec.num_events = 4000;
    spec.row_group_size = 1000;
    return EnsureDataset(::testing::TempDir() + "/hepq_vexpr", spec)
        .ValueOrDie();
  }());
  return path;
}

void ExpectSameBits(const Histogram1D& a, const Histogram1D& b) {
  EXPECT_EQ(a.num_entries(), b.num_entries());
  EXPECT_EQ(a.sum_weights(), b.sum_weights());
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  for (int i = 0; i < a.spec().num_bins; ++i) {
    EXPECT_EQ(a.BinContent(i), b.BinContent(i)) << "bin " << i;
  }
}

class CompiledInterpretedGolden : public ::testing::TestWithParam<int> {};

TEST_P(CompiledInterpretedGolden, BitIdenticalAcrossExecModeAndThreads) {
  const int q = GetParam();
  using queries::EngineKind;
  using queries::VexprTier;
  for (EngineKind engine :
       {EngineKind::kBigQueryShape, EngineKind::kPrestoShape}) {
    queries::RunOptions ref_options;
    ref_options.vexpr_tier = VexprTier::kInterpret;
    const auto reference =
        queries::RunAdlQuery(engine, q, GoldenDataset(), ref_options);
    ASSERT_TRUE(reference.ok()) << reference.status().ToString();
    for (const VexprTier tier :
         {VexprTier::kInterpret, VexprTier::kBytecode, VexprTier::kSimd}) {
      for (const int threads : {1, 4}) {
        if (tier == VexprTier::kInterpret && threads == 1)
          continue;  // the reference run
        queries::RunOptions options;
        options.vexpr_tier = tier;
        options.num_threads = threads;
        const auto run =
            queries::RunAdlQuery(engine, q, GoldenDataset(), options);
        ASSERT_TRUE(run.ok()) << run.status().ToString();
        SCOPED_TRACE(std::string(queries::EngineKindName(engine)) + " " +
                     queries::VexprTierName(tier) + " threads " +
                     std::to_string(threads));
        EXPECT_EQ(run->events_processed, reference->events_processed);
        EXPECT_EQ(run->ops, reference->ops);  // Table 2 counter fidelity
        ASSERT_EQ(run->histograms.size(), reference->histograms.size());
        for (size_t h = 0; h < run->histograms.size(); ++h) {
          ExpectSameBits(run->histograms[h], reference->histograms[h]);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CompiledInterpretedGolden,
                         ::testing::Range(1, 9));

}  // namespace
}  // namespace hepq::engine
