// Unit tests for the process-wide metrics registry: registration
// identity, enabled gating, striped-counter exactness under concurrent
// hammering (run under TSan in CI), bucket boundaries, snapshot/merge
// determinism, exposition formats, and the zero-allocation warm path.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

// ---------------------------------------------------------------------------
// Allocation-counting hook (same shape as obs_test.cc): every global
// operator new bumps a counter so the warm-path test below can assert
// that Add/Observe/Set allocate nothing after registration.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_heap_allocations{0};
}  // namespace

#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  g_heap_allocations.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size > 0 ? size : 1)) return p;
  throw std::bad_alloc();
}

void* operator new[](std::size_t size) { return operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace hepq::obs::metrics {
namespace {

/// Every test starts from a clean, enabled registry and restores the
/// process default (disabled) afterwards, so test order cannot leak
/// accumulated values or the enabled flag.
class MetricsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ResetMetricsForTest();
    SetMetricsEnabled(true);
  }
  void TearDown() override {
    SetMetricsEnabled(false);
    ResetMetricsForTest();
  }
};

TEST_F(MetricsTest, SameNameReturnsSameInstance) {
  Counter& a = GetCounter("test_identity_total");
  Counter& b = GetCounter("test_identity_total");
  EXPECT_EQ(&a, &b);
  Gauge& g1 = GetGauge("test_identity_gauge");
  Gauge& g2 = GetGauge("test_identity_gauge");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = GetHistogram("test_identity_ns");
  Histogram& h2 = GetHistogram("test_identity_ns");
  EXPECT_EQ(&h1, &h2);
}

TEST_F(MetricsTest, DisabledInstrumentsAccumulateNothing) {
  Counter& c = GetCounter("test_gated_total");
  Gauge& g = GetGauge("test_gated_gauge");
  Histogram& h = GetHistogram("test_gated_ns");
  SetMetricsEnabled(false);
  c.Add(7);
  g.Set(42);
  g.Add(1);
  h.Observe(5000);
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(g.Value(), 0);
  EXPECT_EQ(h.TotalCount(), 0u);
  SetMetricsEnabled(true);
  c.Add(7);
  g.Set(42);
  h.Observe(5000);
  EXPECT_EQ(c.Value(), 7u);
  EXPECT_EQ(g.Value(), 42);
  EXPECT_EQ(h.TotalCount(), 1u);
}

// The striped counter must lose no increments under maximal contention:
// more threads than stripes, each adding a known total. Run under TSan in
// CI, this also proves the stripe cells race-free.
TEST_F(MetricsTest, ConcurrentIncrementsAreExact) {
  Counter& c = GetCounter("test_hammer_total");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Add(1);
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(c.Value(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kPerThread));
}

TEST_F(MetricsTest, ConcurrentHistogramObservationsAreExact) {
  Histogram& h = GetHistogram("test_hammer_ns");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(1000 + 1000 * t);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(h.TotalCount(),
            static_cast<uint64_t>(kThreads) * static_cast<uint64_t>(kPerThread));
  uint64_t bucket_sum = 0;
  for (int b = 0; b <= kHistogramBuckets; ++b) bucket_sum += h.BucketCount(b);
  EXPECT_EQ(bucket_sum, h.TotalCount());
}

TEST_F(MetricsTest, HistogramBucketBoundaries) {
  // Bucket 0 holds everything up to 1024 ns inclusive (including <= 0).
  EXPECT_EQ(Histogram::BucketFor(-5), 0);
  EXPECT_EQ(Histogram::BucketFor(0), 0);
  EXPECT_EQ(Histogram::BucketFor(1024), 0);
  EXPECT_EQ(Histogram::BucketFor(1025), 1);
  EXPECT_EQ(Histogram::BucketFor(2048), 1);
  EXPECT_EQ(Histogram::BucketFor(2049), 2);
  // Last finite bucket's bound, then overflow.
  EXPECT_EQ(Histogram::BucketFor(HistogramBucketBoundNs(kHistogramBuckets - 1)),
            kHistogramBuckets - 1);
  EXPECT_EQ(
      Histogram::BucketFor(HistogramBucketBoundNs(kHistogramBuckets - 1) + 1),
      kHistogramBuckets);
  EXPECT_EQ(Histogram::BucketFor(int64_t{1} << 62), kHistogramBuckets);
}

TEST_F(MetricsTest, SnapshotIsSortedByName) {
  GetCounter("test_zz_total").Add(1);
  GetCounter("test_aa_total").Add(2);
  GetGauge("test_mm_gauge").Set(3);
  const std::vector<MetricSample> samples = SnapshotMetrics();
  ASSERT_GE(samples.size(), 3u);
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i - 1].name, samples[i].name);
  }
}

TEST_F(MetricsTest, MergeSumsByNameAndAppendsNew) {
  std::vector<MetricSample> into;
  {
    MetricSample c;
    c.name = "shared_total";
    c.kind = MetricKind::kCounter;
    c.value = 10;
    into.push_back(c);
  }
  std::vector<MetricSample> from;
  {
    MetricSample c;
    c.name = "shared_total";
    c.kind = MetricKind::kCounter;
    c.value = 32;
    from.push_back(c);
    MetricSample h;
    h.name = "only_from_ns";
    h.kind = MetricKind::kHistogram;
    h.buckets.assign(kHistogramBuckets + 1, 0);
    h.buckets[2] = 5;
    h.observations = 5;
    h.sum_ns = 12345;
    from.push_back(h);
  }
  // `from` arrives sorted (snapshot order); `into` gains the union.
  MergeMetricSamples(&into, from);
  ASSERT_EQ(into.size(), 2u);
  EXPECT_EQ(into[0].name, "only_from_ns");
  EXPECT_EQ(into[0].observations, 5u);
  EXPECT_EQ(into[0].buckets[2], 5u);
  EXPECT_EQ(into[1].name, "shared_total");
  EXPECT_EQ(into[1].value, 42);

  // Merging the same samples again doubles the sums (associative fold).
  MergeMetricSamples(&into, from);
  EXPECT_EQ(into[1].value, 74);
  EXPECT_EQ(into[0].observations, 10u);
}

TEST_F(MetricsTest, PrometheusExpositionShape) {
  GetCounter("test_expo_total").Add(3);
  GetGauge("test_expo_gauge").Set(-7);
  GetHistogram("test_expo_ns").Observe(1500);  // bucket 1
  const std::string text = MetricsToPrometheus(SnapshotMetrics());
  EXPECT_NE(text.find("# TYPE test_expo_total counter"), std::string::npos);
  EXPECT_NE(text.find("test_expo_total 3"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_gauge gauge"), std::string::npos);
  EXPECT_NE(text.find("test_expo_gauge -7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE test_expo_ns histogram"), std::string::npos);
  // Cumulative buckets: the 1500ns observation is in every le >= 2048.
  EXPECT_NE(text.find("test_expo_ns_bucket{le=\"1024\"} 0"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_ns_bucket{le=\"2048\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_ns_bucket{le=\"+Inf\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("test_expo_ns_sum 1500"), std::string::npos);
  EXPECT_NE(text.find("test_expo_ns_count 1"), std::string::npos);
}

TEST_F(MetricsTest, PrometheusLabeledCounterKeepsOneTypeLine) {
  GetCounter("test_labeled_total{engine=\"rdf\"}").Add(1);
  GetCounter("test_labeled_total{engine=\"doc\"}").Add(2);
  const std::string text = MetricsToPrometheus(SnapshotMetrics());
  // One TYPE comment for the base name, two labeled sample lines.
  size_t type_count = 0;
  for (size_t at = text.find("# TYPE test_labeled_total counter");
       at != std::string::npos;
       at = text.find("# TYPE test_labeled_total counter", at + 1)) {
    ++type_count;
  }
  EXPECT_EQ(type_count, 1u);
  EXPECT_NE(text.find("test_labeled_total{engine=\"doc\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("test_labeled_total{engine=\"rdf\"} 1"),
            std::string::npos);
}

TEST_F(MetricsTest, JsonExpositionParsesShape) {
  GetCounter("test_json_total").Add(9);
  const std::string json = MetricsToJson(SnapshotMetrics());
  EXPECT_NE(json.find("\"bucket_bounds_ns\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  EXPECT_NE(json.find("\"test_json_total\""), std::string::npos);
}

// The cost contract: after a site's one-time registration, Add/Observe/
// Set heap-allocate nothing — enabled or not — and the disabled path is
// just the atomic load.
TEST_F(MetricsTest, WarmPathAllocatesNothing) {
  Counter& c = GetCounter("test_noalloc_total");
  Gauge& g = GetGauge("test_noalloc_gauge");
  Histogram& h = GetHistogram("test_noalloc_ns");
  // Warm the calling thread's stripe assignment (itself allocation-free,
  // but keep the measured region minimal and unambiguous).
  c.Add(1);
  h.Observe(100);

  const uint64_t before = g_heap_allocations.load();
  for (int i = 0; i < 10000; ++i) {
    c.Add(1);
    g.Set(i);
    g.Add(1);
    h.Observe(1000 + i);
  }
  SetMetricsEnabled(false);
  for (int i = 0; i < 10000; ++i) {
    c.Add(1);
    h.Observe(1000 + i);
  }
  SetMetricsEnabled(true);
  EXPECT_EQ(g_heap_allocations.load(), before);
}

TEST_F(MetricsTest, ResetZeroesValuesButKeepsRegistrations) {
  Counter& c = GetCounter("test_reset_total");
  c.Add(5);
  EXPECT_EQ(c.Value(), 5u);
  ResetMetricsForTest();
  EXPECT_EQ(c.Value(), 0u);
  EXPECT_EQ(&GetCounter("test_reset_total"), &c);
}

}  // namespace
}  // namespace hepq::obs::metrics
