#include <cmath>
#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "fileio/reader.h"
#include "fileio/writer.h"

namespace hepq {
namespace {

/// Builds a small two-row-capable schema exercising every column shape:
/// primitive, struct, list<struct>, list<primitive>.
SchemaPtr TestSchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"event", DataType::Int64()},
      {"trigger", DataType::Bool()},
      {"MET", DataType::Struct({{"pt", DataType::Float32()},
                                {"phi", DataType::Float32()}})},
      {"Jet", DataType::List(DataType::Struct(
                  {{"pt", DataType::Float32()},
                   {"charge", DataType::Int32()}}))},
      {"weights", DataType::List(DataType::Float64())},
  });
}

RecordBatchPtr TestBatch(int64_t base) {
  auto schema = TestSchema();
  auto met = StructArray::Make(
                 {{"pt", DataType::Float32()}, {"phi", DataType::Float32()}},
                 {MakeFloat32Array({10.5f + base, 20.5f + base, 30.5f + base}),
                  MakeFloat32Array({0.1f, 0.2f, 0.3f})})
                 .ValueOrDie();
  auto jets =
      MakeListOfStructArray({{"pt", DataType::Float32()},
                             {"charge", DataType::Int32()}},
                            {0, 2, 2, 5},
                            {MakeFloat32Array({1, 2, 3, 4, 5}),
                             MakeInt32Array({1, -1, 1, -1, 1})})
          .ValueOrDie();
  auto weights =
      ListArray::Make({0, 1, 3, 3}, MakeFloat64Array({0.5, 1.5, 2.5}))
          .ValueOrDie();
  return RecordBatch::Make(
             schema,
             {MakeInt64Array({base, base + 1, base + 2}),
              MakeBoolArray({1, 0, 1}), met, ArrayPtr(jets),
              ArrayPtr(weights)})
      .ValueOrDie();
}

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

TEST(LeafLayoutTest, ShredsAllShapes) {
  auto layout = ComputeLeafLayout(*TestSchema());
  ASSERT_TRUE(layout.ok());
  std::vector<std::string> paths;
  for (const LeafDesc& leaf : *layout) paths.push_back(leaf.path);
  EXPECT_EQ(paths,
            (std::vector<std::string>{"event", "trigger", "MET.pt",
                                      "MET.phi", "Jet#lengths", "Jet.pt",
                                      "Jet.charge", "weights#lengths",
                                      "weights.item"}));
}

TEST(LeafLayoutTest, RejectsDeepNesting) {
  Schema bad({{"x", DataType::List(DataType::List(DataType::Float32()))}});
  EXPECT_EQ(ComputeLeafLayout(bad).status().code(),
            StatusCode::kNotImplemented);
}

TEST(MetadataTest, SerializationRoundTrip) {
  FileMetadata meta;
  meta.schema = *TestSchema();
  meta.layout = ComputeLeafLayout(meta.schema).ValueOrDie();
  meta.total_rows = 6;
  RowGroupMeta rg;
  rg.num_rows = 3;
  for (size_t i = 0; i < meta.layout.size(); ++i) {
    ChunkMeta c;
    c.file_offset = 4 + i * 100;
    c.compressed_size = 90;
    c.encoded_size = 100;
    c.num_values = 3;
    c.encoding = Encoding::kPlain;
    c.codec = Codec::kLz;
    c.crc32 = 0x1234;
    c.has_stats = true;
    c.min_value = -1.0;
    c.max_value = static_cast<double>(i);
    rg.chunks.push_back(c);
  }
  meta.row_groups = {rg, rg};

  std::vector<uint8_t> buf;
  SerializeFileMetadata(meta, &buf);
  FileMetadata parsed;
  ASSERT_TRUE(ParseFileMetadata(buf.data(), buf.size(), &parsed).ok());
  EXPECT_TRUE(parsed.schema.Equals(meta.schema));
  EXPECT_EQ(parsed.total_rows, 6);
  ASSERT_EQ(parsed.row_groups.size(), 2u);
  EXPECT_EQ(parsed.row_groups[0].chunks[2].max_value, 2.0);
  EXPECT_EQ(parsed.row_groups[1].chunks[0].codec, Codec::kLz);
}

TEST(MetadataTest, ParseRejectsTruncation) {
  FileMetadata meta;
  meta.schema = *TestSchema();
  meta.layout = ComputeLeafLayout(meta.schema).ValueOrDie();
  std::vector<uint8_t> buf;
  SerializeFileMetadata(meta, &buf);
  FileMetadata parsed;
  EXPECT_FALSE(
      ParseFileMetadata(buf.data(), buf.size() / 2, &parsed).ok());
}

TEST(WriterReaderTest, RoundTripAllColumnShapes) {
  const std::string path = TempPath("roundtrip.laq");
  WriterOptions options;
  options.row_group_size = 3;
  ASSERT_TRUE(
      WriteLaqFile(path, TestSchema(), {TestBatch(0), TestBatch(100)},
                   options)
          .ok());

  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->total_rows(), 6);
  EXPECT_EQ((*reader)->num_row_groups(), 2);
  EXPECT_TRUE((*reader)->schema().Equals(*TestSchema()));

  auto batch = (*reader)->ReadRowGroup(1);
  ASSERT_TRUE(batch.ok());
  EXPECT_TRUE((*batch)->Equals(*TestBatch(100)));
}

TEST(WriterReaderTest, ProjectionReturnsOnlyRequested) {
  const std::string path = TempPath("projection.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  auto batch = (*reader)->ReadRowGroup(0, {"MET.pt", "Jet.pt"});
  ASSERT_TRUE(batch.ok());
  EXPECT_EQ((*batch)->num_columns(), 2);
  // MET keeps only the pt member.
  const auto& met = static_cast<const StructArray&>(
      *(*batch)->ColumnByName("MET"));
  EXPECT_EQ(met.type()->num_fields(), 1);
  EXPECT_NE(met.ChildByName("pt"), nullptr);
  // Jet keeps only pt (plus the offsets needed for list structure).
  const auto& jets = static_cast<const ListArray&>(
      *(*batch)->ColumnByName("Jet"));
  EXPECT_EQ(jets.child()->type()->num_fields(), 1);
}

TEST(WriterReaderTest, ProjectionErrors) {
  const std::string path = TempPath("projection_err.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->ReadRowGroup(0, {"nope"}).status().code(),
            StatusCode::kKeyError);
  EXPECT_EQ((*reader)->ReadRowGroup(0, {"MET.nope"}).status().code(),
            StatusCode::kKeyError);
  EXPECT_EQ((*reader)->ReadRowGroup(0, {"event.pt"}).status().code(),
            StatusCode::kInvalid);
  EXPECT_EQ((*reader)->ReadRowGroup(0, {}).status().code(),
            StatusCode::kInvalid);
  EXPECT_EQ((*reader)->ReadRowGroup(7, {"event"}).status().code(),
            StatusCode::kOutOfRange);
}

TEST(WriterReaderTest, StructPushdownAccounting) {
  const std::string path = TempPath("pushdown.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());

  ReaderOptions with;
  with.struct_projection_pushdown = true;
  auto reader1 = LaqReader::Open(path, with);
  ASSERT_TRUE(reader1.ok());
  ASSERT_TRUE((*reader1)->ReadRowGroup(0, {"MET.pt"}).ok());
  const uint64_t pushdown_bytes = (*reader1)->scan_stats().storage_bytes;
  const uint64_t pushdown_chunks = (*reader1)->scan_stats().chunks_read;

  ReaderOptions without;
  without.struct_projection_pushdown = false;
  auto reader2 = LaqReader::Open(path, without);
  ASSERT_TRUE(reader2.ok());
  auto batch = (*reader2)->ReadRowGroup(0, {"MET.pt"});
  ASSERT_TRUE(batch.ok());
  // Returned data identical...
  EXPECT_EQ((*batch)->num_columns(), 1);
  EXPECT_EQ(static_cast<const StructArray&>(*(*batch)->column(0))
                .type()
                ->num_fields(),
            1);
  // ... but more was read from storage (both MET members).
  EXPECT_GT((*reader2)->scan_stats().storage_bytes, pushdown_bytes);
  EXPECT_EQ((*reader2)->scan_stats().chunks_read, pushdown_chunks + 1);
  // Billed/logical bytes unchanged: the query only wanted MET.pt.
  EXPECT_EQ((*reader2)->scan_stats().logical_bytes_bq,
            (*reader1)->scan_stats().logical_bytes_bq);
}

TEST(WriterReaderTest, BigQueryAccountingIs8BytesPerEntry) {
  const std::string path = TempPath("bq_bytes.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE((*reader)->ReadRowGroup(0, {"MET.pt"}).ok());
  // 3 rows x 8 B, although the file stores float32.
  EXPECT_EQ((*reader)->scan_stats().logical_bytes_bq, 24u);
  EXPECT_EQ((*reader)->scan_stats().ideal_bytes, 12u);
}

TEST(WriterReaderTest, IdealBytesForProjection) {
  const std::string path = TempPath("ideal.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  // MET.pt: 3 * 4. Jet.pt: lengths 3*4 + values 5*4.
  EXPECT_EQ((*reader)->IdealBytesForProjection({"MET.pt"}).ValueOrDie(),
            12u);
  EXPECT_EQ((*reader)->IdealBytesForProjection({"Jet.pt"}).ValueOrDie(),
            32u);
}

TEST(WriterReaderTest, StatisticsAreRecorded) {
  const std::string path = TempPath("stats.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const FileMetadata& meta = (*reader)->metadata();
  const int met_pt = meta.LeafIndex("MET.pt");
  ASSERT_GE(met_pt, 0);
  const ChunkMeta& chunk =
      meta.row_groups[0].chunks[static_cast<size_t>(met_pt)];
  EXPECT_TRUE(chunk.has_stats);
  EXPECT_FLOAT_EQ(static_cast<float>(chunk.min_value), 10.5f);
  EXPECT_FLOAT_EQ(static_cast<float>(chunk.max_value), 30.5f);
}

TEST(WriterOptionsTest, RejectsNonPositiveSizes) {
  // Regression: these used to be accepted and silently degraded —
  // row_group_size <= 0 flushed every batch as its own degenerate group,
  // page_values <= 0 collapsed each chunk into one unprunable page.
  for (const int64_t bad : {int64_t{0}, int64_t{-1}, int64_t{-4096}}) {
    WriterOptions rg;
    rg.row_group_size = bad;
    EXPECT_EQ(ValidateWriterOptions(rg).code(), StatusCode::kInvalid);
    EXPECT_EQ(
        WriteLaqFile(TempPath("bad_rg.laq"), TestSchema(), {TestBatch(0)}, rg)
            .code(),
        StatusCode::kInvalid);
    WriterOptions pv;
    pv.page_values = bad;
    EXPECT_EQ(ValidateWriterOptions(pv).code(), StatusCode::kInvalid);
    EXPECT_EQ(
        WriteLaqFile(TempPath("bad_pv.laq"), TestSchema(), {TestBatch(0)}, pv)
            .code(),
        StatusCode::kInvalid);
  }
  EXPECT_TRUE(ValidateWriterOptions(WriterOptions{}).ok());
}

TEST(WriterReaderTest, AdvancedEncodingsRoundTripThroughFile) {
  // Integer leaves shaped for the advanced set: low-cardinality scattered
  // charges (dictionary) and a narrow-span id on a large base (FOR).
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"charge", DataType::Int32()},
      {"lumi", DataType::Int64()},
  });
  std::vector<int32_t> charges(1024);
  std::vector<int64_t> lumis(1024);
  const int32_t alphabet[] = {-2000000, 13, 999999, 77};
  for (size_t i = 0; i < charges.size(); ++i) {
    charges[i] = alphabet[(i * 3) % 4];
    lumis[i] = 5000000000ll +
               static_cast<int64_t>((static_cast<uint32_t>(i) * 2654435761u) %
                                    8192u);
  }
  auto batch =
      RecordBatch::Make(schema, {MakeInt32Array(charges),
                                 MakeInt64Array(lumis)})
          .ValueOrDie();

  const std::string path = TempPath("advanced.laq");
  WriterOptions options;
  options.advanced_encodings = true;
  ASSERT_TRUE(WriteLaqFile(path, schema, {batch}, options).ok());

  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  const FileMetadata& meta = (*reader)->metadata();
  const int charge_idx = meta.LeafIndex("charge");
  const int lumi_idx = meta.LeafIndex("lumi");
  ASSERT_GE(charge_idx, 0);
  ASSERT_GE(lumi_idx, 0);
  EXPECT_EQ(meta.row_groups[0].chunks[static_cast<size_t>(charge_idx)].encoding,
            Encoding::kDict);
  EXPECT_EQ(meta.row_groups[0].chunks[static_cast<size_t>(lumi_idx)].encoding,
            Encoding::kFor);

  auto read = (*reader)->ReadRowGroup(0);
  ASSERT_TRUE(read.ok());
  EXPECT_TRUE((*read)->Equals(*batch));

  // The same data written without the flag must not use the new
  // encodings: default writes stay byte-compatible with old readers.
  const std::string classic_path = TempPath("classic.laq");
  ASSERT_TRUE(WriteLaqFile(classic_path, schema, {batch}).ok());
  auto classic = LaqReader::Open(classic_path);
  ASSERT_TRUE(classic.ok());
  for (const ChunkMeta& chunk : (*classic)->metadata().row_groups[0].chunks) {
    EXPECT_LE(static_cast<uint8_t>(chunk.encoding),
              static_cast<uint8_t>(Encoding::kDeltaVarint));
  }
}

TEST(WriterReaderTest, RowGroupSplitting) {
  const std::string path = TempPath("groups.laq");
  WriterOptions options;
  options.row_group_size = 3;
  std::vector<RecordBatchPtr> batches = {TestBatch(0), TestBatch(10),
                                         TestBatch(20)};
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), batches, options).ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_row_groups(), 3);
  EXPECT_EQ((*reader)->total_rows(), 9);
}

TEST(WriterReaderTest, BatchesCoalesceIntoOneGroup) {
  const std::string path = TempPath("coalesce.laq");
  WriterOptions options;
  options.row_group_size = 100;  // larger than both batches together
  ASSERT_TRUE(
      WriteLaqFile(path, TestSchema(), {TestBatch(0), TestBatch(10)},
                   options)
          .ok());
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());
  EXPECT_EQ((*reader)->num_row_groups(), 1);
  EXPECT_EQ((*reader)->metadata().row_groups[0].num_rows, 6);
}

TEST(WriterTest, RejectsSchemaMismatch) {
  const std::string path = TempPath("mismatch.laq");
  auto writer = LaqWriter::Open(path, TestSchema());
  ASSERT_TRUE(writer.ok());
  auto other_schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::Int32()}});
  auto batch =
      RecordBatch::Make(other_schema, {MakeInt32Array({1})}).ValueOrDie();
  EXPECT_FALSE((*writer)->WriteBatch(*batch).ok());
  ASSERT_TRUE((*writer)->Close().ok());
  EXPECT_FALSE((*writer)->Close().ok());  // double close
}

TEST(ReaderTest, DetectsCorruptChunk) {
  const std::string path = TempPath("corrupt.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  // Flip one byte inside the first chunk (offset 4 = just past the magic).
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 5, SEEK_SET);
  const int c = std::fgetc(f);
  std::fseek(f, 5, SEEK_SET);
  std::fputc(c ^ 0xff, f);
  std::fclose(f);

  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok());  // footer is intact
  bool saw_corruption = false;
  for (int g = 0; g < (*reader)->num_row_groups(); ++g) {
    auto batch = (*reader)->ReadRowGroup(g);
    if (!batch.ok() && batch.status().code() == StatusCode::kCorruption) {
      saw_corruption = true;
    }
  }
  EXPECT_TRUE(saw_corruption);
}

TEST(ReaderTest, DetectsCorruptFooter) {
  const std::string path = TempPath("corrupt_footer.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fseek(f, -20, SEEK_END);
  std::fputc(0x5a, f);
  std::fclose(f);
  auto reader = LaqReader::Open(path);
  EXPECT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(ReaderTest, ChecksumToggleReadsIdentically) {
  // The checksum pass must be a pure verification step: toggling it off
  // cannot change the decoded data on a pristine file.
  const std::string path = TempPath("checksum_toggle.laq");
  WriterOptions options;
  options.row_group_size = 3;
  ASSERT_TRUE(
      WriteLaqFile(path, TestSchema(), {TestBatch(0), TestBatch(100)},
                   options)
          .ok());
  ReaderOptions with, without;
  with.validate_checksums = true;
  without.validate_checksums = false;
  auto checked = LaqReader::Open(path, with).ValueOrDie();
  auto unchecked = LaqReader::Open(path, without).ValueOrDie();
  for (int g = 0; g < checked->num_row_groups(); ++g) {
    auto a = checked->ReadRowGroup(g);
    auto b = unchecked->ReadRowGroup(g);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_TRUE((*a)->Equals(**b)) << "row group " << g;
  }
}

TEST(ReaderTest, DetectsCorruptLeadingMagic) {
  // The leading magic is outside both the footer CRC and the chunk CRCs;
  // it gets its own check so bit rot in bytes [0, 4) is still caught.
  const std::string path = TempPath("bad_magic.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  std::fputc('l', f);  // "lAQ1"
  std::fclose(f);
  auto reader = LaqReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(ReaderTest, AllocationCapIsConfigurable) {
  // A file whose (honest) chunks exceed a tiny max_chunk_decoded_bytes is
  // refused up front: the cap bounds every footer-driven allocation.
  const std::string path = TempPath("small_cap.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  ReaderOptions tiny;
  tiny.max_chunk_decoded_bytes = 4;
  auto reader = LaqReader::Open(path, tiny);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(ReaderTest, RejectsNonLaqFile) {
  const std::string path = TempPath("not_laq.bin");
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  for (int i = 0; i < 100; ++i) std::fputc(i, f);
  std::fclose(f);
  EXPECT_FALSE(LaqReader::Open(path).ok());
}

TEST(ReaderTest, MissingFile) {
  EXPECT_EQ(LaqReader::Open(TempPath("does_not_exist.laq")).status().code(),
            StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// Scratch-buffer reuse: pooled and transient decode paths must be
// indistinguishable except for the allocations they perform.
// ---------------------------------------------------------------------------

TEST(ScratchTest, PooledReadsMatchTransientReadsExactly) {
  const std::string path = TempPath("scratch.laq");
  WriterOptions options;
  options.row_group_size = 3;
  ASSERT_TRUE(
      WriteLaqFile(path, TestSchema(), {TestBatch(0), TestBatch(100)},
                   options)
          .ok());

  auto pooled = LaqReader::Open(path).ValueOrDie();
  auto transient = LaqReader::Open(path).ValueOrDie();
  ScratchBuffers scratch;
  const std::vector<std::string> projection = {"MET.pt", "Jet.pt",
                                               "weights"};
  for (int g = 0; g < pooled->num_row_groups(); ++g) {
    auto with = pooled->ReadRowGroup(g, projection, &scratch);
    ASSERT_TRUE(with.ok());
    // nullptr scratch == transient buffers == the two-arg overload.
    auto without = transient->ReadRowGroup(g, projection, nullptr);
    ASSERT_TRUE(without.ok());
    EXPECT_TRUE((*with)->Equals(**without)) << "row group " << g;
  }
  // The pooled path bills IO identically to the transient path.
  EXPECT_EQ(pooled->scan_stats().storage_bytes,
            transient->scan_stats().storage_bytes);
  EXPECT_EQ(pooled->scan_stats().encoded_bytes,
            transient->scan_stats().encoded_bytes);
  EXPECT_EQ(pooled->scan_stats().logical_bytes_bq,
            transient->scan_stats().logical_bytes_bq);
  EXPECT_EQ(pooled->scan_stats().chunks_read,
            transient->scan_stats().chunks_read);
  EXPECT_EQ(pooled->scan_stats().values_read,
            transient->scan_stats().values_read);
}

TEST(ScratchTest, WarmScratchRereadsWithoutGrowingCapacity) {
  const std::string path = TempPath("scratch_warm.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  auto reader = LaqReader::Open(path).ValueOrDie();
  ScratchBuffers scratch;
  auto first = reader->ReadRowGroup(0, {"Jet.pt"}, &scratch);
  ASSERT_TRUE(first.ok());
  const size_t compressed_cap = scratch.compressed.capacity();
  const size_t encoded_cap = scratch.encoded.capacity();
  const size_t values_cap = scratch.values.capacity();
  EXPECT_GT(values_cap, 0u);
  auto second = reader->ReadRowGroup(0, {"Jet.pt"}, &scratch);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE((*first)->Equals(**second));
  EXPECT_EQ(scratch.compressed.capacity(), compressed_cap);
  EXPECT_EQ(scratch.encoded.capacity(), encoded_cap);
  EXPECT_EQ(scratch.values.capacity(), values_cap);
  // Release really frees (the cold path of the micro benchmark).
  scratch.Release();
  EXPECT_EQ(scratch.values.capacity(), 0u);
  EXPECT_EQ(scratch.compressed.capacity(), 0u);
  EXPECT_EQ(scratch.encoded.capacity(), 0u);
}

TEST(ScratchTest, ReadLeafValuesDecodesWithoutMaterializing) {
  const std::string path = TempPath("scratch_leaf.laq");
  ASSERT_TRUE(WriteLaqFile(path, TestSchema(), {TestBatch(0)}).ok());
  auto reader = LaqReader::Open(path).ValueOrDie();
  ScratchBuffers scratch;
  ASSERT_TRUE(reader->ReadLeafValues(0, "MET.pt", &scratch).ok());
  ASSERT_EQ(scratch.values.size(), 3 * sizeof(float));
  const float* pt = reinterpret_cast<const float*>(scratch.values.data());
  EXPECT_FLOAT_EQ(pt[0], 10.5f);
  EXPECT_FLOAT_EQ(pt[1], 20.5f);
  EXPECT_FLOAT_EQ(pt[2], 30.5f);
  // Billed like any other single-leaf read.
  EXPECT_EQ(reader->scan_stats().chunks_read, 1u);
  EXPECT_EQ(reader->scan_stats().values_read, 3u);
  EXPECT_GT(reader->scan_stats().storage_bytes, 0u);
  // Errors: unknown leaf, group out of range.
  EXPECT_EQ(reader->ReadLeafValues(0, "MET.nope", &scratch).code(),
            StatusCode::kKeyError);
  EXPECT_FALSE(reader->ReadLeafValues(7, "MET.pt", &scratch).ok());
}

// ---------------------------------------------------------------------------
// Page partitioning and page-level zone maps (the statistics behind page
// skipping in ReadRowGroupFiltered).
// ---------------------------------------------------------------------------

TEST(PageStatsTest, PagesPartitionChunksAndCarryZoneMaps) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::Float64()}});
  std::vector<double> values(64);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = static_cast<double>(i);
  }
  auto batch =
      RecordBatch::Make(schema, {MakeFloat64Array(values)}).ValueOrDie();
  const std::string path = TempPath("page_stats.laq");
  WriterOptions options;
  options.page_values = 8;  // 64 sorted values -> 8 pages of 8
  ASSERT_TRUE(WriteLaqFile(path, schema, {batch}, options).ok());

  auto reader = LaqReader::Open(path).ValueOrDie();
  const ChunkMeta& chunk = reader->metadata().row_groups[0].chunks[0];
  ASSERT_EQ(chunk.pages.size(), 8u);
  uint64_t sum_values = 0, sum_compressed = 0, sum_encoded = 0;
  for (size_t p = 0; p < chunk.pages.size(); ++p) {
    const PageMeta& page = chunk.pages[p];
    EXPECT_EQ(page.num_values, 8u);
    ASSERT_TRUE(page.has_stats);
    EXPECT_EQ(page.min_value, static_cast<double>(p * 8));
    EXPECT_EQ(page.max_value, static_cast<double>(p * 8 + 7));
    sum_values += page.num_values;
    sum_compressed += page.compressed_size;
    sum_encoded += page.encoded_size;
  }
  // Pages partition the chunk exactly: sizes and counts add up.
  EXPECT_EQ(sum_values, chunk.num_values);
  EXPECT_EQ(sum_compressed, chunk.compressed_size);
  EXPECT_EQ(sum_encoded, chunk.encoded_size);
  // Chunk-level stats agree with the page envelope.
  ASSERT_TRUE(chunk.has_stats);
  EXPECT_EQ(chunk.min_value, 0.0);
  EXPECT_EQ(chunk.max_value, 63.0);

  // And the data itself round-trips.
  auto read = reader->ReadRowGroup(0).ValueOrDie();
  const auto& col = static_cast<const Float64Array&>(*read->column(0));
  for (size_t i = 0; i < values.size(); ++i) {
    EXPECT_EQ(col.Value(static_cast<int64_t>(i)), values[i]) << i;
  }
}

TEST(PageStatsTest, AllNaNPagesCarryNoStats) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::Float64()}});
  const double nan = std::nan("");
  std::vector<double> values(16, nan);
  // Second page has one real value among the NaNs.
  values[12] = 5.0;
  auto batch =
      RecordBatch::Make(schema, {MakeFloat64Array(values)}).ValueOrDie();
  const std::string path = TempPath("page_stats_nan.laq");
  WriterOptions options;
  options.page_values = 8;
  ASSERT_TRUE(WriteLaqFile(path, schema, {batch}, options).ok());

  auto reader = LaqReader::Open(path).ValueOrDie();
  const ChunkMeta& chunk = reader->metadata().row_groups[0].chunks[0];
  ASSERT_EQ(chunk.pages.size(), 2u);
  EXPECT_FALSE(chunk.pages[0].has_stats);  // all-NaN: no usable zone map
  ASSERT_TRUE(chunk.pages[1].has_stats);   // NaNs skipped, not poisoned
  EXPECT_EQ(chunk.pages[1].min_value, 5.0);
  EXPECT_EQ(chunk.pages[1].max_value, 5.0);

  auto read = reader->ReadRowGroup(0).ValueOrDie();
  const auto& col = static_cast<const Float64Array&>(*read->column(0));
  EXPECT_TRUE(std::isnan(col.Value(0)));
  EXPECT_EQ(col.Value(12), 5.0);
}

TEST(PageStatsTest, EmptyListColumnRoundTrips) {
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"v", DataType::List(DataType::Float64())}});
  // Every list empty: the values leaf has zero values.
  auto list = ListArray::Make({0, 0, 0, 0},
                              MakeFloat64Array(std::vector<double>{}))
                  .ValueOrDie();
  auto batch = RecordBatch::Make(schema, {ArrayPtr(list)}).ValueOrDie();
  const std::string path = TempPath("page_stats_empty.laq");
  WriterOptions options;
  options.page_values = 8;
  ASSERT_TRUE(WriteLaqFile(path, schema, {batch}, options).ok());

  auto reader = LaqReader::Open(path).ValueOrDie();
  const RowGroupMeta& rg = reader->metadata().row_groups[0];
  for (const ChunkMeta& chunk : rg.chunks) {
    uint64_t sum_values = 0, sum_compressed = 0;
    for (const PageMeta& page : chunk.pages) {
      sum_values += page.num_values;
      sum_compressed += page.compressed_size;
    }
    EXPECT_EQ(sum_values, chunk.num_values);
    EXPECT_EQ(sum_compressed, chunk.compressed_size);
  }
  auto read = reader->ReadRowGroup(0).ValueOrDie();
  const auto& col = static_cast<const ListArray&>(*read->column(0));
  ASSERT_EQ(read->num_rows(), 3);
  for (int64_t row = 0; row < 3; ++row) {
    EXPECT_EQ(col.list_length(row), 0u) << row;
  }
}

}  // namespace
}  // namespace hepq
