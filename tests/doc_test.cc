#include <cmath>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "doc/ast.h"
#include "doc/convert.h"
#include "doc/functions.h"
#include "doc/item.h"

namespace hepq::doc {
namespace {

class DocTest : public ::testing::Test {
 protected:
  void SetUp() override { EnsureDocFunctionsRegistered(); }

  Sequence Eval(const DocExprPtr& expr) {
    DocContext ctx;
    return expr->Eval(&ctx).ValueOrDie();
  }

  Sequence EvalWith(const DocExprPtr& expr, const std::string& var,
                    Sequence value) {
    DocContext ctx;
    ctx.Push(var, std::move(value));
    return expr->Eval(&ctx).ValueOrDie();
  }
};

TEST_F(DocTest, ItemBasics) {
  EXPECT_EQ(Item::Number(2.5)->AsDouble(), 2.5);
  EXPECT_TRUE(Item::Bool(true)->AsBool());
  EXPECT_FALSE(Item::Null()->AsBool());
  EXPECT_FALSE(Item::Number(0.0)->AsBool());
  EXPECT_TRUE(Item::Number(1.0)->AsBool());
  EXPECT_TRUE(Item::String("x")->AsBool());
  EXPECT_FALSE(Item::String("")->AsBool());
}

TEST_F(DocTest, ObjectMemberLookup) {
  auto obj = Item::Object({{"a", Item::Number(1)}, {"b", Item::Number(2)}});
  ASSERT_NE(obj->Member("b"), nullptr);
  EXPECT_EQ(obj->Member("b")->AsDouble(), 2.0);
  EXPECT_EQ(obj->Member("c"), nullptr);
}

TEST_F(DocTest, ToJson) {
  auto obj = Item::Object(
      {{"x", Item::Number(1.5)},
       {"a", Item::Array({Item::Bool(true), Item::Null()})}});
  EXPECT_EQ(obj->ToJson(), "{\"x\":1.5,\"a\":[true,null]}");
}

TEST_F(DocTest, EffectiveBooleanValue) {
  EXPECT_FALSE(EffectiveBooleanValue({}));
  EXPECT_FALSE(EffectiveBooleanValue({Item::Bool(false)}));
  EXPECT_TRUE(EffectiveBooleanValue({Item::Number(3)}));
  EXPECT_TRUE(
      EffectiveBooleanValue({Item::Number(0), Item::Number(0)}));
}

TEST_F(DocTest, ArithmeticAndComparison) {
  EXPECT_EQ(Eval(DBin(DocBinOp::kAdd, DNum(2), DNum(3)))[0]->AsDouble(),
            5.0);
  EXPECT_TRUE(Eval(DBin(DocBinOp::kLt, DNum(2), DNum(3)))[0]->AsBool());
  EXPECT_FALSE(Eval(DBin(DocBinOp::kEq, DNum(2), DNum(3)))[0]->AsBool());
  // Empty operand propagates to empty result.
  EXPECT_TRUE(Eval(DBin(DocBinOp::kAdd, DConcat({}), DNum(1))).empty());
}

TEST_F(DocTest, VariableLookupAndError) {
  EXPECT_EQ(EvalWith(DVar("x"), "x", {Item::Number(7)})[0]->AsDouble(),
            7.0);
  DocContext ctx;
  EXPECT_EQ(DVar("missing")->Eval(&ctx).status().code(),
            StatusCode::kKeyError);
}

TEST_F(DocTest, MemberAccessMapsOverSequence) {
  Sequence objs = {Item::Object({{"pt", Item::Number(1)}}),
                   Item::Object({{"pt", Item::Number(2)}}),
                   Item::Number(99)};  // non-object skipped
  auto result = EvalWith(DMember(DVar("v"), "pt"), "v", objs);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[1]->AsDouble(), 2.0);
}

TEST_F(DocTest, UnboxFlattensArrays) {
  Sequence arrays = {Item::Array({Item::Number(1), Item::Number(2)}),
                     Item::Array({Item::Number(3)})};
  auto result = EvalWith(DUnbox(DVar("v")), "v", arrays);
  EXPECT_EQ(result.size(), 3u);
}

TEST_F(DocTest, PredicateFiltersByContextItem) {
  Sequence nums = {Item::Number(1), Item::Number(5), Item::Number(9)};
  auto result = EvalWith(
      DPredicate(DVar("v"), DBin(DocBinOp::kGt, DContextItem(), DNum(3))),
      "v", nums);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0]->AsDouble(), 5.0);
}

TEST_F(DocTest, PositionalPredicateSelectsByIndex) {
  Sequence nums = {Item::Number(10), Item::Number(20), Item::Number(30)};
  auto result = EvalWith(DPredicate(DVar("v"), DNum(2)), "v", nums);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0]->AsDouble(), 20.0);
}

TEST_F(DocTest, FlworForWhereReturn) {
  Sequence nums = {Item::Number(1), Item::Number(2), Item::Number(3),
                   Item::Number(4)};
  // for $x in $v where $x gt 2 return $x * 10
  auto flwor = DFlwor({For("x", DVar("v")),
                       Where(DBin(DocBinOp::kGt, DVar("x"), DNum(2)))},
                      DBin(DocBinOp::kMul, DVar("x"), DNum(10)));
  auto result = EvalWith(flwor, "v", nums);
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[0]->AsDouble(), 30.0);
  EXPECT_EQ(result[1]->AsDouble(), 40.0);
}

TEST_F(DocTest, FlworLetBindsOnce) {
  auto flwor = DFlwor({For("x", DVar("v")),
                       Let("y", DBin(DocBinOp::kAdd, DVar("x"), DNum(1)))},
                      DVar("y"));
  auto result = EvalWith(flwor, "v", {Item::Number(1), Item::Number(2)});
  ASSERT_EQ(result.size(), 2u);
  EXPECT_EQ(result[1]->AsDouble(), 3.0);
}

TEST_F(DocTest, FlworPositionVariables) {
  // Cartesian product with at-counters: pairs (i, j) with i < j.
  Sequence nums = {Item::Number(5), Item::Number(6), Item::Number(7)};
  auto flwor = DFlwor(
      {For("a", DVar("v"), "i"), For("b", DVar("v"), "j"),
       Where(DBin(DocBinOp::kLt, DVar("i"), DVar("j")))},
      DNum(1));
  EXPECT_EQ(EvalWith(flwor, "v", nums).size(), 3u);  // C(3,2)
}

TEST_F(DocTest, FlworOrderByAscendingAndDescending) {
  Sequence nums = {Item::Number(3), Item::Number(1), Item::Number(2)};
  auto asc = DFlwor({For("x", DVar("v"))}, DVar("x"), DVar("x"), false);
  auto result = EvalWith(asc, "v", nums);
  ASSERT_EQ(result.size(), 3u);
  EXPECT_EQ(result[0]->AsDouble(), 1.0);
  EXPECT_EQ(result[2]->AsDouble(), 3.0);
  auto desc = DFlwor({For("x", DVar("v"))}, DVar("x"), DVar("x"), true);
  EXPECT_EQ(EvalWith(desc, "v", nums)[0]->AsDouble(), 3.0);
}

TEST_F(DocTest, IfAndObjectAndArray) {
  auto obj = Eval(DObject({{"a", DNum(1)}, {"b", DNum(2)}}));
  ASSERT_EQ(obj.size(), 1u);
  EXPECT_EQ(obj[0]->Member("b")->AsDouble(), 2.0);
  auto arr = Eval(DArray(DConcat({DNum(1), DNum(2)})));
  EXPECT_EQ(arr[0]->Elements().size(), 2u);
  EXPECT_TRUE(Eval(DIf(DBool(false), DNum(1), nullptr)).empty());
  EXPECT_EQ(Eval(DIf(DBool(true), DNum(1), DNum(2)))[0]->AsDouble(), 1.0);
}

TEST_F(DocTest, CoreFunctions) {
  Sequence nums = {Item::Number(4), Item::Number(2), Item::Number(6)};
  EXPECT_EQ(EvalWith(DCall("count", {DVar("v")}), "v", nums)[0]->AsDouble(),
            3.0);
  EXPECT_EQ(EvalWith(DCall("sum", {DVar("v")}), "v", nums)[0]->AsDouble(),
            12.0);
  EXPECT_EQ(EvalWith(DCall("min", {DVar("v")}), "v", nums)[0]->AsDouble(),
            2.0);
  EXPECT_EQ(EvalWith(DCall("max", {DVar("v")}), "v", nums)[0]->AsDouble(),
            6.0);
  EXPECT_TRUE(
      EvalWith(DCall("exists", {DVar("v")}), "v", nums)[0]->AsBool());
  EXPECT_TRUE(Eval(DCall("empty", {DConcat({})}))[0]->AsBool());
  EXPECT_EQ(Eval(DCall("abs", {DNum(-2.5)}))[0]->AsDouble(), 2.5);
  EXPECT_EQ(Eval(DCall("sqrt", {DNum(9)}))[0]->AsDouble(), 3.0);
  DocContext ctx;
  EXPECT_EQ(DCall("nope", {})->Eval(&ctx).status().code(),
            StatusCode::kKeyError);
}

TEST_F(DocTest, PhysicsFunctions) {
  auto particle = [](double pt, double eta, double phi, double mass) {
    return DObject({{"pt", DNum(pt)},
                    {"eta", DNum(eta)},
                    {"phi", DNum(phi)},
                    {"mass", DNum(mass)}});
  };
  auto mass = Eval(DCall("hep:invariant-mass2",
                         {particle(40, 0, 0, 0), particle(40, 0, M_PI, 0)}));
  EXPECT_NEAR(mass[0]->AsDouble(), 80.0, 1e-9);
  auto combined = Eval(DCall(
      "hep:add-pt-eta-phi-m2",
      {particle(40, 0, 0, 0), particle(40, 0, 0, 0)}));
  EXPECT_NEAR(combined[0]->Member("pt")->AsDouble(), 80.0, 1e-9);
  auto dr = Eval(DCall("hep:delta-r",
                       {particle(1, 0, 0.3, 0), particle(1, 3, 0.7, 0)}));
  EXPECT_NEAR(dr[0]->AsDouble(), std::sqrt(9.0 + 0.16), 1e-9);
}

TEST_F(DocTest, PhysicsFunctionArgErrors) {
  DocContext ctx;
  EXPECT_FALSE(DCall("hep:invariant-mass2", {DNum(1), DNum(2)})
                   ->Eval(&ctx)
                   .ok());
  EXPECT_FALSE(DCall("count", {})->Eval(&ctx).ok());
}

TEST_F(DocTest, EventToItemConversion) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"event", DataType::Int64()},
      {"flag", DataType::Bool()},
      {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
      {"Jet", DataType::List(DataType::Struct(
                  {{"pt", DataType::Float32()}}))},
  });
  auto met = StructArray::Make({{"pt", DataType::Float32()}},
                               {MakeFloat32Array({25.0f, 60.0f})})
                 .ValueOrDie();
  auto jets = MakeListOfStructArray({{"pt", DataType::Float32()}},
                                    {0, 2, 3},
                                    {MakeFloat32Array({1, 2, 3})})
                  .ValueOrDie();
  auto batch = RecordBatch::Make(schema, {MakeInt64Array({7, 8}),
                                          MakeBoolArray({1, 0}), met, jets})
                   .ValueOrDie();

  auto item = EventToItem(*batch, 0);
  EXPECT_EQ(item->Member("event")->AsDouble(), 7.0);
  EXPECT_TRUE(item->Member("flag")->AsBool());
  EXPECT_FLOAT_EQ(
      static_cast<float>(item->Member("MET")->Member("pt")->AsDouble()),
      25.0f);
  ASSERT_TRUE(item->Member("Jet")->IsArray());
  EXPECT_EQ(item->Member("Jet")->Elements().size(), 2u);
  auto item1 = EventToItem(*batch, 1);
  EXPECT_EQ(item1->Member("Jet")->Elements().size(), 1u);
  EXPECT_FALSE(item1->Member("flag")->AsBool());
}

TEST_F(DocTest, GroupByGroupsTuplesByKey) {
  // for $x in $v let $parity := $x mod 2... emulated with multiplication:
  // group values {1, 2, 3, 4, 5} by floor($x / 2): keys 0,1,1,2,2.
  Sequence nums = {Item::Number(1), Item::Number(2), Item::Number(3),
                   Item::Number(4), Item::Number(5)};
  auto flwor = DFlwor(
      {For("x", DVar("v")),
       Let("bin", DCall("floor_half", {DVar("x")})), GroupBy("bin")},
      DObject({{"bin", DVar("bin")},
               {"count", DCall("count", {DVar("x")})},
               {"sum", DCall("sum", {DVar("x")})}}));
  RegisterDocFunction(
      "floor_half",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        return Sequence{Item::Number(
            std::floor(args[0].front()->AsDouble() / 2.0))};
      });
  auto groups = EvalWith(flwor, "v", nums);
  ASSERT_EQ(groups.size(), 3u);  // bins 0, 1, 2 in first-seen order
  EXPECT_EQ(groups[0]->Member("bin")->AsDouble(), 0.0);
  EXPECT_EQ(groups[0]->Member("count")->AsDouble(), 1.0);
  EXPECT_EQ(groups[1]->Member("count")->AsDouble(), 2.0);  // 2, 3
  EXPECT_EQ(groups[1]->Member("sum")->AsDouble(), 5.0);
  EXPECT_EQ(groups[2]->Member("sum")->AsDouble(), 9.0);  // 4, 5
}

TEST_F(DocTest, GroupByHistogramIdiom) {
  // The corpus's hep:histogram pattern: bin values, count per bin.
  Sequence values;
  for (int i = 0; i < 100; ++i) {
    values.push_back(Item::Number(i % 10));
  }
  RegisterDocFunction(
      "identity_bin",
      [](const std::vector<Sequence>& args) -> Result<Sequence> {
        return Sequence{args[0].front()};
      });
  auto flwor = DFlwor({For("value", DVar("v")),
                       Let("b", DCall("identity_bin", {DVar("value")})),
                       GroupBy("b")},
                      DCall("count", {DVar("value")}));
  auto counts = EvalWith(flwor, "v", values);
  ASSERT_EQ(counts.size(), 10u);
  for (const ItemPtr& count : counts) {
    EXPECT_EQ(count->AsDouble(), 10.0);
  }
}

TEST_F(DocTest, GroupByErrors) {
  DocContext ctx;
  ctx.Push("v", {Item::Number(1)});
  // Grouping by a variable that is not bound before the clause.
  auto bad = DFlwor({For("x", DVar("v")), GroupBy("nope")}, DVar("x"));
  EXPECT_EQ(bad->Eval(&ctx).status().code(), StatusCode::kKeyError);
  // Two group-by clauses.
  auto twice = DFlwor({For("x", DVar("v")), GroupBy("x"), GroupBy("x")},
                      DVar("x"));
  EXPECT_FALSE(twice->Eval(&ctx).ok());
}

TEST_F(DocTest, SomeQuantifier) {
  Sequence nums = {Item::Number(1), Item::Number(5), Item::Number(9)};
  EXPECT_TRUE(EvalWith(DSome("x", DVar("v"),
                             DBin(DocBinOp::kGt, DVar("x"), DNum(8))),
                       "v", nums)[0]
                  ->AsBool());
  EXPECT_FALSE(EvalWith(DSome("x", DVar("v"),
                              DBin(DocBinOp::kGt, DVar("x"), DNum(10))),
                        "v", nums)[0]
                   ->AsBool());
  // Vacuously false on the empty sequence.
  EXPECT_FALSE(Eval(DSome("x", DConcat({}), DBool(true)))[0]->AsBool());
}

TEST_F(DocTest, EveryQuantifier) {
  Sequence nums = {Item::Number(1), Item::Number(5), Item::Number(9)};
  EXPECT_TRUE(EvalWith(DEvery("x", DVar("v"),
                              DBin(DocBinOp::kGt, DVar("x"), DNum(0))),
                       "v", nums)[0]
                  ->AsBool());
  EXPECT_FALSE(EvalWith(DEvery("x", DVar("v"),
                               DBin(DocBinOp::kGt, DVar("x"), DNum(2))),
                        "v", nums)[0]
                   ->AsBool());
  // Vacuously true on the empty sequence.
  EXPECT_TRUE(Eval(DEvery("x", DConcat({}), DBool(false)))[0]->AsBool());
}

TEST_F(DocTest, InterpreterStepsAccumulate) {
  DocContext ctx;
  ctx.Push("v", {Item::Number(1), Item::Number(2)});
  auto flwor = DFlwor({For("x", DVar("v"))},
                      DBin(DocBinOp::kMul, DVar("x"), DNum(2)));
  ASSERT_TRUE(flwor->Eval(&ctx).ok());
  EXPECT_GT(ctx.steps, 5u);
}

}  // namespace
}  // namespace hepq::doc
