// End-to-end reconciliation tests: a RunReport built from a traced query
// run must agree EXACTLY with the engine's own ScanStats / QueryRunOutput
// totals — for every benchmark query on every frontend. The trace is an
// attribution of the run, not a second measurement; any drift between the
// two would mean double-counted or lost work.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "datagen/dataset.h"
#include "obs/report.h"
#include "obs/trace.h"
#include "queries/adl.h"

namespace hepq::obs {
namespace {

using queries::EngineKind;
using queries::EngineKindName;
using queries::QueryRunOutput;
using queries::RunAdlQuery;

/// Shared small data set (same geometry as queries_test: 3 row groups).
const std::string& TestDataset() {
  static const auto& path = *new std::string([] {
    DatasetSpec spec;
    spec.num_events = 6000;
    spec.row_group_size = 2000;
    return EnsureDataset(::testing::TempDir() + "/hepq_report", spec)
        .ValueOrDie();
  }());
  return path;
}

struct TracedRun {
  QueryRunOutput output;
  RunReport report;
};

TracedRun RunTraced(EngineKind engine, int q, int threads) {
  queries::RunOptions options;
  options.num_threads = threads;
  TraceSession session;
  session.Start();
  auto result = RunAdlQuery(engine, q, TestDataset(), options);
  session.Stop();
  EXPECT_TRUE(result.ok()) << result.status().ToString();
  RunInfo info;
  info.query = std::string("Q") + std::to_string(q);
  info.engine = EngineKindName(engine);
  info.threads = threads;
  info.events_processed = result->events_processed;
  info.wall_seconds = result->wall_seconds;
  info.cpu_seconds = result->cpu_seconds;
  TracedRun run;
  run.report = BuildRunReport(session, info, result->scan);
  run.output = std::move(*result);
  return run;
}

constexpr EngineKind kEngines[] = {
    EngineKind::kRdf, EngineKind::kBigQueryShape, EngineKind::kPrestoShape,
    EngineKind::kDoc};

/// The Figure-4 quantities in the report reconcile exactly with the
/// engine's own totals, for all 8 queries x 4 frontends.
class ReportReconciliation : public ::testing::TestWithParam<int> {};

TEST_P(ReportReconciliation, Figure4QuantitiesMatchEngineTotals) {
  const int q = GetParam();
  for (EngineKind engine : kEngines) {
    SCOPED_TRACE(std::string("Q") + std::to_string(q) + " on " +
                 EngineKindName(engine));
    const TracedRun run = RunTraced(engine, q, /*threads=*/1);
    const RunReport& report = run.report;
    const QueryRunOutput& output = run.output;

    // Headline totals are bit-copies of the engine result.
    EXPECT_EQ(report.info.events_processed, output.events_processed);
    EXPECT_EQ(report.scan.decoded_bytes, output.scan.decoded_bytes);
    EXPECT_EQ(report.scan.storage_bytes, output.scan.storage_bytes);
    EXPECT_EQ(report.cpu_ns(),
              static_cast<int64_t>(std::llround(output.cpu_seconds * 1e9)));

    // Decode spans attribute every decoded byte: their byte payloads sum
    // to ScanStats::decoded_bytes exactly (deltas of the same counter).
    uint64_t decode_span_bytes = 0;
    for (const StageSummary& stage : report.stages) {
      if (stage.stage == Stage::kDecode) decode_span_bytes += stage.bytes;
    }
    EXPECT_EQ(decode_span_bytes, output.scan.decoded_bytes);

    // The per-leaf breakdown partitions the same totals.
    uint64_t leaf_decoded = 0, leaf_storage = 0;
    for (const LeafScanStats& leaf : output.scan.leaves) {
      leaf_decoded += leaf.decoded_bytes;
      leaf_storage += leaf.storage_bytes;
    }
    EXPECT_EQ(leaf_decoded, output.scan.decoded_bytes);
    EXPECT_EQ(leaf_storage, output.scan.storage_bytes);

    // Derived Figure-4 rates are consistent with the totals they quote.
    if (output.events_processed > 0) {
      const double events = static_cast<double>(output.events_processed);
      EXPECT_DOUBLE_EQ(report.decoded_bytes_per_event(),
                       static_cast<double>(output.scan.decoded_bytes) /
                           events);
      EXPECT_DOUBLE_EQ(report.storage_bytes_per_event(),
                       static_cast<double>(output.scan.storage_bytes) /
                           events);
      EXPECT_NEAR(report.cpu_ns_per_event() * events,
                  static_cast<double>(report.cpu_ns()), 1.0 * events);
    }
    if (output.cpu_seconds > 0) {
      EXPECT_DOUBLE_EQ(report.events_per_sec_per_core(),
                       static_cast<double>(output.events_processed) /
                           output.cpu_seconds);
    }

    // Cost-model inputs feed the cloud simulator the same numbers.
    EXPECT_DOUBLE_EQ(report.cost_inputs.cpu_seconds, output.cpu_seconds);
    EXPECT_EQ(report.cost_inputs.storage_bytes, output.scan.storage_bytes);
    EXPECT_EQ(report.cost_inputs.logical_bytes_bq,
              output.scan.logical_bytes_bq);
    EXPECT_EQ(report.cost_inputs.events, output.events_processed);

    // Trace structure: one run root whose children cover most of it.
    EXPECT_GT(report.run_span_ns, 0);
    EXPECT_GT(report.total_span_ns, 0);
    EXPECT_GT(report.span_coverage(), 0.5)
        << "top-level spans cover too little of the run";
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, ReportReconciliation,
                         ::testing::Range(1, 9));

TEST(ReportReconciliationTest, ParallelRunReconcilesToo) {
  const TracedRun run = RunTraced(EngineKind::kRdf, 6, /*threads=*/4);
  uint64_t decode_span_bytes = 0;
  for (const StageSummary& stage : run.report.stages) {
    if (stage.stage == Stage::kDecode) decode_span_bytes += stage.bytes;
  }
  EXPECT_EQ(decode_span_bytes, run.output.scan.decoded_bytes);
  // 3 row groups -> up to 3 workers busy; every group accounted once.
  int64_t groups = 0;
  for (const WorkerSummary& worker : run.report.workers) {
    groups += worker.row_groups;
  }
  EXPECT_EQ(groups, 3);
  EXPECT_EQ(run.report.cost_inputs.row_groups, 3);
}

TEST(ReportJsonSchemaTest, RequiredKeysPresent) {
  const TracedRun run = RunTraced(EngineKind::kBigQueryShape, 5, 1);
  const std::string json = ReportToJson(run.report);
  for (const char* key :
       {"\"schema_version\":4", "\"query\":\"Q5\"",
        "\"cache\"", "\"footer_hits\"", "\"chunk_hits\"",
        "\"cache_bytes_served\"", "\"consumed_bytes\"",
        "\"engine\":\"bigquery-shape\"", "\"events_processed\"",
        "\"cpu_ns\"", "\"wall_ns\"", "\"run_span_ns\"", "\"span_coverage\"",
        "\"figure4\"", "\"cpu_ns_per_event\"", "\"decoded_bytes_per_event\"",
        "\"events_per_sec_per_core\"", "\"expr_vm\"", "\"vops_per_event\"",
        "\"fused_coverage\"", "\"scan\"", "\"decoded_bytes\"",
        "\"stages\"", "\"workers\"", "\"stragglers\"", "\"per_leaf\"",
        "\"counters\"", "\"cost_inputs\"", "\"processes\"", "\"partial\"",
        "\"warnings\"", "\"metrics\""}) {
    EXPECT_NE(json.find(key), std::string::npos) << "missing " << key;
  }
}

TEST(ReportExprVmTest, DispatchOverheadDerivedFromKernelCounters) {
  // The default tier is simd, so a traced run retires VOps through the
  // fused kernels: the derived dispatch-overhead quantities must be
  // populated and the coverage a genuine fraction.
  const TracedRun run = RunTraced(EngineKind::kBigQueryShape, 5, 1);
  EXPECT_GT(run.report.vops_per_event(), 0.0);
  EXPECT_GT(run.report.vexpr_fused_coverage(), 0.0);
  EXPECT_LE(run.report.vexpr_fused_coverage(), 1.0);
}

TEST(ReportTableTest, ProfileTableShowsStagesWorkersAndLeaves) {
  const TracedRun run = RunTraced(EngineKind::kRdf, 5, 1);
  const std::string table = ReportToTable(run.report);
  EXPECT_NE(table.find("profile: rdataframe Q5"), std::string::npos);
  EXPECT_NE(table.find("decode"), std::string::npos);
  EXPECT_NE(table.find("row_group"), std::string::npos);
  EXPECT_NE(table.find("w0"), std::string::npos);
  EXPECT_NE(table.find("MET.pt"), std::string::npos);  // per-leaf row
}

TEST(ScanStatsTest, AddMergesLeavesAcrossReaders) {
  // Per-leaf stats merge by path — the laq_inspect-style breakdown
  // surfaces from N per-worker readers exactly as from one.
  ScanStats a, b;
  a.decoded_bytes = 100;
  a.leaves.push_back(LeafScanStats{"MET.pt", /*storage=*/40,
                                   /*decoded=*/100, 2, 1, 0});
  b.decoded_bytes = 70;
  b.leaves.push_back(LeafScanStats{"Muon.pt", /*storage=*/10,
                                   /*decoded=*/30, 1, 0, 0});
  b.leaves.push_back(LeafScanStats{"MET.pt", /*storage=*/20,
                                   /*decoded=*/40, 1, 1, 0});
  a.Add(b);
  EXPECT_EQ(a.decoded_bytes, 170u);
  ASSERT_EQ(a.leaves.size(), 2u);
  EXPECT_EQ(a.leaves[0].path, "MET.pt");
  EXPECT_EQ(a.leaves[0].decoded_bytes, 140u);
  EXPECT_EQ(a.leaves[0].storage_bytes, 60u);
  EXPECT_EQ(a.leaves[0].chunks_read, 3u);
  EXPECT_EQ(a.leaves[1].path, "Muon.pt");
  EXPECT_EQ(a.leaves[1].decoded_bytes, 30u);
}

TEST(ScanStatsTest, ResetKeepsLeafSlotsButZeroesCounters) {
  ScanStats stats;
  stats.decoded_bytes = 5;
  stats.leaves.push_back(LeafScanStats{"MET.pt", /*storage=*/2,
                                       /*decoded=*/5, 1, 0, 0});
  stats.Reset();
  EXPECT_EQ(stats.decoded_bytes, 0u);
  ASSERT_EQ(stats.leaves.size(), 1u);  // slot survives (no realloc)
  EXPECT_EQ(stats.leaves[0].path, "MET.pt");
  EXPECT_EQ(stats.leaves[0].decoded_bytes, 0u);
}

}  // namespace
}  // namespace hepq::obs
