#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "datagen/dataset.h"
#include "fileio/writer.h"
#include "rdf/rdf.h"

namespace hepq {
namespace {

using rdf::EventView;
using rdf::RDataFrame;

class RdfTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec;
    spec.num_events = 4000;
    spec.row_group_size = 1000;
    path_ = new std::string(
        EnsureDataset(::testing::TempDir() + "/hepq_rdf", spec)
            .ValueOrDie());
  }

  static std::unique_ptr<RDataFrame> Open(int threads = 1) {
    rdf::RdfOptions options;
    options.num_threads = threads;
    return RDataFrame::Open(*path_, options).ValueOrDie();
  }

  static std::string* path_;
};

std::string* RdfTest::path_ = nullptr;

TEST_F(RdfTest, OpenExposesShape) {
  auto df = Open();
  EXPECT_EQ(df->total_rows(), 4000);
  EXPECT_EQ(df->num_row_groups(), 4);
}

TEST_F(RdfTest, ScalarDeclarationErrors) {
  auto df = Open();
  EXPECT_FALSE(df->Scalar<float>("nope").ok());
  EXPECT_FALSE(df->Scalar<float>("MET.nope").ok());
  // Wrong type.
  EXPECT_EQ(df->Scalar<double>("MET.pt").status().code(),
            StatusCode::kTypeError);
  // Nested column without member.
  EXPECT_FALSE(df->Scalar<float>("MET").ok());
  // Particle leaf declared as scalar.
  EXPECT_FALSE(df->Scalar<float>("Jet.pt").ok());
  EXPECT_FALSE(df->Particles<float>("MET.pt").ok());
}

TEST_F(RdfTest, DuplicateDeclarationSharesSlot) {
  auto df = Open();
  auto a = df->Scalar<float>("MET.pt").ValueOrDie();
  auto b = df->Scalar<float>("MET.pt").ValueOrDie();
  EXPECT_EQ(a.slot, b.slot);
}

TEST_F(RdfTest, CountAllEvents) {
  auto df = Open();
  auto count = df->root().Count();
  ASSERT_TRUE(df->Run().ok());
  EXPECT_EQ(df->GetCount(count), 4000);
}

TEST_F(RdfTest, ChainedFiltersIntersect) {
  auto df = Open();
  auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  auto all = df->root().Count();
  auto low =
      df->root().Filter([met](const EventView& e) { return e.Get(met) < 30; });
  auto low_count = low.Count();
  auto band = low.Filter([met](const EventView& e) { return e.Get(met) > 10; });
  auto band_count = band.Count();
  ASSERT_TRUE(df->Run().ok());
  EXPECT_EQ(df->GetCount(all), 4000);
  EXPECT_GT(df->GetCount(low_count), 0);
  EXPECT_LE(df->GetCount(band_count), df->GetCount(low_count));
  EXPECT_LT(df->GetCount(low_count), 4000);
}

TEST_F(RdfTest, SiblingBranchesAreIndependent) {
  auto df = Open();
  auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  auto lo = df->root()
                .Filter([met](const EventView& e) { return e.Get(met) < 20; })
                .Count();
  auto hi = df->root()
                .Filter([met](const EventView& e) { return e.Get(met) >= 20; })
                .Count();
  ASSERT_TRUE(df->Run().ok());
  EXPECT_EQ(df->GetCount(lo) + df->GetCount(hi), 4000);
}

TEST_F(RdfTest, DefineIsCachedPerEvent) {
  auto df = Open();
  auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  int calls = 0;
  auto define = df->Define("expensive", [met, &calls](const EventView& e) {
    ++calls;
    return e.Get(met) * 2.0;
  });
  // Two consumers of the define on the same node.
  auto h1 = df->root().Histo1D({"h1", "", 10, 0, 400},
                               [define](const EventView& e) {
                                 return e.Get(define);
                               });
  auto h2 = df->root().Histo1D({"h2", "", 10, 0, 400},
                               [define](const EventView& e) {
                                 return e.Get(define);
                               });
  ASSERT_TRUE(df->Run().ok());
  EXPECT_EQ(calls, 4000);  // once per event, not twice
  EXPECT_EQ(df->GetHistogram(h1).num_entries(), 4000u);
  EXPECT_TRUE(
      df->GetHistogram(h1).ApproxEquals(df->GetHistogram(h2)));
}

TEST_F(RdfTest, VectorHistogramFillsPerElement) {
  auto df = Open();
  auto jet_pt = df->Particles<float>("Jet.pt").ValueOrDie();
  auto h = df->root().Histo1DVec({"jets", "", 50, 0, 200},
                                 [jet_pt](const EventView& e) {
                                   const auto pts = e.Get(jet_pt);
                                   return rdf::RVecD(pts.begin(), pts.end());
                                 });
  auto count = df->root().Count();
  ASSERT_TRUE(df->Run().ok());
  EXPECT_GT(df->GetHistogram(h).num_entries(),
            static_cast<uint64_t>(df->GetCount(count)));
}

TEST_F(RdfTest, MultiThreadedMatchesSingleThreaded) {
  auto run = [&](int threads) {
    auto df = Open(threads);
    auto met = df->Scalar<float>("MET.pt").ValueOrDie();
    auto jet_pt = df->Particles<float>("Jet.pt").ValueOrDie();
    auto selected = df->root().Filter([jet_pt](const EventView& e) {
      int n = 0;
      for (float pt : e.Get(jet_pt)) {
        if (pt > 40) ++n;
      }
      return n >= 2;
    });
    auto h = selected.Histo1D({"met", "", 100, 0, 200},
                              [met](const EventView& e) {
                                return e.Get(met);
                              });
    auto c = selected.Count();
    EXPECT_TRUE(df->Run().ok());
    return std::make_pair(df->GetHistogram(h), df->GetCount(c));
  };
  const auto [h1, c1] = run(1);
  const auto [h3, c3] = run(3);
  EXPECT_EQ(c1, c3);
  EXPECT_TRUE(h1.ApproxEquals(h3));
}

// Stronger than ApproxEquals: per-row-group accumulation + ordered merge
// make results bit-identical for any worker count, and the filter
// cutflow (the Table 2 op counters) identical too.
TEST_F(RdfTest, ThreadCountNeverChangesAnyBit) {
  struct Observed {
    Histogram1D histo;
    double sum = 0.0;
    std::vector<rdf::FilterReport> report;
    ScanStats scan;
  };
  auto run = [&](int threads) {
    auto df = Open(threads);
    auto met = df->Scalar<float>("MET.pt").ValueOrDie();
    auto jet_pt = df->Particles<float>("Jet.pt").ValueOrDie();
    auto selected =
        df->root().Filter(
            [jet_pt](const EventView& e) {
              int n = 0;
              for (float pt : e.Get(jet_pt)) {
                if (pt > 40) ++n;
              }
              return n >= 2;
            },
            "two_hard_jets");
    auto h = selected.Histo1D({"met", "", 100, 0, 200},
                              [met](const EventView& e) {
                                return e.Get(met);
                              });
    auto s = selected.Sum([met](const EventView& e) { return e.Get(met); });
    EXPECT_TRUE(df->Run().ok());
    return Observed{df->GetHistogram(h), df->GetSum(s), df->Report(),
                    df->run_stats().scan};
  };
  const Observed base = run(1);
  for (int threads : {2, 4}) {
    const Observed observed = run(threads);
    SCOPED_TRACE("threads " + std::to_string(threads));
    EXPECT_EQ(observed.sum, base.sum);  // exact, not approximate
    EXPECT_EQ(observed.histo.num_entries(), base.histo.num_entries());
    EXPECT_EQ(observed.histo.sum_weights(), base.histo.sum_weights());
    for (int i = 0; i < base.histo.spec().num_bins; ++i) {
      EXPECT_EQ(observed.histo.BinContent(i), base.histo.BinContent(i));
    }
    ASSERT_EQ(observed.report.size(), base.report.size());
    for (size_t i = 0; i < base.report.size(); ++i) {
      EXPECT_EQ(observed.report[i].examined, base.report[i].examined);
      EXPECT_EQ(observed.report[i].passed, base.report[i].passed);
    }
    // Same bytes read regardless of how many readers shared the work.
    EXPECT_EQ(observed.scan.storage_bytes, base.scan.storage_bytes);
    EXPECT_EQ(observed.scan.chunks_read, base.scan.chunks_read);
  }
}

TEST_F(RdfTest, WeightedHistogram) {
  auto df = Open();
  auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  auto unweighted = df->root().Histo1D(
      {"h", "", 10, 0, 200},
      [met](const EventView& e) { return e.Get(met); });
  auto weighted = df->root().WeightedHisto1D(
      {"h", "", 10, 0, 200},
      [met](const EventView& e) { return e.Get(met); },
      [](const EventView&) { return 2.0; });
  ASSERT_TRUE(df->Run().ok());
  EXPECT_DOUBLE_EQ(df->GetHistogram(weighted).sum_weights(),
                   2.0 * df->GetHistogram(unweighted).sum_weights());
  EXPECT_EQ(df->GetHistogram(weighted).num_entries(),
            df->GetHistogram(unweighted).num_entries());
}

TEST_F(RdfTest, SumAction) {
  auto df = Open();
  auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  auto total = df->root().Sum(
      [met](const EventView& e) { return e.Get(met); });
  auto h = df->root().Histo1D({"h", "", 10, 0, 1e9},
                              [met](const EventView& e) {
                                return e.Get(met);
                              });
  ASSERT_TRUE(df->Run().ok());
  // Sum of fills equals mean * count.
  EXPECT_NEAR(df->GetSum(total),
              df->GetHistogram(h).mean() * 4000.0, 1e-3);
}

TEST_F(RdfTest, ReportGivesCutflow) {
  auto df = Open();
  auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  auto loose = df->root().Filter(
      [met](const EventView& e) { return e.Get(met) < 60; }, "loose");
  auto tight = loose.Filter(
      [met](const EventView& e) { return e.Get(met) < 15; }, "tight");
  auto count = tight.Count();
  ASSERT_TRUE(df->Run().ok());
  const auto report = df->Report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].label, "loose");
  EXPECT_EQ(report[0].examined, 4000);
  EXPECT_GT(report[0].passed, 0);
  EXPECT_EQ(report[1].label, "tight");
  // Only events passing "loose" reach "tight".
  EXPECT_EQ(report[1].examined, report[0].passed);
  EXPECT_EQ(report[1].passed, df->GetCount(count));
}

TEST_F(RdfTest, ReportMergesAcrossThreads) {
  auto run = [&](int threads) {
    auto df = Open(threads);
    auto met = df->Scalar<float>("MET.pt").ValueOrDie();
    auto node = df->root().Filter(
        [met](const EventView& e) { return e.Get(met) > 25; }, "cut");
    node.Count();
    EXPECT_TRUE(df->Run().ok());
    return df->Report();
  };
  const auto single = run(1);
  const auto multi = run(4);
  ASSERT_EQ(single.size(), 1u);
  ASSERT_EQ(multi.size(), 1u);
  EXPECT_EQ(single[0].examined, multi[0].examined);
  EXPECT_EQ(single[0].passed, multi[0].passed);
}

TEST_F(RdfTest, LazyFiltersAreNotExamined) {
  auto df = Open();
  auto met = df->Scalar<float>("MET.pt").ValueOrDie();
  // A filter with no booked action below it never runs.
  df->root().Filter([met](const EventView& e) { return e.Get(met) > 0; },
                    "unused");
  auto used = df->root().Filter(
      [met](const EventView& e) { return e.Get(met) > 10; }, "used");
  used.Count();
  ASSERT_TRUE(df->Run().ok());
  const auto report = df->Report();
  ASSERT_EQ(report.size(), 2u);
  EXPECT_EQ(report[0].examined, 0);
  EXPECT_EQ(report[1].examined, 4000);
}

TEST_F(RdfTest, RunTwiceFails) {
  auto df = Open();
  df->root().Count();
  ASSERT_TRUE(df->Run().ok());
  EXPECT_FALSE(df->Run().ok());
}

TEST_F(RdfTest, ScanStatsReflectProjection) {
  auto df_narrow = Open();
  auto met = df_narrow->Scalar<float>("MET.pt").ValueOrDie();
  df_narrow->root().Histo1D({"h", "", 10, 0, 200},
                            [met](const EventView& e) {
                              return e.Get(met);
                            });
  ASSERT_TRUE(df_narrow->Run().ok());

  auto df_wide = Open();
  auto jet_pt = df_wide->Particles<float>("Jet.pt").ValueOrDie();
  auto jet_eta = df_wide->Particles<float>("Jet.eta").ValueOrDie();
  auto met2 = df_wide->Scalar<float>("MET.pt").ValueOrDie();
  df_wide->root().Histo1D({"h", "", 10, 0, 200},
                          [jet_pt, jet_eta, met2](const EventView& e) {
                            (void)e.Get(jet_pt);
                            (void)e.Get(jet_eta);
                            return e.Get(met2);
                          });
  ASSERT_TRUE(df_wide->Run().ok());
  EXPECT_GT(df_wide->run_stats().scan.storage_bytes,
            df_narrow->run_stats().scan.storage_bytes);
}

TEST_F(RdfTest, ListOfPrimitiveBranches) {
  // ROOT-layout-style branch: write a small file with a list<float>
  // column and read it through the particle API.
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"Jet_pt", DataType::List(DataType::Float32())}});
  auto branch = ListArray::Make({0, 2, 3}, MakeFloat32Array({50, 10, 20}))
                    .ValueOrDie();
  auto batch =
      RecordBatch::Make(schema, {ArrayPtr(branch)}).ValueOrDie();
  const std::string path = ::testing::TempDir() + "/rdf_branch.laq";
  ASSERT_TRUE(WriteLaqFile(path, schema, {RecordBatchPtr(batch)}).ok());

  auto df = RDataFrame::Open(path).ValueOrDie();
  // Must be declared as a particle leaf, with the element type.
  EXPECT_FALSE(df->Scalar<float>("Jet_pt").ok());
  auto pt = df->Particles<float>("Jet_pt").ValueOrDie();
  auto h = df->root().Histo1DVec({"pt", "", 10, 0, 100},
                                 [pt](const EventView& e) {
                                   const auto values = e.Get(pt);
                                   return rdf::RVecD(values.begin(),
                                                     values.end());
                                 });
  ASSERT_TRUE(df->Run().ok());
  EXPECT_EQ(df->GetHistogram(h).num_entries(), 3u);
}

TEST_F(RdfTest, BoolAndIntColumns) {
  auto df = Open();
  auto hlt = df->Scalar<uint8_t>("HLT_IsoMu24").ValueOrDie();
  auto npvs = df->Scalar<int32_t>("PV.npvs").ValueOrDie();
  auto charge = df->Particles<int32_t>("Muon.charge").ValueOrDie();
  auto c = df->root()
               .Filter([hlt, npvs, charge](const EventView& e) {
                 int total_charge = 0;
                 for (int32_t q : e.Get(charge)) total_charge += q;
                 return e.Get(hlt) != 0 && e.Get(npvs) > 0 &&
                        total_charge >= -50;
               })
               .Count();
  ASSERT_TRUE(df->Run().ok());
  EXPECT_GT(df->GetCount(c), 0);
}

}  // namespace
}  // namespace hepq
