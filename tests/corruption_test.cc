// Corruption handling of the .laq read path: hand-crafted hostile files
// exercising each validation layer, the shared mutation helpers from
// fileio/corruption.h, and the determinism of error propagation through
// the parallel executor and query frontends. Every assertion here is of
// the form "a damaged file yields a clean non-OK Status" — crashes,
// hangs, and sanitizer reports are the failures this suite exists to
// prevent.

#include <cstring>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "datagen/dataset.h"
#include "engine/event_query.h"
#include "fileio/compression.h"
#include "fileio/corruption.h"
#include "fileio/crc32.h"
#include "fileio/encoding.h"
#include "fileio/reader.h"
#include "fileio/varint.h"
#include "fileio/writer.h"
#include "queries/adl.h"

namespace hepq {
namespace {

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// ---------------------------------------------------------------------------
// Hand-crafted raw files: a single list<int32> column whose lengths and
// values chunks we control byte for byte, so the chunk CRCs are *valid*
// and only the decode-time cross-checks can reject the file.
// ---------------------------------------------------------------------------

/// Appends one plain-encoded kNone chunk of int32 values and returns its
/// metadata (correct CRC, correct sizes).
ChunkMeta AppendInt32Chunk(std::vector<uint8_t>* bytes,
                           const std::vector<int32_t>& values) {
  std::vector<uint8_t> encoded;
  EncodeValues(TypeId::kInt32, Encoding::kPlain, values.data(),
               values.size(), &encoded)
      .Check();
  ChunkMeta chunk;
  chunk.file_offset = bytes->size();
  chunk.compressed_size = encoded.size();
  chunk.encoded_size = encoded.size();
  chunk.num_values = values.size();
  chunk.encoding = Encoding::kPlain;
  chunk.codec = Codec::kNone;
  chunk.crc32 = Crc32(encoded.data(), encoded.size());
  bytes->insert(bytes->end(), encoded.begin(), encoded.end());
  return chunk;
}

/// Builds a complete .laq file with one row group of a single
/// `v: list<int32>` column from raw lengths/values vectors. `num_rows`
/// and the lengths content are the caller's to corrupt.
std::string WriteListFile(const std::string& name, int64_t num_rows,
                          const std::vector<int32_t>& lengths,
                          const std::vector<int32_t>& values) {
  FileMetadata meta;
  meta.schema = Schema({{"v", DataType::List(DataType::Int32())}});
  meta.layout = ComputeLeafLayout(meta.schema).ValueOrDie();
  meta.total_rows = num_rows;
  RowGroupMeta rg;
  rg.num_rows = num_rows;

  std::vector<uint8_t> bytes(kLaqMagic, kLaqMagic + 4);
  rg.chunks.push_back(AppendInt32Chunk(&bytes, lengths));
  rg.chunks.push_back(AppendInt32Chunk(&bytes, values));
  meta.row_groups.push_back(rg);

  std::vector<uint8_t> footer;
  SerializeFileMetadata(meta, &footer);
  bytes.insert(bytes.end(), footer.begin(), footer.end());
  PutFixed32(&bytes, static_cast<uint32_t>(footer.size()));
  PutFixed32(&bytes, Crc32(footer.data(), footer.size()));
  bytes.insert(bytes.end(), kLaqMagic, kLaqMagic + 4);

  const std::string path = TempPath(name);
  laqfuzz::WriteBytes(path, bytes).Check();
  return path;
}

TEST(HostileFileTest, NegativeListLengthRejected) {
  // Lengths {2, -1, 3}: a naive reader folds these into offsets and
  // indexes the values leaf out of bounds. Chunk CRCs are valid, so only
  // the decode-time sign check can catch it.
  const std::string path =
      WriteListFile("neg_length.laq", 3, {2, -1, 3}, {1, 2, 3, 4});
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto batch = (*reader)->ReadRowGroup(0);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCorruption);
  EXPECT_NE(batch.status().ToString().find("negative list length"),
            std::string::npos)
      << batch.status().ToString();
}

TEST(HostileFileTest, LengthsSumMismatchRejected) {
  // Lengths sum to 6 but the values leaf holds only 4 values: reading row
  // 2 would run past the values buffer.
  const std::string path =
      WriteListFile("sum_mismatch.laq", 3, {1, 2, 3}, {1, 2, 3, 4});
  auto reader = LaqReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto batch = (*reader)->ReadRowGroup(0);
  ASSERT_FALSE(batch.ok());
  EXPECT_EQ(batch.status().code(), StatusCode::kCorruption);
}

TEST(HostileFileTest, LengthsCountBelowRowCountRejectedAtOpen) {
  // A lengths leaf with fewer entries than num_rows is structurally
  // inconsistent metadata: Open() must fail before any data is read.
  const std::string path =
      WriteListFile("short_lengths.laq", 3, {1, 2}, {1, 2, 3});
  auto reader = LaqReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(HostileFileTest, ListLengthSumOverflowRejected) {
  // Two int32 lengths near INT32_MAX sum past UINT32_MAX: the 32-bit
  // offsets vector cannot represent them, and multiplying by the element
  // width would overflow size arithmetic downstream.
  const std::string path = WriteListFile("overflow_lengths.laq", 2,
                                         {2147483647, 2147483647}, {1});
  auto reader = LaqReader::Open(path);
  if (reader.ok()) {
    auto batch = (*reader)->ReadRowGroup(0);
    ASSERT_FALSE(batch.ok());
    EXPECT_EQ(batch.status().code(), StatusCode::kCorruption);
  } else {
    EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
  }
}

// ---------------------------------------------------------------------------
// Footer-driven allocations: hostile metadata under a valid footer CRC.
// ---------------------------------------------------------------------------

/// A small valid file to derive metadata mutations from.
Result<laqfuzz::LaqImage> SmallImage(const std::string& name) {
  DatasetSpec spec;
  spec.num_events = 120;
  spec.row_group_size = 40;
  auto path = EnsureDataset(::testing::TempDir() + "/" + name, spec);
  HEPQ_RETURN_NOT_OK(path.status());
  return laqfuzz::LoadLaqImage(*path);
}

TEST(HostileFileTest, AllocationBombRejectedAtOpen) {
  auto image = SmallImage("alloc_bomb").ValueOrDie();
  FileMetadata mutated = image.metadata;
  // 2^61 "values" of an 8-byte leaf: a reader that trusts this resizes to
  // 16 EiB. Open() must reject it from metadata alone, instantly.
  mutated.row_groups[0].chunks[0].num_values = 1ull << 61;
  const std::string path = TempPath("alloc_bomb.laq");
  laqfuzz::WriteBytes(path, laqfuzz::RebuildWithMetadata(image, mutated))
      .Check();
  auto reader = LaqReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kCorruption);
}

TEST(HostileFileTest, ChunkBeyondDataRegionRejectedAtOpen) {
  auto image = SmallImage("oob_chunk").ValueOrDie();
  FileMetadata mutated = image.metadata;
  mutated.row_groups[0].chunks[0].file_offset = image.bytes.size();
  const std::string path = TempPath("oob_chunk.laq");
  laqfuzz::WriteBytes(path, laqfuzz::RebuildWithMetadata(image, mutated))
      .Check();
  EXPECT_EQ(LaqReader::Open(path).status().code(), StatusCode::kCorruption);
}

// ---------------------------------------------------------------------------
// Decode-kernel bounds, driven directly (no file needed).
// ---------------------------------------------------------------------------

TEST(DecodeBoundsTest, LzOutputOverrunRejected) {
  // Compress a highly repetitive buffer, then lie about the decompressed
  // size: match expansion must stop at the expected size, not write on.
  std::vector<uint8_t> input(4096, 0xab);
  std::vector<uint8_t> compressed;
  Compress(Codec::kLz, input.data(), input.size(), &compressed).Check();
  ASSERT_LT(compressed.size(), input.size());
  std::vector<uint8_t> out;
  const Status small = Decompress(Codec::kLz, compressed.data(),
                                  compressed.size(), 16, &out);
  ASSERT_FALSE(small.ok());
  EXPECT_EQ(small.code(), StatusCode::kCorruption);
  // The opposite lie (stream too short for the expected size) must also
  // fail cleanly rather than read past the input.
  const Status large = Decompress(Codec::kLz, compressed.data(),
                                  compressed.size(), input.size() * 2, &out);
  ASSERT_FALSE(large.ok());
  EXPECT_EQ(large.code(), StatusCode::kCorruption);
}

TEST(DecodeBoundsTest, RleRunOverflowRejected) {
  // One run claiming 2^40 values against a 4-value output buffer.
  std::vector<uint8_t> stream;
  PutVarint(&stream, 1ull << 40);
  PutSignedVarint(&stream, 7);
  int32_t out[4];
  const Status status = DecodeValues(TypeId::kInt32, Encoding::kRleVarint,
                                     stream.data(), stream.size(), 4, out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(DecodeBoundsTest, RleValueRangeRejected) {
  // A value outside int32 range must not truncate silently into an int32
  // leaf (it could become a negative list length downstream).
  std::vector<uint8_t> stream;
  PutVarint(&stream, 2);
  PutSignedVarint(&stream, 1ll << 40);
  int32_t out[2];
  const Status status = DecodeValues(TypeId::kInt32, Encoding::kRleVarint,
                                     stream.data(), stream.size(), 2, out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(DecodeBoundsTest, DeltaAccumulatorRangeRejected) {
  // Deltas that walk the prefix sum past int32 range; the accumulator
  // must neither trap (signed overflow) nor truncate.
  std::vector<uint8_t> stream;
  for (int i = 0; i < 3; ++i) PutSignedVarint(&stream, 1ll << 32);
  int32_t out[3];
  const Status status = DecodeValues(TypeId::kInt32, Encoding::kDeltaVarint,
                                     stream.data(), stream.size(), 3, out);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kCorruption);
}

TEST(DecodeBoundsTest, TruncatedStreamsRejected) {
  // Every encoding, fed half a stream: clean error, no over-read.
  const std::vector<int64_t> values = {5, 5, 5, 9, 12, 12, 40, 41};
  for (Encoding encoding :
       {Encoding::kPlain, Encoding::kRleVarint, Encoding::kDeltaVarint,
        Encoding::kDict, Encoding::kFor}) {
    std::vector<uint8_t> stream;
    EncodeValues(TypeId::kInt64, encoding, values.data(), values.size(),
                 &stream)
        .Check();
    int64_t out[8];
    const Status status =
        DecodeValues(TypeId::kInt64, encoding, stream.data(),
                     stream.size() / 2, values.size(), out);
    EXPECT_FALSE(status.ok()) << EncodingName(encoding);
  }
}

// ---------------------------------------------------------------------------
// Systematic sweeps via the shared mutation helpers (the in-test slice of
// what tools/laq_fuzz runs at scale).
// ---------------------------------------------------------------------------

TEST(MutationSweepTest, EveryStructuralTruncationRejected) {
  auto image = SmallImage("truncations").ValueOrDie();
  const std::string path = TempPath("truncated.laq");
  ReaderOptions no_checksums;
  no_checksums.validate_checksums = false;
  for (uint64_t b : laqfuzz::StructuralBoundaries(image)) {
    for (uint64_t size : {b > 0 ? b - 1 : b, b, b + 1}) {
      if (size >= image.bytes.size()) continue;
      laqfuzz::WriteBytes(path, laqfuzz::TruncateAt(image, size)).Check();
      // Truncation is structural: rejected with checksums on *and* off.
      EXPECT_FALSE(laqfuzz::ReadEverything(path, ReaderOptions{}).ok())
          << "size " << size;
      EXPECT_FALSE(laqfuzz::ReadEverything(path, no_checksums).ok())
          << "size " << size << " (checksums off)";
    }
  }
}

TEST(MutationSweepTest, EveryFieldMutationHandledPerItsClass) {
  auto image = SmallImage("fields").ValueOrDie();
  const std::string path = TempPath("field_mutated.laq");
  ReaderOptions with, without;
  with.validate_checksums = true;
  without.validate_checksums = false;
  for (const laqfuzz::FieldMutation& m :
       laqfuzz::EnumerateFieldMutations(image)) {
    laqfuzz::WriteBytes(path, laqfuzz::ApplyFieldMutation(image, m)).Check();
    const Status checked = laqfuzz::ReadEverything(path, with);
    const Status unchecked = laqfuzz::ReadEverything(path, without);
    const std::string what =
        std::string(laqfuzz::MutatedFieldName(m.field)) + " of group " +
        std::to_string(m.group) + " leaf " + std::to_string(m.leaf) +
        " := " + std::to_string(m.value);
    switch (m.mclass) {
      case laqfuzz::MutationClass::kStructural:
        EXPECT_FALSE(checked.ok()) << what;
        EXPECT_FALSE(unchecked.ok()) << what << " (checksums off)";
        break;
      case laqfuzz::MutationClass::kChecksummed:
        EXPECT_FALSE(checked.ok()) << what;
        break;
      case laqfuzz::MutationClass::kBestEffort:
        break;  // reaching this line without crashing is the assertion
    }
  }
}

TEST(MutationSweepTest, FooterRegionBitFlipsAllRejected) {
  auto image = SmallImage("flips").ValueOrDie();
  const std::string path = TempPath("bit_flipped.laq");
  // Every bit of the footer payload, trailer, and both magics is covered
  // by a structural check; sample every 7th byte to keep the test fast.
  for (uint64_t offset = image.data_end; offset < image.bytes.size();
       offset += 7) {
    laqfuzz::WriteBytes(path, laqfuzz::FlipBit(image, offset, 3)).Check();
    EXPECT_FALSE(laqfuzz::ReadEverything(path, ReaderOptions{}).ok())
        << "offset " << offset;
  }
  for (uint64_t offset : {uint64_t{0}, uint64_t{1}, uint64_t{2}, uint64_t{3}}) {
    laqfuzz::WriteBytes(path, laqfuzz::FlipBit(image, offset, 0)).Check();
    EXPECT_FALSE(laqfuzz::ReadEverything(path, ReaderOptions{}).ok())
        << "magic offset " << offset;
  }
}

TEST(MutationSweepTest, ChunkDataBitFlipsCaughtByChecksum) {
  auto image = SmallImage("data_flips").ValueOrDie();
  const std::string path = TempPath("data_flipped.laq");
  ReaderOptions no_checksums;
  no_checksums.validate_checksums = false;
  int flips = 0;
  for (uint64_t offset = 4; offset < image.data_end && flips < 64;
       offset += 997, ++flips) {
    if (laqfuzz::FlipClass(image, offset) !=
        laqfuzz::MutationClass::kChecksummed) {
      continue;
    }
    laqfuzz::WriteBytes(path, laqfuzz::FlipBit(image, offset, 5)).Check();
    EXPECT_FALSE(laqfuzz::ReadEverything(path, ReaderOptions{}).ok())
        << "offset " << offset;
    // Without checksums the read may succeed with altered values, but it
    // must return; this is the no-crash half of the guarantee.
    laqfuzz::ReadEverything(path, no_checksums);
  }
  EXPECT_GT(flips, 0);
}

// ---------------------------------------------------------------------------
// The same sweeps over a layout-optimized file, whose chunks carry the
// dictionary and frame-of-reference encodings: the mutation enumeration
// flips encodings into and out of kDict/kFor and rewrites sizes around
// their headers, so this is the hardening gate for the new decode paths.
// ---------------------------------------------------------------------------

/// A small optimized file (advanced encodings on by default) with at
/// least one dict- or for-encoded chunk, or the sweep proves nothing.
Result<laqfuzz::LaqImage> SmallOptimizedImage(const std::string& name) {
  DatasetSpec spec;
  spec.num_events = 120;
  spec.row_group_size = 40;
  auto path = EnsureOptimizedDataset(::testing::TempDir() + "/" + name, spec);
  HEPQ_RETURN_NOT_OK(path.status());
  return laqfuzz::LoadLaqImage(*path);
}

bool UsesAdvancedEncodings(const laqfuzz::LaqImage& image) {
  for (const RowGroupMeta& rg : image.metadata.row_groups) {
    for (const ChunkMeta& chunk : rg.chunks) {
      if (chunk.encoding == Encoding::kDict ||
          chunk.encoding == Encoding::kFor) {
        return true;
      }
    }
  }
  return false;
}

TEST(MutationSweepTest, AdvancedEncodingFieldMutationsHandledPerClass) {
  auto image = SmallOptimizedImage("adv_fields").ValueOrDie();
  ASSERT_TRUE(UsesAdvancedEncodings(image));
  const std::string path = TempPath("adv_field_mutated.laq");
  ReaderOptions with, without;
  with.validate_checksums = true;
  without.validate_checksums = false;
  for (const laqfuzz::FieldMutation& m :
       laqfuzz::EnumerateFieldMutations(image)) {
    laqfuzz::WriteBytes(path, laqfuzz::ApplyFieldMutation(image, m)).Check();
    const Status checked = laqfuzz::ReadEverything(path, with);
    const Status unchecked = laqfuzz::ReadEverything(path, without);
    const std::string what =
        std::string(laqfuzz::MutatedFieldName(m.field)) + " of group " +
        std::to_string(m.group) + " leaf " + std::to_string(m.leaf) +
        " := " + std::to_string(m.value);
    switch (m.mclass) {
      case laqfuzz::MutationClass::kStructural:
        EXPECT_FALSE(checked.ok()) << what;
        EXPECT_FALSE(unchecked.ok()) << what << " (checksums off)";
        break;
      case laqfuzz::MutationClass::kChecksummed:
        EXPECT_FALSE(checked.ok()) << what;
        break;
      case laqfuzz::MutationClass::kBestEffort:
        break;  // reaching this line without crashing is the assertion
    }
  }
}

TEST(MutationSweepTest, AdvancedEncodingDataFlipsNeverCrash) {
  auto image = SmallOptimizedImage("adv_flips").ValueOrDie();
  ASSERT_TRUE(UsesAdvancedEncodings(image));
  const std::string path = TempPath("adv_data_flipped.laq");
  ReaderOptions no_checksums;
  no_checksums.validate_checksums = false;
  int flips = 0;
  for (uint64_t offset = 4; offset < image.data_end && flips < 64;
       offset += 499, ++flips) {
    if (laqfuzz::FlipClass(image, offset) !=
        laqfuzz::MutationClass::kChecksummed) {
      continue;
    }
    laqfuzz::WriteBytes(path, laqfuzz::FlipBit(image, offset, 5)).Check();
    EXPECT_FALSE(laqfuzz::ReadEverything(path, ReaderOptions{}).ok())
        << "offset " << offset;
    // The defensive dict/for decoders must turn any surviving damage into
    // a clean Status (or altered values), never UB — this is the line the
    // sanitizer jobs watch.
    laqfuzz::ReadEverything(path, no_checksums);
  }
  EXPECT_GT(flips, 0);
}

// ---------------------------------------------------------------------------
// Pristine files and deterministic error propagation through the engines.
// ---------------------------------------------------------------------------

void ExpectBitIdentical(const Histogram1D& a, const Histogram1D& b) {
  ASSERT_EQ(a.num_entries(), b.num_entries());
  ASSERT_EQ(a.sum_weights(), b.sum_weights());
  ASSERT_EQ(a.underflow(), b.underflow());
  ASSERT_EQ(a.overflow(), b.overflow());
  for (int i = 0; i < a.spec().num_bins; ++i) {
    ASSERT_EQ(a.BinContent(i), b.BinContent(i)) << "bin " << i;
  }
}

TEST(PristineTest, AllFrontendsReadHardenedPathBitIdentically) {
  DatasetSpec spec;
  spec.num_events = 300;
  spec.row_group_size = 100;
  const std::string path =
      EnsureDataset(::testing::TempDir() + "/pristine", spec).ValueOrDie();
  for (queries::EngineKind engine :
       {queries::EngineKind::kRdf, queries::EngineKind::kBigQueryShape,
        queries::EngineKind::kPrestoShape, queries::EngineKind::kDoc}) {
    queries::RunOptions one, four;
    one.num_threads = 1;
    four.num_threads = 4;
    auto a = queries::RunAdlQuery(engine, 1, path, one);
    auto b = queries::RunAdlQuery(engine, 1, path, four);
    ASSERT_TRUE(a.ok()) << queries::EngineKindName(engine);
    ASSERT_TRUE(b.ok()) << queries::EngineKindName(engine);
    EXPECT_EQ(a->events_processed, 300);
    ExpectBitIdentical(a->histograms[0], b->histograms[0]);
  }
}

TEST(ErrorPropagationTest, FrontendsReportSameErrorForAnyThreadCount) {
  // Corrupt every chunk CRC in row groups 1 and 2 of a 3-group file: the
  // executor must always report the error of the smallest failing group
  // (group 1), so single- and multi-threaded runs fail identically.
  auto image = SmallImage("exec_err").ValueOrDie();
  ASSERT_GE(image.metadata.row_groups.size(), 3u);
  FileMetadata mutated = image.metadata;
  for (size_t g : {size_t{1}, size_t{2}}) {
    for (ChunkMeta& chunk : mutated.row_groups[g].chunks) {
      chunk.crc32 ^= 0xdeadbeef;
    }
  }
  const std::string path = TempPath("exec_err.laq");
  laqfuzz::WriteBytes(path, laqfuzz::RebuildWithMetadata(image, mutated))
      .Check();
  for (queries::EngineKind engine :
       {queries::EngineKind::kRdf, queries::EngineKind::kBigQueryShape,
        queries::EngineKind::kPrestoShape, queries::EngineKind::kDoc}) {
    queries::RunOptions one, four;
    one.num_threads = 1;
    four.num_threads = 4;
    auto a = queries::RunAdlQuery(engine, 1, path, one);
    auto b = queries::RunAdlQuery(engine, 1, path, four);
    ASSERT_FALSE(a.ok()) << queries::EngineKindName(engine);
    ASSERT_FALSE(b.ok()) << queries::EngineKindName(engine);
    EXPECT_EQ(a.status().code(), StatusCode::kCorruption);
    EXPECT_EQ(a.status().ToString(), b.status().ToString())
        << queries::EngineKindName(engine);
  }
}

// ---------------------------------------------------------------------------
// Pruning vs. corruption: zone-map pushdown legitimately skips data it can
// prove irrelevant — including damaged data — but must never mask
// corruption in any page or group it actually touches.
// ---------------------------------------------------------------------------

/// A clustered single-scalar file: `groups` row groups of `rows` events
/// each, MET.pt = 100*g + i (sorted within each group).
std::string WriteClusteredMet(const std::string& name, int groups, int rows,
                              const WriterOptions& options) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
  });
  std::vector<RecordBatchPtr> batches;
  for (int g = 0; g < groups; ++g) {
    std::vector<float> met(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
      met[static_cast<size_t>(i)] = 100.0f * g + static_cast<float>(i);
    }
    auto met_col = StructArray::Make({{"pt", DataType::Float32()}},
                                     {MakeFloat32Array(met)})
                       .ValueOrDie();
    batches.push_back(RecordBatch::Make(schema, {met_col}).ValueOrDie());
  }
  const std::string path = TempPath(name);
  WriteLaqFile(path, schema, batches, options).Check();
  return path;
}

/// Runs `MET.pt > cut` with pushdown (and late materialization) on or off.
Result<engine::EventQueryResult> RunMetCut(const std::string& path,
                                           double cut, bool pushdown) {
  engine::EventQuery query("met_cut");
  const int met = query.DeclareScalar("MET.pt");
  query.AddStage(engine::Gt(engine::ScalarRef(met), engine::Lit(cut)));
  query.AddHistogram({"met", "", 64, 0, 800}, engine::ScalarRef(met));
  ReaderOptions options;
  options.scan_pushdown = pushdown;
  options.late_materialization = pushdown;
  return query.Execute(path, options, 1);
}

TEST(PruningCorruptionTest, PrunedGroupMaySkipDamageButTouchedGroupMustNot) {
  WriterOptions options;
  options.row_group_size = 32;
  const std::string clean =
      WriteClusteredMet("prune_group_clean.laq", 2, 32, options);
  auto baseline = RunMetCut(clean, 50.0, true).ValueOrDie();
  ASSERT_EQ(baseline.events_processed, 64);

  auto image = laqfuzz::LoadLaqImage(clean).ValueOrDie();
  ASSERT_EQ(image.metadata.row_groups.size(), 2u);

  // Damage group 0 (MET.pt in [0,31], disjoint from the >50 cut): the
  // pruned scan never touches those bytes and must succeed bit-identically
  // to the clean file, while a full scan must still report the damage.
  const uint64_t dead_offset =
      image.metadata.row_groups[0].chunks[0].file_offset + 3;
  const std::string dead_path = TempPath("prune_group_dead.laq");
  laqfuzz::WriteBytes(dead_path, laqfuzz::FlipBit(image, dead_offset, 2))
      .Check();
  auto pruned = RunMetCut(dead_path, 50.0, true);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(pruned->scan.groups_pruned, 1u);
  EXPECT_EQ(pruned->events_processed, baseline.events_processed);
  EXPECT_EQ(pruned->events_selected, baseline.events_selected);
  ExpectBitIdentical(pruned->histograms[0], baseline.histograms[0]);
  auto full = RunMetCut(dead_path, 50.0, false);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kCorruption);

  // Damage group 1 (the surviving group): pruning must not mask it.
  const uint64_t live_offset =
      image.metadata.row_groups[1].chunks[0].file_offset + 3;
  const std::string live_path = TempPath("prune_group_live.laq");
  laqfuzz::WriteBytes(live_path, laqfuzz::FlipBit(image, live_offset, 2))
      .Check();
  auto touched = RunMetCut(live_path, 50.0, true);
  ASSERT_FALSE(touched.ok());
  EXPECT_EQ(touched.status().code(), StatusCode::kCorruption);
  EXPECT_FALSE(RunMetCut(live_path, 50.0, false).ok());
}

TEST(PruningCorruptionTest, PageSkipsHideOnlyProvablyIrrelevantDamage) {
  WriterOptions options;
  options.row_group_size = 64;
  options.page_values = 8;  // 8 pages of 8 sorted values each
  const std::string clean =
      WriteClusteredMet("prune_page_clean.laq", 1, 64, options);
  auto baseline = RunMetCut(clean, 56.0, true).ValueOrDie();
  EXPECT_GE(baseline.scan.pages_pruned, 7u);

  auto image = laqfuzz::LoadLaqImage(clean).ValueOrDie();
  const ChunkMeta& chunk = image.metadata.row_groups[0].chunks[0];
  ASSERT_EQ(chunk.pages.size(), 8u);

  // Page 0 holds values 0..7, disjoint from the >56 cut: a pruning scan
  // skips it (damage and all), a full scan rejects the file.
  const std::string dead_path = TempPath("prune_page_dead.laq");
  laqfuzz::WriteBytes(dead_path,
                      laqfuzz::FlipBit(image, chunk.file_offset + 1, 4))
      .Check();
  auto pruned = RunMetCut(dead_path, 56.0, true);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_GE(pruned->scan.pages_pruned, 7u);
  ExpectBitIdentical(pruned->histograms[0], baseline.histograms[0]);
  auto full = RunMetCut(dead_path, 56.0, false);
  ASSERT_FALSE(full.ok());
  EXPECT_EQ(full.status().code(), StatusCode::kCorruption);

  // Page 7 holds values 56..63 — the only page the cut can select.
  // Corruption there must surface with pruning on and off alike.
  uint64_t page7 = chunk.file_offset;
  for (size_t p = 0; p < 7; ++p) page7 += chunk.pages[p].compressed_size;
  const std::string live_path = TempPath("prune_page_live.laq");
  laqfuzz::WriteBytes(live_path, laqfuzz::FlipBit(image, page7 + 1, 4))
      .Check();
  auto touched = RunMetCut(live_path, 56.0, true);
  ASSERT_FALSE(touched.ok());
  EXPECT_EQ(touched.status().code(), StatusCode::kCorruption);
  auto touched_full = RunMetCut(live_path, 56.0, false);
  ASSERT_FALSE(touched_full.ok());
  EXPECT_EQ(touched_full.status().code(), StatusCode::kCorruption);
}

}  // namespace
}  // namespace hepq
