#include <cmath>

#include <gtest/gtest.h>

#include "core/fourvector.h"
#include "core/histogram.h"
#include "core/physics.h"
#include "core/rng.h"
#include "core/status.h"

namespace hepq {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, DefaultIsOk) {
  Status st;
  EXPECT_TRUE(st.ok());
  EXPECT_EQ(st.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  const Status st = Status::Invalid("bad arg");
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalid);
  EXPECT_EQ(st.message(), "bad arg");
  EXPECT_EQ(st.ToString(), "Invalid: bad arg");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kIoError), "IOError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotImplemented),
               "NotImplemented");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOutOfRange), "OutOfRange");
  EXPECT_STREQ(StatusCodeName(StatusCode::kTypeError), "TypeError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kKeyError), "KeyError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::KeyError("missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kKeyError);
}

TEST(ResultTest, MoveTo) {
  Result<std::string> r(std::string("hello"));
  std::string out;
  ASSERT_TRUE(r.MoveTo(&out).ok());
  EXPECT_EQ(out, "hello");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextU64() == b.NextU64()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformMean) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(10.0, 20.0);
  EXPECT_NEAR(sum / n, 15.0, 0.05);
}

TEST(RngTest, NextBelowBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.NextBelow(17), 17u);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0.0, sum2 = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian(5.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(19);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

class RngPoissonTest : public ::testing::TestWithParam<double> {};

TEST_P(RngPoissonTest, MeanAndVarianceMatch) {
  const double lambda = GetParam();
  Rng rng(23);
  double sum = 0.0, sum2 = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const int v = rng.NextPoisson(lambda);
    EXPECT_GE(v, 0);
    sum += v;
    sum2 += static_cast<double>(v) * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, lambda, std::max(0.05, lambda * 0.03));
  EXPECT_NEAR(var, lambda, std::max(0.1, lambda * 0.06));
}

INSTANTIATE_TEST_SUITE_P(Lambdas, RngPoissonTest,
                         ::testing::Values(0.3, 1.0, 3.0, 16.0, 80.0));

TEST(RngTest, PoissonZeroMean) {
  Rng rng(29);
  EXPECT_EQ(rng.NextPoisson(0.0), 0);
  EXPECT_EQ(rng.NextPoisson(-1.0), 0);
}

TEST(RngTest, BernoulliFraction) {
  Rng rng(31);
  int heads = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.NextBool(0.3)) ++heads;
  }
  EXPECT_NEAR(static_cast<double>(heads) / n, 0.3, 0.01);
}

// ---------------------------------------------------------------------------
// Histogram
// ---------------------------------------------------------------------------

TEST(HistogramTest, FindBinEdges) {
  Histogram1D h({"h", "", 10, 0.0, 10.0});
  EXPECT_EQ(h.FindBin(-0.001), -1);
  EXPECT_EQ(h.FindBin(0.0), 0);
  EXPECT_EQ(h.FindBin(0.999), 0);
  EXPECT_EQ(h.FindBin(1.0), 1);
  EXPECT_EQ(h.FindBin(9.999), 9);
  EXPECT_EQ(h.FindBin(10.0), 10);  // overflow
}

TEST(HistogramTest, FillAndFlows) {
  Histogram1D h({"h", "", 4, 0.0, 4.0});
  h.Fill(-1.0);
  h.Fill(0.5);
  h.Fill(1.5, 2.0);
  h.Fill(7.0);
  EXPECT_EQ(h.num_entries(), 4u);
  EXPECT_DOUBLE_EQ(h.underflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.overflow(), 1.0);
  EXPECT_DOUBLE_EQ(h.BinContent(0), 1.0);
  EXPECT_DOUBLE_EQ(h.BinContent(1), 2.0);
  EXPECT_DOUBLE_EQ(h.sum_weights(), 5.0);
}

TEST(HistogramTest, MeanAndStddev) {
  Histogram1D h({"h", "", 100, 0.0, 10.0});
  for (int i = 0; i < 1000; ++i) h.Fill(4.0);
  for (int i = 0; i < 1000; ++i) h.Fill(6.0);
  EXPECT_DOUBLE_EQ(h.mean(), 5.0);
  EXPECT_NEAR(h.stddev(), 1.0, 1e-12);
}

TEST(HistogramTest, MergeRequiresMatchingSpec) {
  Histogram1D a({"a", "", 10, 0.0, 1.0});
  Histogram1D b({"b", "", 10, 0.0, 1.0});
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(HistogramTest, MergeAddsContents) {
  Histogram1D a({"h", "", 10, 0.0, 10.0});
  Histogram1D b({"h", "", 10, 0.0, 10.0});
  a.Fill(1.0);
  b.Fill(1.0);
  b.Fill(20.0);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.BinContent(1), 2.0);
  EXPECT_DOUBLE_EQ(a.overflow(), 1.0);
  EXPECT_EQ(a.num_entries(), 3u);
}

TEST(HistogramTest, ApproxEquals) {
  Histogram1D a({"h", "", 10, 0.0, 10.0});
  Histogram1D b({"h", "", 10, 0.0, 10.0});
  a.Fill(3.0);
  b.Fill(3.0);
  EXPECT_TRUE(a.ApproxEquals(b));
  b.Fill(4.0);
  EXPECT_FALSE(a.ApproxEquals(b));
}

TEST(HistogramTest, BinGeometry) {
  Histogram1D h({"h", "", 4, 0.0, 8.0});
  EXPECT_DOUBLE_EQ(h.BinLowEdge(0), 0.0);
  EXPECT_DOUBLE_EQ(h.BinLowEdge(4), 8.0);
  EXPECT_DOUBLE_EQ(h.BinCenter(1), 3.0);
}

TEST(HistogramTest, DegenerateSpecIsSanitized) {
  Histogram1D h({"h", "", 0, 5.0, 5.0});
  EXPECT_GE(h.spec().num_bins, 1);
  EXPECT_GT(h.spec().hi, h.spec().lo);
  h.Fill(5.0);  // must not crash
}

TEST(HistogramTest, CsvIncludesFlowRows) {
  Histogram1D h({"h", "", 2, 0.0, 2.0});
  h.Fill(-5.0);
  h.Fill(0.5);
  h.Fill(1.5);
  h.Fill(1.5);
  h.Fill(99.0);
  EXPECT_EQ(h.ToCsv(),
            "bin_low,bin_high,content\n"
            "-inf,0,1\n"
            "0,1,1\n"
            "1,2,2\n"
            "2,inf,1\n");
}

// Property sweep: every in-range value lands in exactly the bin whose
// edges contain it.
class HistogramBinProperty : public ::testing::TestWithParam<int> {};

TEST_P(HistogramBinProperty, ValueWithinItsBinEdges) {
  const int bins = GetParam();
  Histogram1D h({"h", "", bins, -3.0, 7.0});
  Rng rng(41);
  for (int i = 0; i < 2000; ++i) {
    const double v = rng.Uniform(-3.0, 7.0);
    const int bin = h.FindBin(v);
    ASSERT_GE(bin, 0);
    ASSERT_LT(bin, bins);
    EXPECT_GE(v, h.BinLowEdge(bin));
    EXPECT_LT(v, h.BinLowEdge(bin + 1));
  }
}

INSTANTIATE_TEST_SUITE_P(BinCounts, HistogramBinProperty,
                         ::testing::Values(1, 7, 100, 1000));

// ---------------------------------------------------------------------------
// Four-vectors & physics
// ---------------------------------------------------------------------------

TEST(FourVectorTest, RoundTripConversion) {
  const PtEtaPhiM p{50.0, 1.2, -2.1, 5.0};
  const PtEtaPhiM q = p.ToPxPyPzE().ToPtEtaPhiM();
  EXPECT_NEAR(q.pt, p.pt, 1e-9);
  EXPECT_NEAR(q.eta, p.eta, 1e-9);
  EXPECT_NEAR(q.phi, p.phi, 1e-9);
  EXPECT_NEAR(q.mass, p.mass, 1e-7);
}

TEST(FourVectorTest, MassOfSingleParticle) {
  const PtEtaPhiM p{30.0, 0.5, 1.0, 4.2};
  EXPECT_NEAR(p.ToPxPyPzE().Mass(), 4.2, 1e-9);
}

TEST(FourVectorTest, BackToBackMasslessPairMass) {
  // Two massless particles, equal pt, opposite phi, eta = 0:
  // m^2 = 2 pt^2 (1 - cos(pi)) = 4 pt^2.
  const PtEtaPhiM p1{40.0, 0.0, 0.0, 0.0};
  const PtEtaPhiM p2{40.0, 0.0, M_PI, 0.0};
  EXPECT_NEAR(InvariantMass2(p1, p2), 80.0, 1e-9);
}

TEST(FourVectorTest, CollinearPairHasSumMass) {
  const PtEtaPhiM p1{40.0, 0.7, 0.3, 0.0};
  const PtEtaPhiM p2{10.0, 0.7, 0.3, 0.0};
  EXPECT_NEAR(InvariantMass2(p1, p2), 0.0, 1e-6);
}

TEST(FourVectorTest, AdditionIsCommutativeAndAssociative) {
  Rng rng(43);
  for (int i = 0; i < 200; ++i) {
    const PtEtaPhiM a{rng.Uniform(1, 100), rng.Uniform(-2, 2),
                      rng.Uniform(-3, 3), rng.Uniform(0, 10)};
    const PtEtaPhiM b{rng.Uniform(1, 100), rng.Uniform(-2, 2),
                      rng.Uniform(-3, 3), rng.Uniform(0, 10)};
    const PtEtaPhiM c{rng.Uniform(1, 100), rng.Uniform(-2, 2),
                      rng.Uniform(-3, 3), rng.Uniform(0, 10)};
    EXPECT_NEAR((a + b).pt, (b + a).pt, 1e-9);
    EXPECT_NEAR(((a + b) + c).pt, AddPtEtaPhiM3(a, b, c).pt, 1e-9);
    EXPECT_NEAR(((a + b) + c).mass, AddPtEtaPhiM3(a, b, c).mass, 1e-6);
  }
}

TEST(PhysicsTest, DeltaPhiWrapsIntoRange) {
  Rng rng(47);
  for (int i = 0; i < 2000; ++i) {
    const double d =
        DeltaPhi(rng.Uniform(-10.0, 10.0), rng.Uniform(-10.0, 10.0));
    EXPECT_GT(d, -M_PI - 1e-12);
    EXPECT_LE(d, M_PI + 1e-12);
  }
}

TEST(PhysicsTest, DeltaPhiKnownValues) {
  EXPECT_NEAR(DeltaPhi(0.5, 0.2), 0.3, 1e-12);
  EXPECT_NEAR(DeltaPhi(3.0, -3.0), 6.0 - 2 * M_PI, 1e-12);
}

TEST(PhysicsTest, DeltaRIsSymmetricAndNonNegative) {
  Rng rng(53);
  for (int i = 0; i < 500; ++i) {
    const double eta1 = rng.Uniform(-3, 3), phi1 = rng.Uniform(-3, 3);
    const double eta2 = rng.Uniform(-3, 3), phi2 = rng.Uniform(-3, 3);
    const double d12 = DeltaR(eta1, phi1, eta2, phi2);
    EXPECT_GE(d12, 0.0);
    EXPECT_NEAR(d12, DeltaR(eta2, phi2, eta1, phi1), 1e-12);
    EXPECT_NEAR(DeltaR(eta1, phi1, eta1, phi1), 0.0, 1e-12);
  }
}

TEST(PhysicsTest, InvariantMassAtLeastSumOfMasses) {
  Rng rng(59);
  for (int i = 0; i < 500; ++i) {
    const PtEtaPhiM p1{rng.Uniform(1, 100), rng.Uniform(-2, 2),
                       rng.Uniform(-3, 3), rng.Uniform(0, 5)};
    const PtEtaPhiM p2{rng.Uniform(1, 100), rng.Uniform(-2, 2),
                       rng.Uniform(-3, 3), rng.Uniform(0, 5)};
    EXPECT_GE(InvariantMass2(p1, p2), p1.mass + p2.mass - 1e-6);
  }
}

TEST(PhysicsTest, TransverseMassKnownValue) {
  // Back-to-back: mT = sqrt(2 pt1 pt2 (1 - cos pi)) = 2 sqrt(pt1 pt2).
  EXPECT_NEAR(TransverseMass(25.0, 0.0, 25.0, M_PI), 50.0, 1e-9);
  // Collinear: mT = 0.
  EXPECT_NEAR(TransverseMass(25.0, 1.0, 30.0, 1.0), 0.0, 1e-9);
}

}  // namespace
}  // namespace hepq
