#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "datagen/dataset.h"
#include "fileio/layout_optimizer.h"
#include "fileio/predicate.h"
#include "fileio/reader.h"
#include "fileio/writer.h"
#include "queries/adl.h"

namespace hepq {
namespace {

using queries::EngineKind;
using queries::RunAdlQuery;
using queries::RunOptions;

DatasetSpec TestSpec() {
  DatasetSpec spec;
  spec.num_events = 4000;
  spec.row_group_size = 1000;
  return spec;
}

/// The generator's layout: events in generation order, nothing clustered.
const std::string& OriginalDataset() {
  static const auto& path = *new std::string(
      EnsureDataset(::testing::TempDir() + "/hepq_optimizer", TestSpec())
          .ValueOrDie());
  return path;
}

/// The same events after the layout optimization pass (default options).
const std::string& OptimizedDataset() {
  static const auto& path = *new std::string(
      EnsureOptimizedDataset(::testing::TempDir() + "/hepq_optimizer",
                             TestSpec())
          .ValueOrDie());
  return path;
}

// ---------------------------------------------------------------------------
// The optimizer's acceptance gate: rewriting the layout must be invisible
// in every result. All 8 benchmark queries, all four frontends, pruning on
// and off, single- and multi-threaded — histograms bit-identical between
// the original file and its optimized copy.
// ---------------------------------------------------------------------------

class OptimizerBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(OptimizerBitIdentity, RewrittenLayoutIsInvisibleInResults) {
  const int q = GetParam();
  for (EngineKind engine :
       {EngineKind::kRdf, EngineKind::kBigQueryShape,
        EngineKind::kPrestoShape, EngineKind::kDoc}) {
    for (bool pushdown : {true, false}) {
      for (int threads : {1, 4}) {
        RunOptions options;
        options.scan_pushdown = pushdown;
        options.num_threads = threads;
        const auto original =
            RunAdlQuery(engine, q, OriginalDataset(), options);
        const auto optimized =
            RunAdlQuery(engine, q, OptimizedDataset(), options);
        ASSERT_TRUE(original.ok()) << original.status().ToString();
        ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
        EXPECT_EQ(original->events_processed, optimized->events_processed);
        ASSERT_EQ(original->histograms.size(), optimized->histograms.size());
        for (size_t h = 0; h < original->histograms.size(); ++h) {
          const Histogram1D& a = original->histograms[h];
          const Histogram1D& b = optimized->histograms[h];
          ASSERT_EQ(a.num_entries(), b.num_entries())
              << "Q" << q << " histogram " << h << " on "
              << queries::EngineKindName(engine) << " pushdown=" << pushdown
              << " threads=" << threads;
          ASSERT_EQ(a.sum_weights(), b.sum_weights());
          ASSERT_EQ(a.underflow(), b.underflow());
          ASSERT_EQ(a.overflow(), b.overflow());
          for (int i = 0; i < a.spec().num_bins; ++i) {
            ASSERT_EQ(a.BinContent(i), b.BinContent(i))
                << "Q" << q << " histogram " << h << " bin " << i << " on "
                << queries::EngineKindName(engine);
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, OptimizerBitIdentity,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// The point of the rewrite: zone maps that actually prune.
// ---------------------------------------------------------------------------

TEST(LayoutOptimizerTest, OptimizedLayoutMakesKinematicPagesPrunable) {
  const auto before = AnalyzeLaqFile(OriginalDataset()).ValueOrDie();
  const auto after = AnalyzeLaqFile(OptimizedDataset()).ValueOrDie();
  EXPECT_EQ(before.total_rows, after.total_rows);

  auto fraction = [](const LayoutAnalysis& analysis,
                     const std::string& path) {
    for (const LeafLayoutSummary& leaf : analysis.leaves) {
      if (leaf.path == path) return leaf.prunable_fraction();
    }
    ADD_FAILURE() << "leaf not found: " << path;
    return -1.0;
  };
  // The primary cluster key goes from "every page spans the full
  // multiplicity range" to near-constant pages.
  EXPECT_EQ(fraction(before, "Muon#lengths"), 0.0);
  EXPECT_GT(fraction(after, "Muon#lengths"), 0.5);
}

TEST(LayoutOptimizerTest, SelectiveQueriesDecodeFewerBytesAfterRewrite) {
  // Q5 gates on nMuon >= 2, Q8 on nElectron + nMuon >= 3; both should
  // skip whole row groups on the clustered copy and none on the original.
  for (int q : {5, 8}) {
    const auto original =
        RunAdlQuery(EngineKind::kBigQueryShape, q, OriginalDataset());
    const auto optimized =
        RunAdlQuery(EngineKind::kBigQueryShape, q, OptimizedDataset());
    ASSERT_TRUE(original.ok()) << original.status().ToString();
    ASSERT_TRUE(optimized.ok()) << optimized.status().ToString();
    EXPECT_EQ(original->scan.groups_pruned, 0u) << "Q" << q;
    EXPECT_GT(optimized->scan.groups_pruned, 0u) << "Q" << q;
    EXPECT_LT(optimized->scan.decoded_bytes, original->scan.decoded_bytes)
        << "Q" << q;
  }
}

// ---------------------------------------------------------------------------
// Cluster-key extraction units.
// ---------------------------------------------------------------------------

SchemaPtr KeySchema() {
  return std::make_shared<Schema>(std::vector<Field>{
      {"event", DataType::Int64()},
      {"MET", DataType::Struct({{"pt", DataType::Float32()}})},
      {"Jet", DataType::List(DataType::Struct({{"pt", DataType::Float32()}}))},
  });
}

RecordBatchPtr KeyBatch() {
  auto met = StructArray::Make({{"pt", DataType::Float32()}},
                               {MakeFloat32Array({5.f, 25.f, 15.f})})
                 .ValueOrDie();
  // Row 0: jets {3, 9}; row 1: empty; row 2: jets {7}.
  auto jets = MakeListOfStructArray({{"pt", DataType::Float32()}},
                                    {0, 2, 2, 3},
                                    {MakeFloat32Array({3.f, 9.f, 7.f})})
                  .ValueOrDie();
  return RecordBatch::Make(KeySchema(), {MakeInt64Array({11, 22, 33}),
                                         met, ArrayPtr(jets)})
      .ValueOrDie();
}

TEST(ClusterKeyTest, ExtractsEveryAcceptedKeyForm) {
  const RecordBatchPtr batch = KeyBatch();

  const auto lengths = ExtractClusterKey(*batch, "Jet#lengths").ValueOrDie();
  EXPECT_EQ(lengths, (std::vector<double>{2, 0, 1}));

  const auto met = ExtractClusterKey(*batch, "MET.pt").ValueOrDie();
  EXPECT_EQ(met, (std::vector<double>{5, 25, 15}));

  const auto event = ExtractClusterKey(*batch, "event").ValueOrDie();
  EXPECT_EQ(event, (std::vector<double>{11, 22, 33}));

  // Item leaves reduce to the per-event maximum; empty lists sort first.
  const auto jet_pt = ExtractClusterKey(*batch, "Jet.pt").ValueOrDie();
  ASSERT_EQ(jet_pt.size(), 3u);
  EXPECT_EQ(jet_pt[0], 9.0);
  EXPECT_TRUE(std::isinf(jet_pt[1]) && jet_pt[1] < 0);
  EXPECT_EQ(jet_pt[2], 7.0);

  EXPECT_FALSE(ExtractClusterKey(*batch, "nope").ok());
}

// ---------------------------------------------------------------------------
// Union min-count predicates (sum-of-lengths over several lists).
// ---------------------------------------------------------------------------

TEST(SumPredicateTest, KeepsTightestBoundPerLeafSet) {
  ScanPredicateSet set;
  EXPECT_TRUE(set.empty());
  set.AddMinCountSum({"Electron", "Muon"}, 2);
  set.AddMinCountSum({"Electron", "Muon"}, 3);  // tightens
  set.AddMinCountSum({"Electron", "Muon"}, 1);  // weaker: ignored
  EXPECT_FALSE(set.empty());
  ASSERT_EQ(set.sum_predicates().size(), 1u);
  EXPECT_EQ(set.sum_predicates()[0].min_total, 3);
  EXPECT_EQ(set.size(), 1u);

  set.AddMinCountSum({"Muon"}, 2);  // different leaf set: new conjunct
  EXPECT_EQ(set.sum_predicates().size(), 2u);

  set.AddMinCountSum({}, 3);           // no-ops
  set.AddMinCountSum({"Photon"}, 0);
  EXPECT_EQ(set.sum_predicates().size(), 2u);

  ScanPredicateSet other;
  other.AddMinCountSum({"Electron", "Muon"}, 5);
  set.Merge(other);
  EXPECT_EQ(set.sum_predicates()[0].min_total, 5);

  EXPECT_NE(set.ToString().find(
                "Electron#lengths + Muon#lengths >= 5"),
            std::string::npos);
}

TEST(SumPredicateTest, BindRequiresEverySourceLeaf) {
  const std::string path =
      ::testing::TempDir() + "/sum_predicate_bind.laq";
  ASSERT_TRUE(WriteLaqFile(path, KeySchema(), {KeyBatch()}).ok());
  auto reader = LaqReader::Open(path).ValueOrDie();
  const FileMetadata& meta = reader->metadata();

  ScanPredicateSet present;
  present.AddMinCountSum({"Jet"}, 2);
  const auto bound = BindSumPredicates(present, meta);
  ASSERT_EQ(bound.size(), 1u);
  EXPECT_EQ(bound[0].min_total, 2);
  ASSERT_EQ(bound[0].leaf_indices.size(), 1u);
  EXPECT_EQ(bound[0].leaf_indices[0], meta.LeafIndex("Jet#lengths"));

  // A missing term would make the zone-sum bound unsound, so the whole
  // condition is dropped — not applied on the leaves that do exist.
  ScanPredicateSet partial;
  partial.AddMinCountSum({"Jet", "Photon"}, 2);
  EXPECT_TRUE(BindSumPredicates(partial, meta).empty());
}

TEST(SumPredicateTest, ZoneSumPrunesOnlyImpossibleGroups) {
  auto schema = std::make_shared<Schema>(std::vector<Field>{
      {"A", DataType::List(DataType::Float64())},
      {"B", DataType::List(DataType::Float64())},
  });
  auto make_batch = [&](std::vector<uint32_t> a_offsets,
                        std::vector<uint32_t> b_offsets) {
    const uint32_t a_total = a_offsets.back();
    const uint32_t b_total = b_offsets.back();
    auto a = ListArray::Make(
                 a_offsets,
                 MakeFloat64Array(std::vector<double>(
                     static_cast<size_t>(a_total), 1.0)))
                 .ValueOrDie();
    auto b = ListArray::Make(
                 b_offsets,
                 MakeFloat64Array(std::vector<double>(
                     static_cast<size_t>(b_total), 2.0)))
                 .ValueOrDie();
    return RecordBatch::Make(schema, {ArrayPtr(a), ArrayPtr(b)})
        .ValueOrDie();
  };
  // Group 0: per-row sums max out at 1 + 1 = 2. Group 1: a row reaches 3.
  const std::string path = ::testing::TempDir() + "/sum_predicate_prune.laq";
  WriterOptions options;
  options.row_group_size = 3;
  ASSERT_TRUE(WriteLaqFile(path, schema,
                           {make_batch({0, 1, 1, 2}, {0, 1, 2, 2}),
                            make_batch({0, 2, 2, 3}, {0, 1, 2, 2})},
                           options)
                  .ok());

  auto reader = LaqReader::Open(path).ValueOrDie();
  ScanPredicateSet preds;
  preds.AddMinCountSum({"A", "B"}, 3);

  const auto pruned = reader->ReadRowGroupFiltered(0, {"A", "B"}, preds,
                                                   nullptr);
  ASSERT_TRUE(pruned.ok()) << pruned.status().ToString();
  EXPECT_EQ(*pruned, nullptr);  // no row can reach a combined size of 3
  EXPECT_EQ(reader->scan_stats().groups_pruned, 1u);
  EXPECT_EQ(reader->scan_stats().rows_pruned, 3u);

  const auto kept = reader->ReadRowGroupFiltered(1, {"A", "B"}, preds,
                                                 nullptr);
  ASSERT_TRUE(kept.ok()) << kept.status().ToString();
  ASSERT_NE(*kept, nullptr);  // zone sum reaches 2 + 1 = 3: cannot prune
  EXPECT_EQ((*kept)->num_rows(), 3);
  EXPECT_EQ(reader->scan_stats().groups_pruned, 1u);
}

}  // namespace
}  // namespace hepq
