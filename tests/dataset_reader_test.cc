#include <sys/stat.h>

#include <gtest/gtest.h>

#include "columnar/builder.h"
#include "datagen/generator.h"
#include "fileio/dataset_reader.h"
#include "fileio/writer.h"

namespace hepq {
namespace {

class DatasetReaderTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dir_ = new std::string(::testing::TempDir() + "/hepq_multifile");
    ::mkdir(dir_->c_str(), 0755);
    // Three files with 2, 1, and 3 row groups (300 rows each).
    EventGenerator generator;
    WriterOptions options;
    options.row_group_size = 300;
    const int groups_per_file[] = {2, 1, 3};
    for (int f = 0; f < 3; ++f) {
      std::vector<RecordBatchPtr> batches;
      for (int g = 0; g < groups_per_file[f]; ++g) {
        batches.push_back(generator.GenerateBatch(300));
      }
      const std::string path =
          *dir_ + "/part-" + std::to_string(f) + ".laq";
      WriteLaqFile(path, EventGenerator::CmsSchema(), batches, options)
          .Check();
    }
  }

  static std::string* dir_;
};

std::string* DatasetReaderTest::dir_ = nullptr;

TEST_F(DatasetReaderTest, OpenDirectoryFindsAllParts) {
  auto dataset = DatasetReader::OpenDirectory(*dir_);
  ASSERT_TRUE(dataset.ok());
  EXPECT_EQ((*dataset)->num_files(), 3);
  EXPECT_EQ((*dataset)->num_row_groups(), 6);
  EXPECT_EQ((*dataset)->total_rows(), 1800);
  EXPECT_TRUE((*dataset)->schema().Equals(*EventGenerator::CmsSchema()));
}

TEST_F(DatasetReaderTest, GlobalRowGroupsSpanFiles) {
  auto dataset = DatasetReader::OpenDirectory(*dir_).ValueOrDie();
  // Events were generated sequentially, so the first event id of global
  // group g is 300 * g regardless of file boundaries.
  for (int g = 0; g < dataset->num_row_groups(); ++g) {
    auto batch = dataset->ReadRowGroup(g, {"event"});
    ASSERT_TRUE(batch.ok()) << "group " << g;
    EXPECT_EQ((*batch)->num_rows(), 300);
    const auto& ids =
        static_cast<const Int64Array&>(*(*batch)->ColumnByName("event"));
    EXPECT_EQ(ids.Value(0), 300 * g) << "group " << g;
  }
}

TEST_F(DatasetReaderTest, OutOfRangeGroup) {
  auto dataset = DatasetReader::OpenDirectory(*dir_).ValueOrDie();
  EXPECT_EQ(dataset->ReadRowGroup(6).status().code(),
            StatusCode::kOutOfRange);
  EXPECT_EQ(dataset->ReadRowGroup(-1).status().code(),
            StatusCode::kOutOfRange);
}

TEST_F(DatasetReaderTest, ScanStatsAggregateAcrossFiles) {
  auto dataset = DatasetReader::OpenDirectory(*dir_).ValueOrDie();
  for (int g = 0; g < dataset->num_row_groups(); ++g) {
    ASSERT_TRUE(dataset->ReadRowGroup(g, {"MET.pt"}).ok());
  }
  const ScanStats stats = dataset->scan_stats();
  EXPECT_EQ(stats.values_read, 1800u);
  EXPECT_GT(stats.storage_bytes, 0u);
  dataset->ResetScanStats();
  EXPECT_EQ(dataset->scan_stats().values_read, 0u);
}

TEST_F(DatasetReaderTest, RejectsSchemaMismatch) {
  const std::string other = ::testing::TempDir() + "/other_schema.laq";
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::Int32()}});
  auto batch =
      RecordBatch::Make(schema, {MakeInt32Array({1})}).ValueOrDie();
  WriteLaqFile(other, schema, {RecordBatchPtr(batch)}).Check();
  auto dataset =
      DatasetReader::Open({*dir_ + "/part-0.laq", other});
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalid);
}

TEST_F(DatasetReaderTest, ErrorsOnEmptyInputs) {
  EXPECT_FALSE(DatasetReader::Open({}).ok());
  // A nonexistent directory and a directory with no .laq files both fail
  // with Invalid, and the message names the offending path.
  const std::string missing = ::testing::TempDir() + "/no_such";
  const auto no_such = DatasetReader::OpenDirectory(missing);
  EXPECT_EQ(no_such.status().code(), StatusCode::kInvalid);
  EXPECT_NE(no_such.status().message().find(missing), std::string::npos)
      << no_such.status().message();
  const std::string empty_dir = ::testing::TempDir() + "/hepq_empty_dir";
  ::mkdir(empty_dir.c_str(), 0755);
  const auto empty = DatasetReader::OpenDirectory(empty_dir);
  EXPECT_EQ(empty.status().code(), StatusCode::kInvalid);
  EXPECT_NE(empty.status().message().find(empty_dir), std::string::npos)
      << empty.status().message();
  EXPECT_NE(empty.status().message().find("no .laq files"),
            std::string::npos)
      << empty.status().message();
}

TEST_F(DatasetReaderTest, OpenDirectoryRejectsSchemaMismatch) {
  const std::string mixed_dir = ::testing::TempDir() + "/hepq_mixed_schema";
  ::mkdir(mixed_dir.c_str(), 0755);
  auto schema = std::make_shared<Schema>(
      std::vector<Field>{{"x", DataType::Int32()}});
  auto batch =
      RecordBatch::Make(schema, {MakeInt32Array({1})}).ValueOrDie();
  WriteLaqFile(mixed_dir + "/a.laq", schema, {RecordBatchPtr(batch)})
      .Check();
  EventGenerator generator;
  WriteLaqFile(mixed_dir + "/b.laq", EventGenerator::CmsSchema(),
               {generator.GenerateBatch(10)})
      .Check();
  const auto dataset = DatasetReader::OpenDirectory(mixed_dir);
  EXPECT_EQ(dataset.status().code(), StatusCode::kInvalid);
  EXPECT_NE(dataset.status().message().find("schema"), std::string::npos)
      << dataset.status().message();
}

TEST_F(DatasetReaderTest, PerFilePruningStillAvailable) {
  auto dataset = DatasetReader::OpenDirectory(*dir_).ValueOrDie();
  // File 0 holds events 0..599: pruning on its reader works as usual.
  auto groups = dataset->file(0).SelectRowGroups("event", 0.0, 100.0);
  ASSERT_TRUE(groups.ok());
  EXPECT_EQ(*groups, std::vector<int>{0});
}

}  // namespace
}  // namespace hepq
