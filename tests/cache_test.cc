// Cache-hierarchy tests: unit coverage of the three levels (footer,
// decoded-chunk, result), the dataset content-version that keys result
// invalidation, thread-safety hammering (the TSan job runs this binary),
// and the end-to-end gates the PR promises — bit-identical histograms
// across {cache off, cold, warm} x {1, 4} threads for all 8 queries on
// all 4 frontends, and a warm repeat that decodes zero bytes from disk.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cache/cache.h"
#include "datagen/dataset.h"
#include "fileio/reader.h"
#include "queries/adl.h"

namespace hepq::cache {
namespace {

using queries::EngineKind;
using queries::EngineKindName;
using queries::QueryRunOutput;
using queries::RunAdlQuery;
using queries::RunOptions;

constexpr EngineKind kEngines[] = {
    EngineKind::kRdf, EngineKind::kBigQueryShape, EngineKind::kPrestoShape,
    EngineKind::kDoc};

/// Shared small dataset (3 row groups, same geometry as queries_test).
const std::string& TestDataset() {
  static const auto& path = *new std::string([] {
    DatasetSpec spec;
    spec.num_events = 6000;
    spec.row_group_size = 2000;
    return EnsureDataset(::testing::TempDir() + "/hepq_cache", spec)
        .ValueOrDie();
  }());
  return path;
}

// ---------------------------------------------------------------------------
// ChunkCache units

ChunkKey Key(uint64_t file_id, int leaf, int group) {
  ChunkKey key;
  key.file_id = file_id;
  key.leaf = leaf;
  key.group = group;
  return key;
}

std::vector<uint8_t> Payload(size_t size, uint8_t fill) {
  return std::vector<uint8_t>(size, fill);
}

TEST(ChunkCacheTest, HitReturnsInsertedBytes) {
  ChunkCache cache;
  const auto data = Payload(100, 0xAB);
  cache.Insert(Key(1, 2, 3), data.data(), data.size());
  std::vector<uint8_t> out;
  ASSERT_TRUE(cache.Get(Key(1, 2, 3), &out));
  EXPECT_EQ(out, data);
  EXPECT_FALSE(cache.Get(Key(1, 2, 4), &out));  // different group
  EXPECT_FALSE(cache.Get(Key(2, 2, 3), &out));  // different file generation
  const CacheCounters c = cache.counters();
  EXPECT_EQ(c.hits, 1u);
  EXPECT_EQ(c.misses, 2u);
  EXPECT_EQ(c.inserts, 1u);
  EXPECT_EQ(c.bytes_served, 100u);
  EXPECT_EQ(c.bytes_held, 100u);
  EXPECT_EQ(c.entries, 1u);
}

TEST(ChunkCacheTest, ByteBudgetBoundsResidencyAndEvictsLru) {
  // 16 KiB budget over 16 stripes = 1 KiB per stripe: 600-byte chunks fit
  // one per stripe, so mass insertion must evict and hold <= the budget.
  CacheOptions options;
  options.decoded_budget_bytes = 16 * 1024;
  ChunkCache cache(options);
  const auto data = Payload(600, 0x5A);
  const int n = 200;
  for (int i = 0; i < n; ++i) {
    cache.Insert(Key(7, i, 0), data.data(), data.size());
  }
  const CacheCounters c = cache.counters();
  EXPECT_LE(c.bytes_held, options.decoded_budget_bytes);
  EXPECT_GT(c.evictions, 0u);
  EXPECT_EQ(c.inserts + 0u, static_cast<uint64_t>(n));
  // The most recent insert is by definition the MRU of its stripe and
  // must still be resident.
  std::vector<uint8_t> out;
  EXPECT_TRUE(cache.Get(Key(7, n - 1, 0), &out));
}

TEST(ChunkCacheTest, EvictionIsOldestFirstWithinAStripe) {
  // One 600-byte entry fits a 1 KiB stripe, two do not: the second
  // same-stripe insert must evict the first (LRU = insertion order here).
  CacheOptions options;
  options.decoded_budget_bytes = 16 * 1024;
  ChunkCache cache(options);
  const auto data = Payload(600, 0x11);
  const ChunkKey first = Key(3, 0, 0);
  cache.Insert(first, data.data(), data.size());
  // Find a key that lands in the same stripe: the first insert that
  // knocks `first` out collided with it — and because `first` was the
  // older of the two residents, its eviction IS the LRU order.
  ChunkKey collider{};
  bool evicted = false;
  std::vector<uint8_t> out;
  for (int g = 1; g < 10000 && !evicted; ++g) {
    collider = Key(3, 0, g);
    cache.Insert(collider, data.data(), data.size());
    evicted = !cache.Get(first, &out);
  }
  ASSERT_TRUE(evicted) << "no stripe collision with `first` in 10000 keys";
  EXPECT_TRUE(cache.Get(collider, &out)) << "newer entry evicted instead";
}

TEST(ChunkCacheTest, OversizedChunkIsNeverAdmitted) {
  CacheOptions options;
  options.decoded_budget_bytes = 16 * 1024;  // stripe share: 1 KiB
  ChunkCache cache(options);
  const auto big = Payload(4096, 0xEE);
  cache.Insert(Key(1, 1, 1), big.data(), big.size());
  std::vector<uint8_t> out;
  EXPECT_FALSE(cache.Get(Key(1, 1, 1), &out));
  EXPECT_EQ(cache.counters().bytes_held, 0u);
  EXPECT_EQ(cache.counters().entries, 0u);
}

TEST(ChunkCacheTest, ReinsertRefreshesWithoutGrowth) {
  ChunkCache cache;
  const auto data = Payload(100, 0x42);
  cache.Insert(Key(1, 0, 0), data.data(), data.size());
  cache.Insert(Key(1, 0, 0), data.data(), data.size());
  EXPECT_EQ(cache.counters().entries, 1u);
  EXPECT_EQ(cache.counters().bytes_held, 100u);
}

TEST(ChunkCacheTest, ConcurrentHammerIsSafeAndValueCorrect) {
  // 8 threads mixing Get/Insert on a deliberately tiny cache so eviction,
  // refresh, and lookup interleave constantly. Every hit must return the
  // exact bytes its key was inserted with (keys determine payloads).
  CacheOptions options;
  options.decoded_budget_bytes = 64 * 1024;
  ChunkCache cache(options);
  constexpr int kThreads = 8;
  constexpr int kIters = 4000;
  constexpr int kKeys = 64;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      std::vector<uint8_t> out;
      for (int i = 0; i < kIters; ++i) {
        const int k = (i * 31 + t * 7) % kKeys;
        const auto data =
            Payload(128 + static_cast<size_t>(k) * 8,
                    static_cast<uint8_t>(k));
        if ((i + t) % 3 == 0) {
          cache.Insert(Key(9, k, 0), data.data(), data.size());
        } else if (cache.Get(Key(9, k, 0), &out)) {
          ASSERT_EQ(out, data) << "hit returned bytes of a different key";
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.counters().bytes_held, options.decoded_budget_bytes);
}

// ---------------------------------------------------------------------------
// FooterCache units

FileIdentity Identity(uint64_t size, int64_t mtime_ns, uint32_t crc) {
  FileIdentity id;
  id.size = size;
  id.mtime_ns = mtime_ns;
  id.footer_crc = crc;
  return id;
}

TEST(FooterCacheTest, IdentityMismatchMisses) {
  FooterCache cache;
  const FileIdentity id = Identity(1000, 42, 0xDEAD);
  auto meta = std::make_shared<const FileMetadata>();
  auto entry = cache.Insert("a.laq", id, /*validated_chunk_limit=*/1 << 20,
                            meta);
  ASSERT_NE(entry, nullptr);
  EXPECT_NE(cache.Find("a.laq", id, 1 << 20), nullptr);
  // Any leg of the identity failing means a miss.
  EXPECT_EQ(cache.Find("a.laq", Identity(1001, 42, 0xDEAD), 1 << 20),
            nullptr);
  EXPECT_EQ(cache.Find("a.laq", Identity(1000, 43, 0xDEAD), 1 << 20),
            nullptr);
  EXPECT_EQ(cache.Find("a.laq", Identity(1000, 42, 0xBEEF), 1 << 20),
            nullptr);
  EXPECT_EQ(cache.Find("b.laq", id, 1 << 20), nullptr);
}

TEST(FooterCacheTest, StricterChunkLimitForcesRevalidation) {
  FooterCache cache;
  const FileIdentity id = Identity(1000, 42, 0xDEAD);
  cache.Insert("a.laq", id, /*validated_chunk_limit=*/1 << 20,
               std::make_shared<const FileMetadata>());
  // Validated under 1 MiB: a stricter caller limit cannot reuse it, a
  // looser one can (validation only rejects chunks ABOVE the limit).
  EXPECT_EQ(cache.Find("a.laq", id, (1 << 20) - 1), nullptr);
  EXPECT_NE(cache.Find("a.laq", id, 1 << 20), nullptr);
  EXPECT_NE(cache.Find("a.laq", id, 1 << 21), nullptr);
}

TEST(FooterCacheTest, NewIdentityGetsFreshFileGenerationId) {
  FooterCache cache;
  auto meta = std::make_shared<const FileMetadata>();
  auto first = cache.Insert("a.laq", Identity(1000, 42, 0xDEAD), 1024, meta);
  auto second = cache.Insert("a.laq", Identity(1000, 43, 0xDEAD), 1024, meta);
  EXPECT_NE(first->file_id, second->file_id)
      << "a rewritten file must invalidate old chunk-cache keys";
  // Re-inserting the resident identity returns the banked entry: the
  // generation id is stable while the bytes are (first writer wins).
  auto again = cache.Insert("a.laq", Identity(1000, 43, 0xDEAD), 1024, meta);
  EXPECT_EQ(again->file_id, second->file_id);
}

// ---------------------------------------------------------------------------
// ResultCache units

TEST(ResultCacheTest, LruEvictsBeyondMaxEntries) {
  ResultCache cache(/*max_entries=*/2);
  CachedResult value;
  value.events_processed = 1;
  cache.Insert("k1", value);
  cache.Insert("k2", value);
  CachedResult out;
  ASSERT_TRUE(cache.Get("k1", &out));  // refreshes k1; k2 is now LRU
  cache.Insert("k3", value);
  EXPECT_TRUE(cache.Get("k1", &out));
  EXPECT_FALSE(cache.Get("k2", &out));
  EXPECT_TRUE(cache.Get("k3", &out));
}

// ---------------------------------------------------------------------------
// Dataset content version

/// Overwrites `dst` with the bytes of `src` (same path, new content).
void CopyFileBytes(const std::string& src, const std::string& dst) {
  std::FILE* in = std::fopen(src.c_str(), "rb");
  std::FILE* out = std::fopen(dst.c_str(), "wb");
  ASSERT_NE(in, nullptr);
  ASSERT_NE(out, nullptr);
  char buffer[1 << 16];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), in)) > 0) {
    ASSERT_EQ(std::fwrite(buffer, 1, n, out), n);
  }
  std::fclose(in);
  ASSERT_EQ(std::fclose(out), 0);
}

/// EnsureDataset, but immune to a previous run of these tests having
/// overwritten the file in place: regenerates from scratch.
std::string FreshDataset(const std::string& dir, const DatasetSpec& spec) {
  const std::string path = EnsureDataset(dir, spec).ValueOrDie();
  std::remove(path.c_str());
  return EnsureDataset(dir, spec).ValueOrDie();
}

TEST(DatasetVersionTest, StableUntilContentChanges) {
  DatasetSpec spec;
  spec.num_events = 500;
  spec.row_group_size = 250;
  const std::string dir = ::testing::TempDir() + "/hepq_cache_version";
  const std::string a = FreshDataset(dir, spec);
  spec.seed = 7;
  const std::string b = FreshDataset(dir, spec);
  ASSERT_NE(a, b);

  const uint64_t va = DatasetVersion(a).ValueOrDie();
  const uint64_t vb = DatasetVersion(b).ValueOrDie();
  EXPECT_NE(va, vb) << "different content, same version";
  EXPECT_EQ(DatasetVersion(a).ValueOrDie(), va) << "version is not stable";

  // A byte-identical rewrite keeps the version (mtime-free identity)...
  CopyFileBytes(a, dir + "/copy.laq");
  CopyFileBytes(dir + "/copy.laq", a);
  EXPECT_EQ(DatasetVersion(a).ValueOrDie(), va);
  // ...but regenerating different bytes at the SAME path changes it.
  CopyFileBytes(b, a);
  EXPECT_NE(DatasetVersion(a).ValueOrDie(), va);
}

// ---------------------------------------------------------------------------
// End-to-end: result-cache invalidation on dataset regeneration

TEST(ResultCacheEndToEndTest, RegeneratedDatasetMissesStaleResults) {
  DatasetSpec spec;
  spec.num_events = 500;
  spec.row_group_size = 250;
  const std::string dir = ::testing::TempDir() + "/hepq_cache_regen";
  const std::string path = FreshDataset(dir, spec);
  spec.seed = 7;
  const std::string other = FreshDataset(dir, spec);

  RunOptions options;
  options.result_cache = std::make_shared<ResultCache>();
  auto cold = RunAdlQuery(EngineKind::kBigQueryShape, 1, path, options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  EXPECT_FALSE(cold->from_result_cache);

  auto warm = RunAdlQuery(EngineKind::kBigQueryShape, 1, path, options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_TRUE(warm->from_result_cache);
  ASSERT_EQ(warm->histograms.size(), cold->histograms.size());
  EXPECT_EQ(warm->histograms[0].ToParts().bins,
            cold->histograms[0].ToParts().bins);

  // Regenerate the dataset in place: same path, different bytes. The
  // stale cached result must not be served.
  CopyFileBytes(other, path);
  auto regen = RunAdlQuery(EngineKind::kBigQueryShape, 1, path, options);
  ASSERT_TRUE(regen.ok()) << regen.status().ToString();
  EXPECT_FALSE(regen->from_result_cache)
      << "served a result cached for the old dataset bytes";
  EXPECT_NE(regen->histograms[0].ToParts().bins,
            cold->histograms[0].ToParts().bins)
      << "seed-7 data produced the seed-default histogram";
}

// ---------------------------------------------------------------------------
// End-to-end: bit identity across cache states, engines, and threads

void ExpectSameParts(const Histogram1D& got, const Histogram1D& want) {
  const HistogramParts g = got.ToParts();
  const HistogramParts w = want.ToParts();
  EXPECT_EQ(g.spec, w.spec);
  EXPECT_EQ(g.bins, w.bins);  // element-wise exact double compare
  EXPECT_EQ(g.underflow, w.underflow);
  EXPECT_EQ(g.overflow, w.overflow);
  EXPECT_EQ(g.num_entries, w.num_entries);
  EXPECT_EQ(g.sum_w, w.sum_w);
  EXPECT_EQ(g.sum_wx, w.sum_wx);
  EXPECT_EQ(g.sum_wx2, w.sum_wx2);
}

void ExpectSameOutput(const QueryRunOutput& got, const QueryRunOutput& want) {
  EXPECT_EQ(got.events_processed, want.events_processed);
  ASSERT_EQ(got.histograms.size(), want.histograms.size());
  for (size_t h = 0; h < got.histograms.size(); ++h) {
    ExpectSameParts(got.histograms[h], want.histograms[h]);
  }
}

/// The PR's headline gate: every query on every frontend produces
/// bit-identical histograms with the cache hierarchy off, cold, and warm,
/// at 1 and 4 threads. Cache state must be observationally invisible.
class CacheBitIdentity : public ::testing::TestWithParam<int> {};

TEST_P(CacheBitIdentity, HistogramsIdenticalOffColdWarmAcrossThreads) {
  const int q = GetParam();
  for (EngineKind engine : kEngines) {
    SCOPED_TRACE(std::string("Q") + std::to_string(q) + " on " +
                 EngineKindName(engine));
    RunOptions off;
    off.footer_cache = false;  // fully cache-free baseline
    auto baseline = RunAdlQuery(engine, q, TestDataset(), off);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();

    RunOptions off4 = off;
    off4.num_threads = 4;
    auto off_t4 = RunAdlQuery(engine, q, TestDataset(), off4);
    ASSERT_TRUE(off_t4.ok());
    ExpectSameOutput(*off_t4, *baseline);

    // Cold then warm over one shared chunk cache (no result cache here:
    // the warm pass must flow through the chunk-hit read path).
    RunOptions cached;
    cached.chunk_cache = std::make_shared<ChunkCache>();
    auto cold = RunAdlQuery(engine, q, TestDataset(), cached);
    ASSERT_TRUE(cold.ok());
    ExpectSameOutput(*cold, *baseline);

    auto warm = RunAdlQuery(engine, q, TestDataset(), cached);
    ASSERT_TRUE(warm.ok());
    ExpectSameOutput(*warm, *baseline);

    RunOptions cached4 = cached;
    cached4.num_threads = 4;
    auto warm_t4 = RunAdlQuery(engine, q, TestDataset(), cached4);
    ASSERT_TRUE(warm_t4.ok());
    ExpectSameOutput(*warm_t4, *baseline);

    // Result-cache hit: the third level reproduces the same bits too.
    RunOptions full = cached;
    full.result_cache = std::make_shared<ResultCache>();
    auto prime = RunAdlQuery(engine, q, TestDataset(), full);
    ASSERT_TRUE(prime.ok());
    EXPECT_FALSE(prime->from_result_cache);
    auto hit = RunAdlQuery(engine, q, TestDataset(), full);
    ASSERT_TRUE(hit.ok());
    EXPECT_TRUE(hit->from_result_cache);
    ExpectSameOutput(*hit, *baseline);
  }
}

INSTANTIATE_TEST_SUITE_P(AllQueries, CacheBitIdentity,
                         ::testing::Range(1, 9));

// ---------------------------------------------------------------------------
// End-to-end: byte reconciliation of a warm repeat

TEST(CacheReconciliationTest, WarmRepeatDecodesZeroBytesFromDisk) {
  // Pushdown and late materialization off so cold and warm touch the
  // identical chunk set; every chunk then decodes fully and cleanly and
  // is admitted, so the warm repeat must be served entirely from cache.
  RunOptions options;
  options.scan_pushdown = false;
  options.late_materialization = false;
  options.chunk_cache = std::make_shared<ChunkCache>();
  auto cold = RunAdlQuery(EngineKind::kBigQueryShape, 5, TestDataset(),
                          options);
  ASSERT_TRUE(cold.ok()) << cold.status().ToString();
  ASSERT_GT(cold->scan.decoded_bytes, 0u);
  EXPECT_EQ(cold->scan.chunk_cache_hits, 0u);
  EXPECT_EQ(cold->scan.cache_bytes_served, 0u);

  auto warm = RunAdlQuery(EngineKind::kBigQueryShape, 5, TestDataset(),
                          options);
  ASSERT_TRUE(warm.ok()) << warm.status().ToString();
  EXPECT_EQ(warm->scan.decoded_bytes, 0u)
      << "warm repeat touched the decode path";
  EXPECT_GT(warm->scan.chunk_cache_hits, 0u);
  EXPECT_GT(warm->scan.footer_cache_hits, 0u);
  // The reconciliation identity: bytes consumed by a run = decoded from
  // storage + served from cache; warm consumption equals cold decoding.
  EXPECT_EQ(warm->scan.decoded_bytes + warm->scan.cache_bytes_served,
            cold->scan.decoded_bytes + cold->scan.cache_bytes_served);
  ExpectSameOutput(*warm, *cold);
}

}  // namespace
}  // namespace hepq::cache
