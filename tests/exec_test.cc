// Tests for the shared parallel execution runtime (src/exec) and for the
// determinism contract it gives every frontend: results are bit-identical
// for any thread count because each row group accumulates into its own
// slot and slots merge in ascending group order.

#include <atomic>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "datagen/dataset.h"
#include "exec/exec.h"
#include "fileio/dataset_reader.h"
#include "queries/adl.h"

namespace hepq {
namespace {

TEST(ThreadPoolTest, ParallelForRunsEveryTaskExactlyOnce) {
  exec::ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(100);
  for (auto& c : counts) c.store(0);
  pool.ParallelFor(4, 100, [&](int worker, int task) {
    EXPECT_GE(worker, 0);
    EXPECT_LT(worker, 4);
    counts[static_cast<size_t>(task)].fetch_add(1);
  });
  for (const auto& c : counts) EXPECT_EQ(c.load(), 1);
}

TEST(ThreadPoolTest, PoolIsReusableAcrossJobs) {
  exec::ThreadPool pool(2);
  for (int round = 0; round < 20; ++round) {
    std::atomic<int> sum{0};
    pool.ParallelFor(2, 10, [&](int, int task) { sum.fetch_add(task); });
    EXPECT_EQ(sum.load(), 45);
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineInTaskOrder) {
  exec::ThreadPool pool(4);
  std::vector<int> order;  // no lock needed: max_workers == 1 is inline
  pool.ParallelFor(1, 5, [&](int worker, int task) {
    EXPECT_EQ(worker, 0);
    order.push_back(task);
  });
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(ThreadPoolTest, EnsureThreadsGrowsButNeverShrinks) {
  exec::ThreadPool pool(1);
  EXPECT_EQ(pool.num_threads(), 1);
  pool.EnsureThreads(3);
  EXPECT_EQ(pool.num_threads(), 3);
  pool.EnsureThreads(2);
  EXPECT_EQ(pool.num_threads(), 3);
}

TEST(SchedulingTest, SortLptOrdersByBytesThenGroup) {
  std::vector<exec::RowGroupTask> tasks = {
      {0, 10}, {1, 30}, {2, 30}, {3, 5}, {4, 30}};
  exec::SortLpt(&tasks);
  std::vector<int> groups;
  for (const auto& t : tasks) groups.push_back(t.group);
  EXPECT_EQ(groups, (std::vector<int>{1, 2, 4, 0, 3}));
}

TEST(SchedulingTest, EffectiveWorkersClampsToTasksAndOne) {
  EXPECT_EQ(exec::EffectiveWorkers(4, 8), 4);
  EXPECT_EQ(exec::EffectiveWorkers(4, 2), 2);
  EXPECT_EQ(exec::EffectiveWorkers(0, 5), 1);
  EXPECT_EQ(exec::EffectiveWorkers(-3, 5), 1);
  EXPECT_EQ(exec::EffectiveWorkers(4, 0), 1);
}

TEST(RunRowGroupsTest, ProcessesEveryGroupOnce) {
  for (int threads : {1, 3}) {
    std::vector<exec::RowGroupTask> tasks;
    for (int g = 0; g < 16; ++g) {
      tasks.push_back({g, static_cast<uint64_t>(100 - g)});
    }
    std::vector<std::atomic<int>> seen(16);
    for (auto& s : seen) s.store(0);
    ASSERT_TRUE(exec::RunRowGroups(threads, tasks,
                                   [&](int, int group) {
                                     seen[static_cast<size_t>(group)]
                                         .fetch_add(1);
                                     return Status::OK();
                                   })
                    .ok());
    for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  }
}

TEST(RunRowGroupsTest, ReportsSmallestFailingGroupDeterministically) {
  for (int threads : {1, 4}) {
    std::vector<exec::RowGroupTask> tasks;
    for (int g = 0; g < 8; ++g) {
      // Descending sizes so LPT order == ascending group index.
      tasks.push_back({g, static_cast<uint64_t>(100 - g)});
    }
    const Status status = exec::RunRowGroups(
        threads, tasks, [&](int, int group) -> Status {
          if (group >= 5) {
            return Status::Invalid("boom " + std::to_string(group));
          }
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    // Groups 5..7 all fail, but only the smallest failing group's error is
    // ever reported: larger groups are skipped once it is known, smaller
    // ones always run. Deterministic for any thread count.
    EXPECT_NE(status.message().find("boom 5"), std::string::npos)
        << "threads=" << threads << ": " << status.message();
  }
}

TEST(RunRowGroupsTest, GroupsBelowAFailureAlwaysRun) {
  for (int threads : {1, 4}) {
    std::vector<exec::RowGroupTask> tasks;
    for (int g = 0; g < 8; ++g) {
      // Ascending sizes so LPT order == descending group index: the
      // failing group 7 is dispatched first, yet every smaller group must
      // still be attempted (any of them could fail with a smaller index).
      tasks.push_back({g, static_cast<uint64_t>(g)});
    }
    std::vector<std::atomic<int>> seen(8);
    for (auto& s : seen) s.store(0);
    const Status status = exec::RunRowGroups(
        threads, tasks, [&](int, int group) -> Status {
          seen[static_cast<size_t>(group)].fetch_add(1);
          if (group == 7) return Status::Invalid("boom 7");
          return Status::OK();
        });
    ASSERT_FALSE(status.ok());
    EXPECT_NE(status.message().find("boom 7"), std::string::npos);
    for (int g = 0; g < 7; ++g) {
      EXPECT_EQ(seen[static_cast<size_t>(g)].load(), 1) << "group " << g;
    }
  }
}

TEST(RunRowGroupsTest, EmptyTaskListIsOk) {
  EXPECT_TRUE(exec::RunRowGroups(4, {}, [&](int, int) {
                return Status::Invalid("never called");
              }).ok());
}

// ---------------------------------------------------------------------------
// WorkerReaders + frontend determinism on a real data set.
// ---------------------------------------------------------------------------

class ExecDatasetTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    DatasetSpec spec;
    spec.num_events = 2000;
    spec.row_group_size = 500;
    path_ = new std::string(
        EnsureDataset(::testing::TempDir() + "/hepq_exec", spec)
            .ValueOrDie());
  }

  static std::string* path_;
};

std::string* ExecDatasetTest::path_ = nullptr;

TEST_F(ExecDatasetTest, WorkerReadersShareFileDisjointHandles) {
  exec::WorkerReaders readers(*path_, ReaderOptions{}, 3);
  const FileMetadata* metadata = readers.metadata().ValueOrDie();
  EXPECT_EQ(metadata->row_groups.size(), 4u);
  LaqReader* r0 = readers.reader(0).ValueOrDie();
  LaqReader* r2 = readers.reader(2).ValueOrDie();
  EXPECT_NE(r0, r2);
  EXPECT_NE(readers.scratch(0), readers.scratch(2));
  // Stats from all opened readers sum into the total.
  ASSERT_TRUE(r0->ReadRowGroup(0, {"MET.pt"}, readers.scratch(0)).ok());
  ASSERT_TRUE(r2->ReadRowGroup(1, {"MET.pt"}, readers.scratch(2)).ok());
  const ScanStats total = readers.TotalScanStats();
  EXPECT_EQ(total.chunks_read,
            r0->scan_stats().chunks_read + r2->scan_stats().chunks_read);
  EXPECT_GT(total.storage_bytes, 0u);
}

TEST_F(ExecDatasetTest, MakeRowGroupTasksSizesByCompressedBytes) {
  exec::WorkerReaders readers(*path_, ReaderOptions{}, 1);
  const FileMetadata* metadata = readers.metadata().ValueOrDie();
  const auto tasks = exec::MakeRowGroupTasks(*metadata);
  ASSERT_EQ(tasks.size(), metadata->row_groups.size());
  for (size_t g = 0; g < tasks.size(); ++g) {
    uint64_t bytes = 0;
    for (const ChunkMeta& chunk : metadata->row_groups[g].chunks) {
      bytes += chunk.compressed_size;
    }
    EXPECT_EQ(tasks[g].group, static_cast<int>(g));
    EXPECT_EQ(tasks[g].bytes, bytes);
  }
}

void ExpectBitIdentical(const Histogram1D& a, const Histogram1D& b) {
  ASSERT_EQ(a.spec().num_bins, b.spec().num_bins);
  EXPECT_EQ(a.num_entries(), b.num_entries());
  EXPECT_EQ(a.underflow(), b.underflow());
  EXPECT_EQ(a.overflow(), b.overflow());
  EXPECT_EQ(a.sum_weights(), b.sum_weights());
  EXPECT_EQ(a.mean(), b.mean());
  for (int i = 0; i < a.spec().num_bins; ++i) {
    EXPECT_EQ(a.BinContent(i), b.BinContent(i)) << "bin " << i;
  }
}

/// Every frontend, byte-identical histograms and identical Table 2 op
/// counts for num_threads in {1, 2, 4} — the runtime's core contract.
TEST_F(ExecDatasetTest, EveryFrontendBitIdenticalAcrossThreadCounts) {
  using queries::EngineKind;
  const EngineKind engines[] = {EngineKind::kRdf, EngineKind::kBigQueryShape,
                                EngineKind::kPrestoShape, EngineKind::kDoc};
  // Q1 scalar-only, Q4 grouped aggregation, Q5 pair combinatorics: cover
  // the per-event, grouped, and combinatorial merge paths of each engine.
  for (int q : {1, 4, 5}) {
    for (EngineKind engine : engines) {
      queries::RunOptions options;
      options.num_threads = 1;
      auto baseline = queries::RunAdlQuery(engine, q, *path_, options);
      ASSERT_TRUE(baseline.ok()) << baseline.status().message();
      for (int threads : {2, 4}) {
        options.num_threads = threads;
        auto run = queries::RunAdlQuery(engine, q, *path_, options);
        ASSERT_TRUE(run.ok()) << run.status().message();
        SCOPED_TRACE("q" + std::to_string(q) + " engine " +
                     std::string(queries::EngineKindName(engine)) +
                     " threads " + std::to_string(threads));
        EXPECT_EQ(run->events_processed, baseline->events_processed);
        EXPECT_EQ(run->ops, baseline->ops);
        EXPECT_EQ(run->scan.storage_bytes, baseline->scan.storage_bytes);
        ASSERT_EQ(run->histograms.size(), baseline->histograms.size());
        for (size_t h = 0; h < run->histograms.size(); ++h) {
          ExpectBitIdentical(run->histograms[h], baseline->histograms[h]);
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Dataset layouts: globally numbered row groups over a shard directory.
// ---------------------------------------------------------------------------

class ExecShardedTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ShardedDatasetSpec spec;
    spec.num_shards = 3;
    spec.events_per_shard = 500;
    spec.row_group_size = 200;  // groups of 200/200/100 per shard
    dataset_ = new std::string(
        EnsureShardedDataset(::testing::TempDir() + "/hepq_exec_sharded",
                             spec)
            .ValueOrDie());
  }

  static std::string* dataset_;
};

std::string* ExecShardedTest::dataset_ = nullptr;

TEST_F(ExecShardedTest, ResolveDatasetLayoutNumbersGroupsGlobally) {
  auto layout = exec::ResolveDatasetLayout(*dataset_, ReaderOptions{});
  ASSERT_TRUE(layout.ok()) << layout.status().message();
  EXPECT_EQ(layout->num_files(), 3);
  EXPECT_EQ(layout->num_groups(), 9);
  EXPECT_EQ(layout->total_rows, 1500);
  // Groups are ordered file-major with local indices restarting per file,
  // and carry real row counts and nonzero byte sizes for LPT scheduling.
  int expected_file = 0;
  int expected_local = 0;
  for (const exec::DatasetLayout::Group& group : layout->groups) {
    if (expected_local == 3) {
      ++expected_file;
      expected_local = 0;
    }
    EXPECT_EQ(group.file, expected_file);
    EXPECT_EQ(group.local_group, expected_local);
    EXPECT_EQ(group.num_rows, expected_local == 2 ? 100 : 200);
    EXPECT_GT(group.bytes, 0u);
    ++expected_local;
  }
}

TEST_F(ExecShardedTest, ResolveDatasetLayoutOnSingleFile) {
  auto files = ListLaqFiles(*dataset_);
  ASSERT_TRUE(files.ok());
  auto layout =
      exec::ResolveDatasetLayout((*files)[0], ReaderOptions{});
  ASSERT_TRUE(layout.ok()) << layout.status().message();
  EXPECT_EQ(layout->num_files(), 1);
  EXPECT_EQ(layout->num_groups(), 3);
  EXPECT_EQ(layout->total_rows, 500);
}

TEST_F(ExecShardedTest, WorkerReadersSwitchFilesAndBankStats) {
  auto layout =
      exec::ResolveDatasetLayout(*dataset_, ReaderOptions{}).ValueOrDie();
  exec::WorkerReaders readers(&layout, ReaderOptions{}, 2);
  // One worker visits every file in turn (out-of-core: one open shard per
  // worker slot); stats from closed readers must not be lost.
  for (int file = 0; file < layout.num_files(); ++file) {
    LaqReader* reader = readers.reader(0, file).ValueOrDie();
    ASSERT_TRUE(
        reader->ReadRowGroup(0, {"MET.pt"}, readers.scratch(0)).ok());
  }
  const ScanStats total = readers.TotalScanStats();
  EXPECT_EQ(total.values_read, 600u);  // 3 files x 200 rows
}

/// The tentpole contract at the runtime level: a shard-directory run is
/// bit-identical across thread counts for every frontend.
TEST_F(ExecShardedTest, DirectoryRunsBitIdenticalAcrossThreadCounts) {
  using queries::EngineKind;
  const EngineKind engines[] = {EngineKind::kRdf, EngineKind::kBigQueryShape,
                                EngineKind::kPrestoShape, EngineKind::kDoc};
  for (int q : {1, 4, 5}) {
    for (EngineKind engine : engines) {
      queries::RunOptions options;
      options.num_threads = 1;
      auto baseline = queries::RunAdlQuery(engine, q, *dataset_, options);
      ASSERT_TRUE(baseline.ok()) << baseline.status().message();
      EXPECT_EQ(baseline->events_processed, 1500);
      for (int threads : {3, 8}) {
        options.num_threads = threads;
        auto run = queries::RunAdlQuery(engine, q, *dataset_, options);
        ASSERT_TRUE(run.ok()) << run.status().message();
        SCOPED_TRACE("q" + std::to_string(q) + " engine " +
                     std::string(queries::EngineKindName(engine)) +
                     " threads " + std::to_string(threads));
        EXPECT_EQ(run->events_processed, baseline->events_processed);
        EXPECT_EQ(run->ops, baseline->ops);
        EXPECT_EQ(run->scan.storage_bytes, baseline->scan.storage_bytes);
        ASSERT_EQ(run->histograms.size(), baseline->histograms.size());
        for (size_t h = 0; h < run->histograms.size(); ++h) {
          ExpectBitIdentical(run->histograms[h], baseline->histograms[h]);
        }
      }
    }
  }
}

}  // namespace
}  // namespace hepq
